// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Simulation results must be exactly reproducible for a given configuration
// and seed: tests, benchmarks, and the experiment harness all rely on this.
// We therefore avoid math/rand's global state and implement a SplitMix64
// seeder plus an xoshiro256** generator, both from public-domain reference
// algorithms by Blackman and Vigna.
package rng

// SplitMix64 advances the given state and returns the next 64-bit output.
// It is used to derive independent seeds for child generators.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended by
// the xoshiro authors. Distinct seeds yield independent-looking streams.
func New(seed uint64) *Rand {
	var r Rand
	st := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&st)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// State returns the generator's internal state, for checkpointing.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state, restoring a
// checkpoint taken with State.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Child derives a new independent generator from this one. It is used to
// give each static instruction / branch / thread its own stream so that
// changing one component's consumption does not perturb the others.
func (r *Rand) Child() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (support {1, 2, ...}). Used for basic-block sizes and dependence
// distances. m must be >= 1; values are clamped to at least 1.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	// For a geometric distribution on {1,2,...} with success prob p,
	// mean = 1/p.
	p := 1.0 / m
	n := 1
	for !r.Bool(p) {
		n++
		if n >= 1<<20 { // safety clamp; practically unreachable
			break
		}
	}
	return n
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Zero or negative total weight panics.
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
