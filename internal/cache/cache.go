// Package cache implements the memory-hierarchy substrate: set-associative,
// multi-bank, LRU caches with miss status holding registers (MSHRs), a
// two-level hierarchy (split L1 I/D over a unified L2 over main memory), and
// fully-associative TLBs. Timing is returned to the caller as completion
// cycles; the pipeline model decides what overlaps with what.
package cache

import (
	"fmt"

	"smtfetch/internal/config"
	"smtfetch/internal/isa"
)

// Cache is a set-associative cache with true-LRU replacement.
// It tracks tags only (the simulator never stores data).
type Cache struct {
	cfg      config.CacheConfig
	sets     int
	lineBits uint
	setMask  uint64
	bankMask uint64
	// ways[set*assoc+way]
	tags  []uint64
	valid []bool
	// lru[set*assoc+way]: lower value = older. Monotonic per-set stamp.
	lru   []uint64
	stamp uint64

	Accesses uint64
	Misses   uint64
}

// New returns an empty cache with the given geometry.
func New(cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	n := sets * cfg.Assoc
	c := &Cache{
		cfg:   cfg,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		lru:   make([]uint64, n),
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.setMask = uint64(sets - 1)
	if cfg.Banks > 0 {
		c.bankMask = uint64(cfg.Banks - 1)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a isa.Addr) isa.Addr {
	return isa.Addr(uint64(a) &^ (uint64(c.cfg.LineBytes) - 1))
}

// Bank returns the interleaved bank index for address a (line-granularity
// interleaving, as in Table 3's 8-bank caches).
func (c *Cache) Bank(a isa.Addr) int {
	return int((uint64(a) >> c.lineBits) & c.bankMask)
}

func (c *Cache) set(a isa.Addr) int {
	return int((uint64(a) >> c.lineBits) & c.setMask)
}

// Lookup probes the cache for the line containing a, updating LRU state and
// access counters. It reports whether the line was present.
func (c *Cache) Lookup(a isa.Addr) bool {
	c.Accesses++
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	c.Misses++
	return false
}

// Probe is Lookup without counter or LRU side effects (for tests and for
// checking residency without modelling an access).
func (c *Cache) Probe(a isa.Addr) bool {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing a, evicting the LRU way if needed.
// It reports the evicted line address and whether an eviction occurred.
func (c *Cache) Fill(a isa.Addr) (evicted isa.Addr, wasEvicted bool) {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			// Already present (e.g. a racing fill); refresh LRU.
			c.stamp++
			c.lru[i] = c.stamp
			return 0, false
		}
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		evicted = isa.Addr(c.tags[victim] << c.lineBits)
		wasEvicted = true
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.stamp++
	c.lru[victim] = c.stamp
	return evicted, wasEvicted
}

// Invalidate removes the line containing a if present.
func (c *Cache) Invalidate(a isa.Addr) {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			return
		}
	}
}

// MissRate returns misses/accesses, or 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB is a fully-associative LRU translation buffer over fixed-size pages.
type TLB struct {
	entries  int
	pageBits uint
	pages    []uint64
	valid    []bool
	lru      []uint64
	stamp    uint64

	Accesses uint64
	Misses   uint64
}

// PageBytes is the simulated page size.
const PageBytes = 4096

// NewTLB returns an empty TLB with the given entry count.
func NewTLB(entries int) *TLB {
	t := &TLB{
		entries: entries,
		pages:   make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
	}
	for pb := PageBytes; pb > 1; pb >>= 1 {
		t.pageBits++
	}
	return t
}

// Lookup probes for the page of a, filling on miss (hardware-walked TLB),
// and reports whether it hit.
func (t *TLB) Lookup(a isa.Addr) bool {
	t.Accesses++
	page := uint64(a) >> t.pageBits
	victim := 0
	for i := 0; i < t.entries; i++ {
		if t.valid[i] && t.pages[i] == page {
			t.stamp++
			t.lru[i] = t.stamp
			return true
		}
		if !t.valid[i] {
			victim = i
		} else if t.valid[victim] && t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.Misses++
	t.pages[victim] = page
	t.valid[victim] = true
	t.stamp++
	t.lru[victim] = t.stamp
	return false
}

// mshr tracks one outstanding line miss; duplicate misses to the same line
// merge onto the existing entry.
type mshr struct {
	ready uint64 // cycle at which the fill completes
}

// Hierarchy glues L1I, L1D, L2, the TLBs and main-memory latency together
// and owns the MSHR bookkeeping. All methods take the current cycle and
// return the cycle at which the requested line is available.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB

	memLat  int
	tlbLat  int
	imshrs  map[isa.Addr]*mshr
	dmshrs  map[isa.Addr]*mshr
	dmshrsN int // per-thread cap enforced by caller via InFlightData
}

// NewHierarchy builds the hierarchy from the machine configuration.
func NewHierarchy(cfg *config.Config) *Hierarchy {
	return &Hierarchy{
		L1I:     New(cfg.L1I),
		L1D:     New(cfg.L1D),
		L2:      New(cfg.L2),
		ITLB:    NewTLB(cfg.ITLBEntries),
		DTLB:    NewTLB(cfg.DTLBEntries),
		memLat:  cfg.MemLatency,
		tlbLat:  cfg.TLBMissLatency,
		imshrs:  make(map[isa.Addr]*mshr),
		dmshrs:  make(map[isa.Addr]*mshr),
		dmshrsN: cfg.DMSHRs,
	}
}

// AccessResult describes one hierarchy access.
type AccessResult struct {
	// Ready is the cycle at which the data is available.
	Ready uint64
	// L1Miss / L2Miss report where the access missed.
	L1Miss, L2Miss bool
	// TLBMiss reports a translation miss (latency already included).
	TLBMiss bool
	// Merged reports that the access merged onto an outstanding MSHR.
	Merged bool
}

// Instr performs an instruction fetch of the line containing a at cycle
// now.
func (h *Hierarchy) Instr(now uint64, a isa.Addr) AccessResult {
	return h.access(now, a, h.L1I, h.ITLB, h.imshrs)
}

// Data performs a data access (load or store) of the line containing a at
// cycle now.
func (h *Hierarchy) Data(now uint64, a isa.Addr) AccessResult {
	return h.access(now, a, h.L1D, h.DTLB, h.dmshrs)
}

func (h *Hierarchy) access(now uint64, a isa.Addr, l1 *Cache, tlb *TLB, mshrs map[isa.Addr]*mshr) AccessResult {
	var res AccessResult
	penalty := uint64(0)
	if !tlb.Lookup(a) {
		res.TLBMiss = true
		penalty += uint64(h.tlbLat)
	}
	line := l1.LineAddr(a)
	if l1.Lookup(a) {
		res.Ready = now + penalty + uint64(l1.cfg.HitLatency)
		return res
	}
	res.L1Miss = true
	// Merge with an outstanding miss for this line if one exists.
	if m, ok := mshrs[line]; ok && m.ready > now {
		res.Merged = true
		res.Ready = m.ready + penalty
		return res
	}
	lat := uint64(l1.cfg.HitLatency)
	if h.L2.Lookup(a) {
		lat += uint64(h.L2.cfg.HitLatency)
	} else {
		res.L2Miss = true
		lat += uint64(h.L2.cfg.HitLatency) + uint64(h.memLat)
		h.L2.Fill(a)
	}
	l1.Fill(a)
	ready := now + penalty + lat
	mshrs[line] = &mshr{ready: ready}
	res.Ready = ready
	return res
}

// InFlightData returns the number of data-line misses still outstanding at
// cycle now. The pipeline uses this to enforce the per-thread MSHR budget.
func (h *Hierarchy) InFlightData(now uint64) int {
	n := 0
	for line, m := range h.dmshrs {
		if m.ready > now {
			n++
		} else {
			delete(h.dmshrs, line)
		}
	}
	return n
}

// GCInstr drops completed instruction MSHRs; called occasionally to bound
// map growth on long runs.
func (h *Hierarchy) GCInstr(now uint64) {
	for line, m := range h.imshrs {
		if m.ready <= now {
			delete(h.imshrs, line)
		}
	}
}

// String summarizes hit rates for debugging.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1I miss %.4f, L1D miss %.4f, L2 miss %.4f",
		h.L1I.MissRate(), h.L1D.MissRate(), h.L2.MissRate())
}
