// Package cache implements the memory-hierarchy substrate: set-associative,
// multi-bank, LRU caches with miss status holding registers (MSHRs), a
// two-level hierarchy (split L1 I/D over a unified L2 over main memory), and
// fully-associative TLBs. Timing is returned to the caller as completion
// cycles; the pipeline model decides what overlaps with what.
package cache

import (
	"fmt"

	"smtfetch/internal/config"
	"smtfetch/internal/isa"
)

// Cache is a set-associative cache with true-LRU replacement.
// It tracks tags only (the simulator never stores data).
type Cache struct {
	cfg      config.CacheConfig //smtfetch:transient construction-time configuration
	sets     int                //smtfetch:transient geometry derived from cfg at construction
	lineBits uint               //smtfetch:transient geometry derived from cfg at construction
	setMask  uint64             //smtfetch:transient geometry derived from cfg at construction
	bankMask uint64             //smtfetch:transient geometry derived from cfg at construction
	// ways[set*assoc+way]
	tags  []uint64
	valid []bool
	// lru[set*assoc+way]: lower value = older. Monotonic per-set stamp.
	lru   []uint64
	stamp uint64

	Accesses uint64
	Misses   uint64
}

// New returns an empty cache with the given geometry.
func New(cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	n := sets * cfg.Assoc
	c := &Cache{
		cfg:   cfg,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		lru:   make([]uint64, n),
	}
	for lb := cfg.LineBytes; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	c.setMask = uint64(sets - 1)
	if cfg.Banks > 0 {
		c.bankMask = uint64(cfg.Banks - 1)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing a.
//
//smtfetch:hotpath
func (c *Cache) LineAddr(a isa.Addr) isa.Addr {
	return isa.Addr(uint64(a) &^ (uint64(c.cfg.LineBytes) - 1))
}

// Bank returns the interleaved bank index for address a (line-granularity
// interleaving, as in Table 3's 8-bank caches).
//
//smtfetch:hotpath
func (c *Cache) Bank(a isa.Addr) int {
	return int((uint64(a) >> c.lineBits) & c.bankMask)
}

//smtfetch:hotpath
func (c *Cache) set(a isa.Addr) int {
	return int((uint64(a) >> c.lineBits) & c.setMask)
}

// Lookup probes the cache for the line containing a, updating LRU state and
// access counters. It reports whether the line was present.
//
//smtfetch:hotpath
func (c *Cache) Lookup(a isa.Addr) bool {
	c.Accesses++
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	c.Misses++
	return false
}

// Probe is Lookup without counter or LRU side effects (for tests and for
// checking residency without modelling an access).
func (c *Cache) Probe(a isa.Addr) bool {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Touch refreshes the LRU stamp of the line containing a if it is present,
// without access counters (used for merged accesses to in-flight lines,
// which are accounted as misses but keep the line hot).
//
//smtfetch:hotpath
func (c *Cache) Touch(a isa.Addr) {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp++
			c.lru[base+w] = c.stamp
			return
		}
	}
}

// Fill installs the line containing a, evicting the LRU way if needed.
// It reports the evicted line address and whether an eviction occurred.
//
//smtfetch:hotpath
func (c *Cache) Fill(a isa.Addr) (evicted isa.Addr, wasEvicted bool) {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			// Already present (e.g. a racing fill); refresh LRU.
			c.stamp++
			c.lru[i] = c.stamp
			return 0, false
		}
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		evicted = isa.Addr(c.tags[victim] << c.lineBits)
		wasEvicted = true
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.stamp++
	c.lru[victim] = c.stamp
	return evicted, wasEvicted
}

// Invalidate removes the line containing a if present.
func (c *Cache) Invalidate(a isa.Addr) {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.valid[base+w] = false
			return
		}
	}
}

// MissRate returns misses/accesses, or 0 when idle.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB is a fully-associative LRU translation buffer over fixed-size pages.
// Hits resolve through an MRU probe and a page->entry index instead of the
// associative scan a real TLB does in parallel; the scan survives only on
// the (rare) miss path for LRU victim selection, so the model's hit/miss
// sequence and replacement decisions are unchanged while the common case
// is O(1).
type TLB struct {
	entries  int
	pageBits uint //smtfetch:transient geometry, fixed at construction
	pages    []uint64
	valid    []bool
	lru      []uint64
	stamp    uint64
	// idx maps the page of every valid entry to its index; mru is the
	// last entry that hit (checked first — page locality makes
	// consecutive accesses hit the same page).
	idx map[uint64]int //smtfetch:transient lookup index rebuilt from pages/valid on decode
	mru int

	Accesses uint64
	Misses   uint64
}

// PageBytes is the simulated page size.
const PageBytes = 4096

// NewTLB returns an empty TLB with the given entry count.
func NewTLB(entries int) *TLB {
	t := &TLB{
		entries: entries,
		pages:   make([]uint64, entries),
		valid:   make([]bool, entries),
		lru:     make([]uint64, entries),
		idx:     make(map[uint64]int, entries),
	}
	for pb := PageBytes; pb > 1; pb >>= 1 {
		t.pageBits++
	}
	return t
}

// Lookup probes for the page of a, filling on miss (hardware-walked TLB),
// and reports whether it hit.
//
//smtfetch:hotpath
func (t *TLB) Lookup(a isa.Addr) bool {
	t.Accesses++
	page := uint64(a) >> t.pageBits
	if i := t.mru; t.valid[i] && t.pages[i] == page {
		t.stamp++
		t.lru[i] = t.stamp
		return true
	}
	if i, ok := t.idx[page]; ok {
		t.stamp++
		t.lru[i] = t.stamp
		t.mru = i
		return true
	}
	// Miss: select the victim exactly as the original associative scan
	// did (the last invalid entry, else the unique LRU minimum), so the
	// replacement sequence is bit-identical.
	victim := 0
	for i := 0; i < t.entries; i++ {
		if !t.valid[i] {
			victim = i
		} else if t.valid[victim] && t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.Misses++
	if t.valid[victim] {
		delete(t.idx, t.pages[victim])
	}
	t.pages[victim] = page
	t.valid[victim] = true
	//smtfetch:allowalloc idx map size is bounded by the table's entry count: every insert evicts (deletes) a victim
	t.idx[page] = victim
	t.mru = victim
	t.stamp++
	t.lru[victim] = t.stamp
	return false
}

// mshrSet tracks the outstanding line misses of one cache port. The map
// answers "is this line in flight, and until when"; the min-heap of
// completion times lets expiry advance incrementally with the clock instead
// of scanning the whole map (the heap holds plain values, so steady-state
// operation does not allocate).
type mshrSet struct {
	ready map[isa.Addr]uint64 // line -> fill-completion cycle
	heap  []mshrRec           //smtfetch:transient min-heap ordered by ready, rebuilt from the ready map on decode
}

// mshrRec is one heap record. A line that misses again after its fill
// completed gets a second record; expire matches records against the map's
// current ready cycle so stale records retire harmlessly.
type mshrRec struct {
	ready uint64
	line  isa.Addr
}

func newMSHRSet() mshrSet {
	return mshrSet{ready: make(map[isa.Addr]uint64)}
}

// expire retires every miss whose fill completed at or before now. Amortized
// cost is O(log n) per retired miss; n is bounded by the MSHR budget.
//
//smtfetch:hotpath
func (s *mshrSet) expire(now uint64) {
	for len(s.heap) > 0 && s.heap[0].ready <= now {
		rec := s.heap[0]
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if last > 0 {
			s.siftDown(0)
		}
		if r, ok := s.ready[rec.line]; ok && r <= now {
			delete(s.ready, rec.line)
		}
	}
}

// inFlight reports the line's fill-completion cycle if a miss for it is
// still outstanding. Callers must expire(now) first.
//
//smtfetch:hotpath
func (s *mshrSet) inFlight(line isa.Addr) (uint64, bool) {
	r, ok := s.ready[line]
	return r, ok
}

// add records a new outstanding miss completing at ready.
//
//smtfetch:hotpath
func (s *mshrSet) add(line isa.Addr, ready uint64) {
	//smtfetch:allowalloc MSHR heap and ready map are bounded by the MSHR capacity the caller checks; backing storage is reused across misses
	s.ready[line] = ready
	//smtfetch:allowalloc MSHR heap and ready map are bounded by the MSHR capacity the caller checks; backing storage is reused across misses
	s.heap = append(s.heap, mshrRec{ready: ready, line: line})
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].ready <= s.heap[i].ready {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

//smtfetch:hotpath
func (s *mshrSet) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.heap[l].ready < s.heap[min].ready {
			min = l
		}
		if r < n && s.heap[r].ready < s.heap[min].ready {
			min = r
		}
		if min == i {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// count returns the number of outstanding misses. Callers must expire(now)
// first.
//
//smtfetch:hotpath
func (s *mshrSet) count() int { return len(s.ready) }

// Hierarchy glues L1I, L1D, L2, the TLBs and main-memory latency together
// and owns the MSHR bookkeeping. All methods take the current cycle and
// return the cycle at which the requested line is available.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	ITLB, DTLB   *TLB

	memLat int //smtfetch:transient configured latency, fixed at construction
	tlbLat int //smtfetch:transient configured latency, fixed at construction
	imshrs mshrSet
	dmshrs mshrSet
}

// NewHierarchy builds the hierarchy from the machine configuration.
func NewHierarchy(cfg *config.Config) *Hierarchy {
	return &Hierarchy{
		L1I:    New(cfg.L1I),
		L1D:    New(cfg.L1D),
		L2:     New(cfg.L2),
		ITLB:   NewTLB(cfg.ITLBEntries),
		DTLB:   NewTLB(cfg.DTLBEntries),
		memLat: cfg.MemLatency,
		tlbLat: cfg.TLBMissLatency,
		imshrs: newMSHRSet(),
		dmshrs: newMSHRSet(),
	}
}

// AccessResult describes one hierarchy access.
type AccessResult struct {
	// Ready is the cycle at which the data is available.
	Ready uint64
	// L1Miss / L2Miss report where the access missed.
	L1Miss, L2Miss bool
	// TLBMiss reports a translation miss (latency already included).
	TLBMiss bool
	// Merged reports that the access merged onto an outstanding MSHR.
	Merged bool
}

// Instr performs an instruction fetch of the line containing a at cycle
// now.
//
//smtfetch:hotpath
func (h *Hierarchy) Instr(now uint64, a isa.Addr) AccessResult {
	return h.access(now, a, h.L1I, h.ITLB, &h.imshrs)
}

// Data performs a data access (load or store) of the line containing a at
// cycle now.
//
//smtfetch:hotpath
func (h *Hierarchy) Data(now uint64, a isa.Addr) AccessResult {
	return h.access(now, a, h.L1D, h.DTLB, &h.dmshrs)
}

//smtfetch:hotpath
func (h *Hierarchy) access(now uint64, a isa.Addr, l1 *Cache, tlb *TLB, ms *mshrSet) AccessResult {
	var res AccessResult
	penalty := uint64(0)
	if !tlb.Lookup(a) {
		res.TLBMiss = true
		penalty += uint64(h.tlbLat)
	}
	line := l1.LineAddr(a)
	ms.expire(now)
	// The fill installs the tag at allocation time, so the MSHR must be
	// consulted before the tag array: a line whose miss is still in flight
	// is not usable until the fill completes. Such an access merges onto
	// the outstanding MSHR and observes its completion cycle — it does not
	// start a new L2/memory request.
	if ready, ok := ms.inFlight(line); ok {
		l1.Accesses++
		l1.Misses++
		// The line is being actively used: keep it MRU so it is not the
		// victim for unrelated fills during its own miss window.
		l1.Touch(a)
		res.L1Miss = true
		res.Merged = true
		res.Ready = ready + penalty
		return res
	}
	if l1.Lookup(a) {
		res.Ready = now + penalty + uint64(l1.cfg.HitLatency)
		return res
	}
	res.L1Miss = true
	lat := uint64(l1.cfg.HitLatency)
	if h.L2.Lookup(a) {
		lat += uint64(h.L2.cfg.HitLatency)
	} else {
		res.L2Miss = true
		lat += uint64(h.L2.cfg.HitLatency) + uint64(h.memLat)
		h.L2.Fill(a)
	}
	l1.Fill(a)
	ready := now + penalty + lat
	ms.add(line, ready)
	res.Ready = ready
	return res
}

// InFlightData returns the number of data-line misses still outstanding at
// cycle now. The pipeline uses this to enforce the per-thread MSHR budget.
// Cost is O(1) plus amortized O(log n) per newly completed fill — never a
// full scan.
//
//smtfetch:hotpath
func (h *Hierarchy) InFlightData(now uint64) int {
	h.dmshrs.expire(now)
	return h.dmshrs.count()
}

// InFlightInstr is InFlightData for the instruction port (used by tests and
// reports).
func (h *Hierarchy) InFlightInstr(now uint64) int {
	h.imshrs.expire(now)
	return h.imshrs.count()
}

// String summarizes hit rates for debugging.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1I miss %.4f, L1D miss %.4f, L2 miss %.4f",
		h.L1I.MissRate(), h.L1D.MissRate(), h.L2.MissRate())
}
