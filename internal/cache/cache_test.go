package cache

import (
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/isa"
)

// hierarchyLatencies returns the default config's component latencies so
// test expectations read as formulas, not magic numbers.
func hierarchyLatencies(cfg *config.Config) (l1, l2, mem, tlb uint64) {
	return uint64(cfg.L1D.HitLatency), uint64(cfg.L2.HitLatency),
		uint64(cfg.MemLatency), uint64(cfg.TLBMissLatency)
}

// TestMSHRMergeObservesFillCompletion is the regression test for the dead
// hit-under-miss path: a second access to a line whose miss is still in
// flight must observe the fill-completion cycle with Merged=true, not an
// instant L1 hit. (On the pre-fix code the second access returned
// now+HitLatency with Merged=false, because the fill installed the tag at
// request time.)
func TestMSHRMergeObservesFillCompletion(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	l1, l2, mem, tlb := hierarchyLatencies(&cfg)
	addr := isa.Addr(0x4_0000)

	first := h.Data(100, addr)
	if !first.L1Miss || !first.L2Miss || first.Merged {
		t.Fatalf("first access: got %+v, want cold L1+L2 miss, not merged", first)
	}
	wantReady := 100 + tlb + l1 + l2 + mem
	if first.Ready != wantReady {
		t.Fatalf("first access ready = %d, want %d", first.Ready, wantReady)
	}

	// Same line, one cycle later, while the fill is still in flight.
	second := h.Data(101, addr+8)
	if !second.Merged {
		t.Fatalf("second access to in-flight line not merged: %+v", second)
	}
	if !second.L1Miss {
		t.Fatal("merged access must report L1Miss (the line is not yet present)")
	}
	if second.L2Miss {
		t.Fatal("merged access must not start a new L2/memory request")
	}
	if second.Ready != wantReady {
		t.Fatalf("merged access ready = %d, want the in-flight fill completion %d", second.Ready, wantReady)
	}

	// Once the fill completes, the line hits normally.
	third := h.Data(wantReady, addr)
	if third.L1Miss || third.Merged {
		t.Fatalf("post-fill access: got %+v, want plain L1 hit", third)
	}
	if want := wantReady + l1; third.Ready != want {
		t.Fatalf("post-fill ready = %d, want %d", third.Ready, want)
	}
}

// TestMSHRMergeAddsTLBPenalty checks that a merged access that also misses
// the TLB still pays its own translation penalty on top of the fill time.
func TestMSHRMergeAddsTLBPenalty(t *testing.T) {
	cfg := config.Default()
	// Shrink the DTLB to one entry so a second page evicts the first.
	cfg.DTLBEntries = 1
	h := NewHierarchy(&cfg)
	_, _, _, tlb := hierarchyLatencies(&cfg)

	addr := isa.Addr(0x4_0000)
	first := h.Data(0, addr)
	// Touch another page: evicts addr's translation from the 1-entry TLB.
	h.Data(1, addr+2*PageBytes)
	merged := h.Data(2, addr)
	if !merged.Merged || !merged.TLBMiss {
		t.Fatalf("got %+v, want merged access with TLB miss", merged)
	}
	if want := first.Ready + tlb; merged.Ready != want {
		t.Fatalf("merged+TLB-miss ready = %d, want fill %d + TLB penalty %d", merged.Ready, first.Ready, tlb)
	}
}

// TestMergedAccessKeepsLineHot checks that merging onto an in-flight line
// refreshes its LRU state: a line being actively waited on must not become
// the eviction victim of unrelated fills during its own miss window.
func TestMergedAccessKeepsLineHot(t *testing.T) {
	cfg := config.Default() // L1D: 256 sets, 2-way, 64B lines
	h := NewHierarchy(&cfg)
	setStride := isa.Addr(cfg.L1D.Sets() * cfg.L1D.LineBytes)
	a := isa.Addr(0x4_0000)

	first := h.Data(0, a)             // A in flight, occupies one way
	h.Data(1, a+setStride)            // B fills the other way of A's set
	merged := h.Data(2, a+8)          // merge onto A: must refresh its LRU
	evict := h.Data(3, a+2*setStride) // C needs a victim: should be B, not A
	if !merged.Merged || evict.Merged {
		t.Fatalf("unexpected merge pattern: merged=%+v evict=%+v", merged, evict)
	}
	after := h.Data(first.Ready, a)
	if after.L1Miss {
		t.Fatal("in-flight line was evicted during its own miss window; merged accesses must keep it MRU")
	}
}

// TestInFlightDataCounter checks the incrementally maintained outstanding
// miss count against allocation and expiry.
func TestInFlightDataCounter(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)

	if n := h.InFlightData(0); n != 0 {
		t.Fatalf("idle InFlightData = %d, want 0", n)
	}
	lineBytes := isa.Addr(cfg.L1D.LineBytes)
	// The first miss pays the TLB penalty too, so it completes last.
	var lastReady uint64
	for i := 0; i < 5; i++ {
		res := h.Data(0, isa.Addr(0x8_0000)+isa.Addr(i)*lineBytes)
		if res.Merged {
			t.Fatalf("distinct lines must not merge (line %d)", i)
		}
		if res.Ready > lastReady {
			lastReady = res.Ready
		}
	}
	if n := h.InFlightData(1); n != 5 {
		t.Fatalf("InFlightData after 5 misses = %d, want 5", n)
	}
	// Merging onto an existing MSHR must not add an entry.
	h.Data(2, isa.Addr(0x8_0000)+8)
	if n := h.InFlightData(2); n != 5 {
		t.Fatalf("InFlightData after merge = %d, want still 5", n)
	}
	if n := h.InFlightData(lastReady); n != 0 {
		t.Fatalf("InFlightData at fill completion = %d, want 0", n)
	}
	// A fresh miss after expiry is tracked again.
	h.Data(lastReady+1, 0xF_0000)
	if n := h.InFlightData(lastReady + 1); n != 1 {
		t.Fatalf("InFlightData after re-miss = %d, want 1", n)
	}
}

// TestCacheLRUEvictionOrder fills a 2-way set and checks that the
// least-recently-used way is the victim.
func TestCacheLRUEvictionOrder(t *testing.T) {
	// 2 sets x 2 ways x 64B lines.
	c := New(config.CacheConfig{SizeBytes: 256, Assoc: 2, LineBytes: 64, HitLatency: 1})
	set0 := func(i int) isa.Addr { return isa.Addr(i * 128) } // stride 2 lines = same set

	a, b, d := set0(0), set0(1), set0(2)
	c.Fill(a)
	c.Fill(b)
	// Touch a: b becomes LRU.
	if !c.Lookup(a) {
		t.Fatal("a should hit after fill")
	}
	evicted, was := c.Fill(d)
	if !was || evicted != b {
		t.Fatalf("Fill(d) evicted (%#x, %v), want (%#x, true)", uint64(evicted), was, uint64(b))
	}
	if c.Probe(b) {
		t.Fatal("b still resident after eviction")
	}
	if !c.Probe(a) || !c.Probe(d) {
		t.Fatal("a and d should be resident")
	}

	// Refilling a resident line must not evict anything.
	if _, was := c.Fill(a); was {
		t.Fatal("refill of resident line evicted something")
	}
}

// TestTLBFillOnMissVictim checks the fully-associative TLB's fill-on-miss
// behaviour: invalid entries are used first, then the LRU entry.
func TestTLBFillOnMissVictim(t *testing.T) {
	tlb := NewTLB(2)
	page := func(i int) isa.Addr { return isa.Addr(i * PageBytes) }

	if tlb.Lookup(page(0)) {
		t.Fatal("cold TLB lookup hit")
	}
	if tlb.Lookup(page(1)) {
		t.Fatal("second cold lookup hit")
	}
	// Both resident now; refresh page 0 so page 1 is LRU.
	if !tlb.Lookup(page(0)) {
		t.Fatal("page 0 should hit")
	}
	// Miss on page 2 must evict the LRU entry (page 1), not page 0.
	if tlb.Lookup(page(2)) {
		t.Fatal("page 2 should miss")
	}
	if !tlb.Lookup(page(0)) {
		t.Fatal("page 0 evicted, but page 1 was LRU")
	}
	if tlb.Lookup(page(1)) {
		t.Fatal("page 1 should have been the victim")
	}
	if tlb.Accesses != 6 || tlb.Misses != 4 {
		t.Fatalf("counters = %d accesses / %d misses, want 6/4", tlb.Accesses, tlb.Misses)
	}
}

// TestBankInterleaving checks line-granularity bank interleaving and the
// bankless degenerate case.
func TestBankInterleaving(t *testing.T) {
	cfg := config.Default().L1I // 64B lines, 8 banks
	c := New(cfg)
	for i := 0; i < 32; i++ {
		a := isa.Addr(i * cfg.LineBytes)
		if got, want := c.Bank(a), i%cfg.Banks; got != want {
			t.Fatalf("Bank(%#x) = %d, want %d", uint64(a), got, want)
		}
		// All addresses within one line share its bank.
		if c.Bank(a+isa.Addr(cfg.LineBytes-1)) != c.Bank(a) {
			t.Fatalf("addresses within line %d map to different banks", i)
		}
	}
	unbanked := New(config.CacheConfig{SizeBytes: 256, Assoc: 2, LineBytes: 64, HitLatency: 1})
	for i := 0; i < 8; i++ {
		if got := unbanked.Bank(isa.Addr(i * 64)); got != 0 {
			t.Fatalf("bankless cache Bank = %d, want 0", got)
		}
	}
}

// TestInstrPortHasOwnMSHRs checks that instruction and data misses to the
// same line do not merge with each other (split L1s, split MSHR files).
func TestInstrPortHasOwnMSHRs(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	addr := isa.Addr(0x10_0000)
	di := h.Instr(0, addr)
	dd := h.Data(1, addr)
	if di.Merged || dd.Merged {
		t.Fatalf("I/D accesses merged across ports: I=%+v D=%+v", di, dd)
	}
	if h.InFlightInstr(2) != 1 || h.InFlightData(2) != 1 {
		t.Fatalf("in-flight counts I=%d D=%d, want 1/1", h.InFlightInstr(2), h.InFlightData(2))
	}
}
