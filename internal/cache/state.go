package cache

// Warm-state snapshot encoders/decoders plus the no-side-effect warm
// methods used by functional fast-forward. Geometry is rebuilt from the
// configuration by the caller; decoders restore only dynamic contents and
// validate sizes against the receiver.
//
// MSHR maps are serialized as (line, ready) pairs sorted by line address
// so the byte stream is independent of Go's map iteration order; the heap
// is rebuilt from the pairs on restore (heap insertion order does not
// matter for behaviour — expire compares records against the map).
//
// All of this is cold-path code, outside the cycle loop.

import (
	"sort"

	"smtfetch/internal/isa"
	"smtfetch/internal/snap"
)

// EncodeState serializes the cache's tag/valid/LRU arrays and counters.
func (c *Cache) EncodeState(w *snap.Writer) {
	w.U64(uint64(len(c.tags)))
	for i := range c.tags {
		w.U64(c.tags[i])
		w.Bool(c.valid[i])
		w.U64(c.lru[i])
	}
	w.U64(c.stamp)
	w.U64(c.Accesses)
	w.U64(c.Misses)
}

// DecodeState restores the cache's tag/valid/LRU arrays and counters.
func (c *Cache) DecodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != len(c.tags) {
		r.Fail("cache: size %d, snapshot has %d", len(c.tags), n)
		return
	}
	for i := range c.tags {
		c.tags[i] = r.U64()
		c.valid[i] = r.Bool()
		c.lru[i] = r.U64()
	}
	c.stamp = r.U64()
	c.Accesses = r.U64()
	c.Misses = r.U64()
}

// EncodeState serializes the TLB contents (the page index map is not
// serialized; it is rebuilt from pages/valid on decode).
func (t *TLB) EncodeState(w *snap.Writer) {
	w.U64(uint64(t.entries))
	for i := 0; i < t.entries; i++ {
		w.U64(t.pages[i])
		w.Bool(t.valid[i])
		w.U64(t.lru[i])
	}
	w.U64(t.stamp)
	w.Int(t.mru)
	w.U64(t.Accesses)
	w.U64(t.Misses)
}

// DecodeState restores the TLB contents and rebuilds the page index.
func (t *TLB) DecodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != t.entries {
		r.Fail("cache: TLB size %d, snapshot has %d", t.entries, n)
		return
	}
	for i := 0; i < t.entries; i++ {
		t.pages[i] = r.U64()
		t.valid[i] = r.Bool()
		t.lru[i] = r.U64()
	}
	t.stamp = r.U64()
	t.mru = r.Int()
	t.Accesses = r.U64()
	t.Misses = r.U64()
	if r.Err() != nil {
		return
	}
	clear(t.idx)
	for i := 0; i < t.entries; i++ {
		if t.valid[i] {
			t.idx[t.pages[i]] = i
		}
	}
}

// encodeState serializes the outstanding-miss set as sorted (line, ready)
// pairs.
func (s *mshrSet) encodeState(w *snap.Writer) {
	lines := make([]isa.Addr, 0, len(s.ready))
	//smtfetch:commutative keys are collected and sorted before encoding
	for line := range s.ready {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.U64(uint64(len(lines)))
	for _, line := range lines {
		w.U64(uint64(line))
		w.U64(s.ready[line])
	}
}

// decodeState restores the outstanding-miss set and rebuilds the heap.
func (s *mshrSet) decodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	clear(s.ready)
	s.heap = s.heap[:0]
	for i := 0; i < n; i++ {
		line := isa.Addr(r.U64())
		ready := r.U64()
		if r.Err() != nil {
			return
		}
		s.add(line, ready)
	}
}

// EncodeState serializes the whole hierarchy's dynamic state.
func (h *Hierarchy) EncodeState(w *snap.Writer) {
	h.L1I.EncodeState(w)
	h.L1D.EncodeState(w)
	h.L2.EncodeState(w)
	h.ITLB.EncodeState(w)
	h.DTLB.EncodeState(w)
	h.imshrs.encodeState(w)
	h.dmshrs.encodeState(w)
}

// DecodeState restores the whole hierarchy's dynamic state.
func (h *Hierarchy) DecodeState(r *snap.Reader) {
	h.L1I.DecodeState(r)
	h.L1D.DecodeState(r)
	h.L2.DecodeState(r)
	h.ITLB.DecodeState(r)
	h.DTLB.DecodeState(r)
	h.imshrs.decodeState(r)
	h.dmshrs.decodeState(r)
}

// warmTouch models the residency effect of an access without any timing,
// MSHR, or statistics side effects: TLB fill, L1 lookup-or-fill through L2.
// Used by functional fast-forward, where the clock is frozen.
func warmTouch(l1, l2 *Cache, tlb *TLB, a isa.Addr) {
	warmTLB(tlb, a)
	if warmLookup(l1, a) {
		return
	}
	if !warmLookup(l2, a) {
		l2.Fill(a)
	}
	l1.Fill(a)
}

// warmLookup is Cache.Lookup without access/miss counters.
func warmLookup(c *Cache, a isa.Addr) bool {
	set := c.set(a)
	tag := uint64(a) >> c.lineBits
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	return false
}

// warmTLB is TLB.Lookup without access/miss counters.
func warmTLB(t *TLB, a isa.Addr) {
	page := uint64(a) >> t.pageBits
	if i := t.mru; t.valid[i] && t.pages[i] == page {
		t.stamp++
		t.lru[i] = t.stamp
		return
	}
	if i, ok := t.idx[page]; ok {
		t.stamp++
		t.lru[i] = t.stamp
		t.mru = i
		return
	}
	victim := 0
	for i := 0; i < t.entries; i++ {
		if !t.valid[i] {
			victim = i
		} else if t.valid[victim] && t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	if t.valid[victim] {
		delete(t.idx, t.pages[victim])
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.idx[page] = victim
	t.mru = victim
	t.stamp++
	t.lru[victim] = t.stamp
}

// WarmInstr models the residency effect of an instruction fetch without
// timing, MSHRs, or statistics: functional fast-forward keeps the caches
// and TLBs warm while the clock is frozen.
func (h *Hierarchy) WarmInstr(a isa.Addr) { warmTouch(h.L1I, h.L2, h.ITLB, a) }

// WarmData is WarmInstr for the data port.
func (h *Hierarchy) WarmData(a isa.Addr) { warmTouch(h.L1D, h.L2, h.DTLB, a) }
