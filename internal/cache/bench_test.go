package cache

import (
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/isa"
)

// BenchmarkDataHit measures the L1-hit fast path (the overwhelmingly
// common case in the cycle loop).
func BenchmarkDataHit(b *testing.B) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	h.Data(0, 0x1000) // install line and translation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(uint64(i)+1_000, 0x1000)
	}
}

// BenchmarkDataMissStream measures the allocate-and-expire path: every
// access misses a fresh line, so each iteration allocates an MSHR and
// expires old ones as the clock advances.
func BenchmarkDataMissStream(b *testing.B) {
	cfg := config.Default()
	h := NewHierarchy(&cfg)
	lineBytes := uint64(cfg.L1D.LineBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(uint64(i)*4, isa.Addr(uint64(i)*lineBytes))
	}
}

// BenchmarkDataMerge measures the hit-under-miss merge path.
func BenchmarkDataMerge(b *testing.B) {
	cfg := config.Default()
	cfg.MemLatency = 1 << 30 // fills effectively never complete
	h := NewHierarchy(&cfg)
	h.Data(0, 0x1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := h.Data(uint64(i)+1, 0x1000); !res.Merged {
			b.Fatal("expected merge")
		}
	}
}

// BenchmarkInFlightData measures the outstanding-miss count the issue
// stage reads every cycle; it must be O(1), not a map scan.
func BenchmarkInFlightData(b *testing.B) {
	cfg := config.Default()
	cfg.MemLatency = 1 << 30
	h := NewHierarchy(&cfg)
	lineBytes := uint64(cfg.L1D.LineBytes)
	for i := 0; i < 64; i++ {
		h.Data(0, isa.Addr(uint64(i)*lineBytes))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.InFlightData(uint64(i)) != 64 {
			b.Fatal("outstanding misses expired unexpectedly")
		}
	}
}
