package server

import (
	"path/filepath"
	"strings"
	"testing"

	"smtfetch/internal/experiment"
)

func cacheRes(workload string, seed uint64, ipc float64) experiment.Result {
	return experiment.Result{
		Workload: workload, Engine: "stream", Policy: "ICOUNT.1.8", Seed: seed, IPC: ipc,
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	a, b, d := cacheRes("A", 1, 1.0), cacheRes("B", 1, 2.0), cacheRes("D", 1, 3.0)
	c.Put("fp/"+a.Key(), a)
	c.Put("fp/"+b.Key(), b)
	// Touch A so B is the LRU entry when D evicts.
	if _, ok := c.Get("fp/" + a.Key()); !ok {
		t.Fatal("A missing before eviction")
	}
	c.Put("fp/"+d.Key(), d)
	if _, ok := c.Get("fp/" + b.Key()); ok {
		t.Fatal("LRU entry B survived eviction")
	}
	if _, ok := c.Get("fp/" + a.Key()); !ok {
		t.Fatal("recently used A was evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := NewCache(8)
	r := cacheRes("A", 1, 1.0)
	if _, ok := c.Get("fp/" + r.Key()); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("fp/"+r.Key(), r)
	if _, ok := c.Get("fp/" + r.Key()); !ok {
		t.Fatal("miss after store")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCachePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache(8)
	a, b := cacheRes("A", 1, 1.5), cacheRes("B", 2, 2.5)
	c.Put("fpa/"+a.Key(), a)
	c.Put("fpb/"+b.Key(), b)
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewCache(8)
	n, err := loaded.LoadFile(path)
	if err != nil || n != 2 {
		t.Fatalf("LoadFile = %d, %v", n, err)
	}
	got, ok := loaded.Get("fpa/" + a.Key())
	if !ok || got != a {
		t.Fatalf("A after reload = %+v, %v", got, ok)
	}
	if _, ok := loaded.Get("fpb/" + b.Key()); !ok {
		t.Fatal("B missing after reload")
	}
	// Loads are not live traffic: only the two Gets above may count.
	st := loaded.Stats()
	if st.Stores != 0 || st.Hits != 2 {
		t.Fatalf("stats after reload = %+v", st)
	}
}

func TestCacheLoadPreservesRecency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache(8)
	a, b := cacheRes("A", 1, 1.0), cacheRes("B", 1, 2.0)
	c.Put("fp/"+a.Key(), a) // older
	c.Put("fp/"+b.Key(), b) // newer
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Reload into a capacity-2 cache and add a third entry: the entry
	// that was LRU at save time (A) must be the one evicted.
	loaded := NewCache(2)
	if _, err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	d := cacheRes("D", 1, 3.0)
	loaded.Put("fp/"+d.Key(), d)
	if _, ok := loaded.Get("fp/" + a.Key()); ok {
		t.Fatal("saved-as-LRU entry A survived eviction after reload")
	}
	if _, ok := loaded.Get("fp/" + b.Key()); !ok {
		t.Fatal("saved-as-MRU entry B was evicted after reload")
	}
}

func TestCacheLoadMissingFile(t *testing.T) {
	c := NewCache(2)
	n, err := c.LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if n != 0 || err != nil {
		t.Fatalf("missing file: %d, %v", n, err)
	}
}

func TestCacheLoadRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	writeFile(t, path, `{"schema_version": 999, "entries": []}`)
	if _, err := NewCache(2).LoadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}

func TestFingerprintSeparatesPhaseLengths(t *testing.T) {
	base := &experiment.Sweep{Workloads: []string{"2_MIX"}}
	longer := &experiment.Sweep{Workloads: []string{"2_MIX"}, MeasureInstrs: 123}
	if Fingerprint(base) == Fingerprint(longer) {
		t.Fatal("different phase lengths share a fingerprint")
	}
	// The axes themselves don't split the cache: a sub-grid of the same
	// configuration must share cached cells with the full grid.
	subgrid := &experiment.Sweep{Workloads: []string{"2_MIX", "4_MIX"}}
	if Fingerprint(base) != Fingerprint(subgrid) {
		t.Fatal("axis-only difference split the fingerprint")
	}
}
