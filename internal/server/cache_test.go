package server

import (
	"path/filepath"
	"strings"
	"testing"

	"smtfetch/internal/experiment"
)

func cacheRes(workload string, seed uint64, ipc float64) experiment.Result {
	return experiment.Result{
		Workload: workload, Engine: "stream", Policy: "ICOUNT.1.8", Seed: seed, IPC: ipc,
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	a, b, d := cacheRes("A", 1, 1.0), cacheRes("B", 1, 2.0), cacheRes("D", 1, 3.0)
	c.Put("fp/"+a.Key(), a)
	c.Put("fp/"+b.Key(), b)
	// Touch A so B is the LRU entry when D evicts.
	if _, ok := c.Get("fp/" + a.Key()); !ok {
		t.Fatal("A missing before eviction")
	}
	c.Put("fp/"+d.Key(), d)
	if _, ok := c.Get("fp/" + b.Key()); ok {
		t.Fatal("LRU entry B survived eviction")
	}
	if _, ok := c.Get("fp/" + a.Key()); !ok {
		t.Fatal("recently used A was evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Stores != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := NewCache(8)
	r := cacheRes("A", 1, 1.0)
	if _, ok := c.Get("fp/" + r.Key()); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("fp/"+r.Key(), r)
	if _, ok := c.Get("fp/" + r.Key()); !ok {
		t.Fatal("miss after store")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCachePersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache(8)
	a, b := cacheRes("A", 1, 1.5), cacheRes("B", 2, 2.5)
	c.Put("fpa/"+a.Key(), a)
	c.Put("fpb/"+b.Key(), b)
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewCache(8)
	n, err := loaded.LoadFile(path)
	if err != nil || n != 2 {
		t.Fatalf("LoadFile = %d, %v", n, err)
	}
	got, ok := loaded.Get("fpa/" + a.Key())
	if !ok || got != a {
		t.Fatalf("A after reload = %+v, %v", got, ok)
	}
	if _, ok := loaded.Get("fpb/" + b.Key()); !ok {
		t.Fatal("B missing after reload")
	}
	// Loads are not live traffic: only the two Gets above may count.
	st := loaded.Stats()
	if st.Stores != 0 || st.Hits != 2 {
		t.Fatalf("stats after reload = %+v", st)
	}
}

func TestCacheLoadPreservesRecency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache(8)
	a, b := cacheRes("A", 1, 1.0), cacheRes("B", 1, 2.0)
	c.Put("fp/"+a.Key(), a) // older
	c.Put("fp/"+b.Key(), b) // newer
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Reload into a capacity-2 cache and add a third entry: the entry
	// that was LRU at save time (A) must be the one evicted.
	loaded := NewCache(2)
	if _, err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	d := cacheRes("D", 1, 3.0)
	loaded.Put("fp/"+d.Key(), d)
	if _, ok := loaded.Get("fp/" + a.Key()); ok {
		t.Fatal("saved-as-LRU entry A survived eviction after reload")
	}
	if _, ok := loaded.Get("fp/" + b.Key()); !ok {
		t.Fatal("saved-as-MRU entry B was evicted after reload")
	}
}

func TestCacheLoadMissingFile(t *testing.T) {
	c := NewCache(2)
	n, err := c.LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if n != 0 || err != nil {
		t.Fatalf("missing file: %d, %v", n, err)
	}
}

func TestCacheLoadRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	writeFile(t, path, `{"schema_version": 999, "entries": []}`)
	if _, err := NewCache(2).LoadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}

func TestFingerprintSeparatesPhaseLengths(t *testing.T) {
	base := &experiment.Sweep{Workloads: []string{"2_MIX"}}
	longer := &experiment.Sweep{Workloads: []string{"2_MIX"}, MeasureInstrs: 123}
	if Fingerprint(base) == Fingerprint(longer) {
		t.Fatal("different phase lengths share a fingerprint")
	}
	// The axes themselves don't split the cache: a sub-grid of the same
	// configuration must share cached cells with the full grid.
	subgrid := &experiment.Sweep{Workloads: []string{"2_MIX", "4_MIX"}}
	if Fingerprint(base) != Fingerprint(subgrid) {
		t.Fatal("axis-only difference split the fingerprint")
	}
}

func TestFingerprintWarmupCyclesMissesCache(t *testing.T) {
	// -warmup-cycles is an explicit, documented component of the result
	// cache key: a sweep that changes only it must miss every cell cached
	// under the old warm-up, never be served its results.
	base := &experiment.Sweep{Workloads: []string{"2_MIX"}, WarmupCycles: 0}
	warmed := &experiment.Sweep{Workloads: []string{"2_MIX"}, WarmupCycles: 5_000}
	if Fingerprint(base) == Fingerprint(warmed) {
		t.Fatal("different -warmup-cycles share a fingerprint")
	}
	c := NewCache(8)
	r := cacheRes("2_MIX", 1, 1.0)
	cell := r.Cell()
	c.Put(CacheKey(Fingerprint(base), cell), r)
	if _, ok := c.Get(CacheKey(Fingerprint(warmed), cell)); ok {
		t.Fatal("cell warmed without -warmup-cycles served to a sweep that set it")
	}
}

func TestFingerprintSeparatesSampleAndWarmFork(t *testing.T) {
	base := &experiment.Sweep{Workloads: []string{"2_MIX"}}
	sampled := &experiment.Sweep{Workloads: []string{"2_MIX"}, Sample: "detail:1000,skip:9000"}
	forked := &experiment.Sweep{Workloads: []string{"2_MIX"}, WarmFork: experiment.WarmForkFork}
	if Fingerprint(base) == Fingerprint(sampled) {
		t.Fatal("sampled sweep shares the full-detail fingerprint")
	}
	if Fingerprint(base) == Fingerprint(forked) {
		t.Fatal("warm-fork sweep shares the cold-warm fingerprint (seed derivation differs)")
	}
}

func TestCacheSnapshotTierLRUAndStats(t *testing.T) {
	c := NewCache(2)
	c.SetSnapshotCapacity(2)
	c.PutSnapshot("aaaa", []byte{1})
	c.PutSnapshot("bbbb", []byte{2})
	if _, ok := c.GetSnapshot("aaaa"); !ok {
		t.Fatal("snapshot aaaa missing")
	}
	c.PutSnapshot("cccc", []byte{3}) // evicts bbbb (LRU)
	if _, ok := c.GetSnapshot("bbbb"); ok {
		t.Fatal("LRU snapshot bbbb survived eviction")
	}
	if blob, ok := c.GetSnapshot("aaaa"); !ok || len(blob) != 1 || blob[0] != 1 {
		t.Fatalf("snapshot aaaa after eviction = %v, %v", blob, ok)
	}
	st := c.Stats()
	if st.SnapshotEntries != 2 || st.SnapshotStores != 3 || st.SnapshotEvictions != 1 {
		t.Fatalf("snapshot stats = %+v", st)
	}
	if st.SnapshotHits != 2 || st.SnapshotMisses != 1 {
		t.Fatalf("snapshot hit/miss = %+v", st)
	}
	// The tiers are independent: snapshot traffic must not leak into the
	// result counters and vice versa.
	if st.Entries != 0 || st.Stores != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("result stats moved on snapshot traffic: %+v", st)
	}
}

func TestCachePersistsBothTiers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := NewCache(8)
	r := cacheRes("A", 1, 1.5)
	c.Put("fp/"+r.Key(), r)
	c.PutSnapshot("deadbeefdeadbeef", []byte{4, 5, 6})
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	loaded := NewCache(8)
	n, err := loaded.LoadFile(path)
	if err != nil || n != 2 {
		t.Fatalf("LoadFile = %d, %v", n, err)
	}
	if got, ok := loaded.Get("fp/" + r.Key()); !ok || got != r {
		t.Fatalf("result after reload = %+v, %v", got, ok)
	}
	blob, ok := loaded.GetSnapshot("deadbeefdeadbeef")
	if !ok || string(blob) != string([]byte{4, 5, 6}) {
		t.Fatalf("snapshot after reload = %v, %v", blob, ok)
	}
	// Loads are not live traffic on either tier.
	if st := loaded.Stats(); st.Stores != 0 || st.SnapshotStores != 0 {
		t.Fatalf("stats after reload = %+v", st)
	}
}

func TestCacheLoadAcceptsVersion1Files(t *testing.T) {
	// A version-1 file has untiered entries: every one is implicitly a
	// result. Servers upgraded across the schema bump keep their warm
	// result caches.
	path := filepath.Join(t.TempDir(), "cache.json")
	writeFile(t, path, `{
  "schema_version": 1,
  "entries": [
    {
      "fingerprint": "0011223344556677",
      "result": {"workload": "2_MIX", "engine": "stream", "policy": "ICOUNT.1.8", "seed": 1, "ipc": 2.5, "ipfc": 3.0, "cond_accuracy": 0.9}
    }
  ]
}`)
	c := NewCache(8)
	n, err := c.LoadFile(path)
	if err != nil || n != 1 {
		t.Fatalf("LoadFile = %d, %v", n, err)
	}
	got, ok := c.Get("0011223344556677/2_MIX/stream/ICOUNT.1.8/1")
	if !ok || got.IPC != 2.5 {
		t.Fatalf("v1 entry after load = %+v, %v", got, ok)
	}
}

func TestCacheLoadRejectsUnknownTier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	writeFile(t, path, `{
  "schema_version": 2,
  "entries": [
    {"tier": "hologram", "key": "feedfacefeedface", "blob": "AAEC"}
  ]
}`)
	_, err := NewCache(8).LoadFile(path)
	if err == nil {
		t.Fatal("unknown artifact tier accepted")
	}
	for _, want := range []string{"hologram", "result", "snapshot"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-tier error %q does not mention %q", err, want)
		}
	}
}

func TestCacheLoadRejectsMalformedTierEntries(t *testing.T) {
	cases := map[string]string{
		"result without result": `{"schema_version": 2, "entries": [{"tier": "result", "fingerprint": "ff"}]}`,
		"snapshot without key":  `{"schema_version": 2, "entries": [{"tier": "snapshot", "blob": "AAEC"}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(t.TempDir(), "cache.json")
		writeFile(t, path, content)
		if _, err := NewCache(8).LoadFile(path); err == nil {
			t.Fatalf("%s: malformed entry accepted", name)
		}
	}
}
