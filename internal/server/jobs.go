package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Job states, as reported by GET /jobs/{id}.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the JSON body of GET /jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done / Total track per-cell progress (cache hits count as done).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is set when the job failed outright (the grid never ran) —
	// per-cell failures stay inside the results' error fields instead.
	Error string `json:"error,omitempty"`
	// ResultsURL serves the results document once the job is done.
	ResultsURL string `json:"results_url,omitempty"`
}

// Job is one asynchronous sweep execution. It is exported (together with
// JobRegistry) because the cluster coordinator exposes the identical
// /jobs/{id} polling protocol: one implementation, two services.
type Job struct {
	id string

	mu      sync.Mutex
	state   string
	done    int
	total   int
	err     string
	results []byte // WriteJSON bytes, set when state == JobDone
}

// Status snapshots the job for GET /jobs/{id}.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.err}
	if j.state == JobDone {
		st.ResultsURL = "/jobs/" + j.id + "/results"
	}
	return st
}

// Progress records per-cell completion progress.
func (j *Job) Progress(done int) {
	j.mu.Lock()
	j.done = done
	j.mu.Unlock()
}

// Finish moves the job out of the running state. A nil results document
// with a non-nil error marks the job failed; otherwise the job is done
// and err (per-cell failures, already inside the document) is dropped.
func (j *Job) Finish(results []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil && results == nil {
		j.state = JobFailed
		j.err = err.Error()
		return
	}
	// Per-cell errors travel inside the results document, matching the
	// CLI: the job itself completed.
	j.state = JobDone
	j.results = results
	j.done = j.total
}

// ResultBytes returns the results document once the job is done.
func (j *Job) ResultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results, j.state == JobDone
}

// JobRegistry tracks asynchronous sweeps. Completed jobs are retained up
// to a bound so poll results stay available for a while without growing
// without limit; running jobs are never evicted.
type JobRegistry struct {
	mu       sync.Mutex
	seq      int
	byID     map[string]*Job
	finished []string // completed job IDs in completion order
	maxDone  int
}

// NewJobRegistry builds a registry retaining up to maxDone finished jobs
// (minimum 1).
func NewJobRegistry(maxDone int) *JobRegistry {
	if maxDone < 1 {
		maxDone = 1
	}
	return &JobRegistry{byID: map[string]*Job{}, maxDone: maxDone}
}

// Create registers a new running job over total cells.
func (r *JobRegistry) Create(total int) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &Job{id: fmt.Sprintf("job-%d", r.seq), state: JobRunning, total: total}
	r.byID[j.id] = j
	return j
}

// Get looks a job up by ID.
func (r *JobRegistry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// Complete records that a job left the running state and evicts the
// oldest finished jobs beyond the retention bound.
func (r *JobRegistry) Complete(j *Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = append(r.finished, j.id)
	for len(r.finished) > r.maxDone {
		delete(r.byID, r.finished[0])
		r.finished = r.finished[1:]
	}
}

// HandleHTTP serves GET /jobs/{id} and GET /jobs/{id}/results from the
// registry. The sweep server and the cluster coordinator both mount it,
// so polling clients cannot tell them apart.
func (r *JobRegistry) HandleHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/jobs/")
	id, wantResults := rest, false
	if sub, ok := strings.CutSuffix(rest, "/results"); ok {
		id, wantResults = sub, true
	}
	j, ok := r.Get(id)
	if !ok || id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !wantResults {
		writeJSONBody(w, http.StatusOK, j.Status())
		return
	}
	blob, done := j.ResultBytes()
	if !done {
		httpError(w, http.StatusConflict, "job %s is %s, results not available", id, j.Status().State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(blob)
}
