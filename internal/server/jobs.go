package server

import (
	"fmt"
	"sync"
)

// Job states, as reported by GET /jobs/{id}.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the JSON body of GET /jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Done / Total track per-cell progress (cache hits count as done).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is set when the job failed outright (the grid never ran) —
	// per-cell failures stay inside the results' error fields instead.
	Error string `json:"error,omitempty"`
	// ResultsURL serves the results document once the job is done.
	ResultsURL string `json:"results_url,omitempty"`
}

// job is one asynchronous sweep execution.
type job struct {
	id string

	mu      sync.Mutex
	state   string
	done    int
	total   int
	err     string
	results []byte // WriteJSON bytes, set when state == JobDone
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Done: j.done, Total: j.total, Error: j.err}
	if j.state == JobDone {
		st.ResultsURL = "/jobs/" + j.id + "/results"
	}
	return st
}

func (j *job) progress(done int) {
	j.mu.Lock()
	j.done = done
	j.mu.Unlock()
}

func (j *job) finish(results []byte, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil && results == nil {
		j.state = JobFailed
		j.err = err.Error()
		return
	}
	// Per-cell errors travel inside the results document, matching the
	// CLI: the job itself completed.
	j.state = JobDone
	j.results = results
	j.done = j.total
}

func (j *job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results, j.state == JobDone
}

// jobRegistry tracks asynchronous sweeps. Completed jobs are retained up
// to a bound so poll results stay available for a while without growing
// without limit; running jobs are never evicted.
type jobRegistry struct {
	mu       sync.Mutex
	seq      int
	byID     map[string]*job
	finished []string // completed job IDs in completion order
	maxDone  int
}

func newJobRegistry(maxDone int) *jobRegistry {
	if maxDone < 1 {
		maxDone = 1
	}
	return &jobRegistry{byID: map[string]*job{}, maxDone: maxDone}
}

func (r *jobRegistry) create(total int) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &job{id: fmt.Sprintf("job-%d", r.seq), state: JobRunning, total: total}
	r.byID[j.id] = j
	return j
}

func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.byID[id]
	return j, ok
}

// complete records that a job left the running state and evicts the
// oldest finished jobs beyond the retention bound.
func (r *jobRegistry) complete(j *job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = append(r.finished, j.id)
	for len(r.finished) > r.maxDone {
		delete(r.byID, r.finished[0])
		r.finished = r.finished[1:]
	}
}
