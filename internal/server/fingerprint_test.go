package server

import (
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/experiment"
)

// The two cache keys canonicalize the same axes the same way: both strip
// the policy heuristic (the cell key resp. the canonical ICOUNT warm-up
// carries it), and both are moved by any genuinely semantic machine knob.
// If a new axis is canonicalized in one key but not the other, fork and
// rerun sweeps could agree while the result and snapshot cache tiers
// disagree about which cells are interchangeable.
func TestFingerprintAndWarmKeyCanonicalizeAlike(t *testing.T) {
	base := func() *experiment.Sweep {
		return &experiment.Sweep{WarmupInstrs: 10_000, WarmupCycles: 500}
	}
	cell := experiment.Cell{Workload: "2_MIX", Engine: config.GShareBTB, Policy: config.ICount28, Seed: 1}

	// Policy heuristic: canonicalized out of both keys. Fingerprint zeroes
	// Machine.FetchPolicy (the cell key carries the policy); WarmKey
	// replaces it with the canonical ICOUNT policy of the same shape.
	icount := base()
	flush := base()
	mc := config.Default()
	mc.FetchPolicy = config.ICount28
	icount.Machine = &mc
	mf := config.Default()
	mf.FetchPolicy = config.FetchPolicy{Policy: config.Flush, Threads: 2, Width: 8}
	flush.Machine = &mf
	if Fingerprint(icount) != Fingerprint(flush) {
		t.Error("Fingerprint split by the machine's policy heuristic; the cell key owns that axis")
	}
	if icount.WarmKey(cell) != flush.WarmKey(cell) {
		t.Error("WarmKey split by the machine's policy heuristic; canonicalization drifted from Fingerprint's")
	}

	// Engine: canonicalized out of Fingerprint (cell key carries it), but
	// a warm checkpoint's predictor state depends on it, so WarmKey keeps
	// it — via the cell, not the machine. The machine's engine field must
	// move neither key.
	ga := base()
	gb := base()
	ma := config.Default()
	ma.Engine = config.GShareBTB
	ga.Machine = &ma
	mb := config.Default()
	mb.Engine = config.StreamFetch
	gb.Machine = &mb
	if Fingerprint(ga) != Fingerprint(gb) {
		t.Error("Fingerprint split by the machine's engine field; the cell key owns that axis")
	}
	if ga.WarmKey(cell) != gb.WarmKey(cell) {
		t.Error("WarmKey split by the machine's engine field; the cell carries the engine")
	}
	other := cell
	other.Engine = config.StreamFetch
	if ga.WarmKey(cell) == ga.WarmKey(other) {
		t.Error("WarmKey ignores the cell's engine; warmed predictor state depends on it")
	}

	// A semantic machine knob must move both keys.
	big := base()
	mbig := config.Default()
	mbig.ROBSize = mbig.ROBSize * 2
	big.Machine = &mbig
	if Fingerprint(base()) == Fingerprint(big) {
		t.Error("Fingerprint ignores a semantic machine knob (ROBSize)")
	}
	if base().WarmKey(cell) == big.WarmKey(cell) {
		t.Error("WarmKey ignores a semantic machine knob (ROBSize)")
	}
}
