package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"smtfetch/internal/config"
	"smtfetch/internal/core"
	"smtfetch/internal/experiment"
)

// SweepRequest is the JSON body of POST /sweep. Axis fields carry the
// same spellings as the CLI flags (engine and POLICY.T.W names); empty
// axes take the same paper defaults as the CLI. Phase lengths of zero
// take the smtfetch defaults, and are part of the cache fingerprint.
type SweepRequest struct {
	Engines   []string `json:"engines,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`

	WarmupInstrs  uint64 `json:"warmup_instrs,omitempty"`
	WarmupCycles  uint64 `json:"warmup_cycles,omitempty"`
	MeasureInstrs uint64 `json:"measure_instrs,omitempty"`
	MaxCycles     uint64 `json:"max_cycles,omitempty"`

	// Sample is smtfetch's "detail:N,skip:M" sampled-measurement spec.
	Sample string `json:"sample,omitempty"`
	// WarmFork selects warm-checkpoint sharing ("fork" or "rerun"); see
	// experiment.Sweep.WarmFork. In fork mode the server backs the
	// checkpoints with its snapshot cache tier.
	WarmFork string `json:"warm_fork,omitempty"`

	// Async forces job mode even for grids under the sync cell limit.
	Async bool `json:"async,omitempty"`
}

// Sweep converts the request into an experiment grid, resolving the
// engine and policy spellings. The server's worker-pool bound is applied
// by the caller, not the request: clients don't control server load.
func (r SweepRequest) Sweep() (*experiment.Sweep, error) {
	sw := &experiment.Sweep{
		Workloads:     r.Workloads,
		Seeds:         r.Seeds,
		WarmupInstrs:  r.WarmupInstrs,
		WarmupCycles:  r.WarmupCycles,
		MeasureInstrs: r.MeasureInstrs,
		MaxCycles:     r.MaxCycles,
		Sample:        r.Sample,
		WarmFork:      r.WarmFork,
	}
	for _, s := range r.Engines {
		e, err := config.ParseEngine(s)
		if err != nil {
			return nil, err
		}
		sw.Engines = append(sw.Engines, e)
	}
	for _, s := range r.Policies {
		p, err := config.ParseFetchPolicy(s)
		if err != nil {
			return nil, err
		}
		sw.Policies = append(sw.Policies, p)
	}
	return sw, nil
}

// Config configures a Server. The zero value is usable: a 4096-entry
// cache, no persistence, grids up to 16 cells served synchronously.
type Config struct {
	// CacheSize bounds the result cache in entries (<= 0 = 4096).
	CacheSize int
	// CacheFile, when non-empty, is loaded at New and written by
	// SaveCache, so restarts keep warm results.
	CacheFile string
	// SyncCellLimit is the largest grid POST /sweep answers in-request;
	// bigger grids get a job ID and polling (< 0 = everything async,
	// 0 = default 16).
	SyncCellLimit int
	// Jobs bounds each sweep's worker pool; <= 0 means NumCPU.
	Jobs int
	// MaxFinishedJobs bounds how many completed jobs stay pollable
	// (<= 0 = 32). Running jobs are never evicted.
	MaxFinishedJobs int
	// SnapshotCacheSize bounds the warm-checkpoint cache tier in entries
	// (<= 0 = DefaultSnapshotCapacity). Checkpoints are megabytes each, so
	// this stays far below CacheSize.
	SnapshotCacheSize int
}

// Server is the sweep service: an http.Handler exposing
//
//	POST /sweep          run a grid (sync body or 202 + job ID)
//	GET  /jobs/{id}          poll an async sweep
//	GET  /jobs/{id}/results  fetch its results document
//	GET  /results/{key}      fetch one cached cell by content key
//	GET  /cache/stats        cache counter snapshot
//	GET  /healthz            liveness probe
//
// All sweep execution funnels through the cache: a cell whose content
// key is present is served without simulating, and because the simulator
// is deterministic the response is byte-identical either way.
type Server struct {
	cache     *Cache
	cacheFile string
	jobs      *JobRegistry
	syncLimit int
	poolJobs  int
	mux       *http.ServeMux

	// jobsWG tracks running async sweep goroutines so a graceful
	// shutdown can drain them (WaitJobs) before persisting the cache.
	jobsWG sync.WaitGroup

	// flight dedupes concurrent executions of the same cell across
	// requests: two overlapping grids that miss on a shared cell must
	// simulate it once, not twice.
	flight struct {
		mu sync.Mutex
		m  map[string]chan struct{}
	}
}

// New builds a Server, loading the cache file when one is configured.
func New(cfg Config) (*Server, error) {
	size := cfg.CacheSize
	if size <= 0 {
		size = 4096
	}
	syncLimit := cfg.SyncCellLimit
	if syncLimit == 0 {
		syncLimit = 16
	}
	maxDone := cfg.MaxFinishedJobs
	if maxDone <= 0 {
		maxDone = 32
	}
	s := &Server{
		cache:     NewCache(size),
		cacheFile: cfg.CacheFile,
		jobs:      NewJobRegistry(maxDone),
		syncLimit: syncLimit,
		poolJobs:  cfg.Jobs,
	}
	if cfg.SnapshotCacheSize > 0 {
		s.cache.SetSnapshotCapacity(cfg.SnapshotCacheSize)
	}
	s.flight.m = map[string]chan struct{}{}
	if cfg.CacheFile != "" {
		if _, err := s.cache.LoadFile(cfg.CacheFile); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/jobs/", s.jobs.HandleHTTP)
	s.mux.HandleFunc("/results/", s.handleResult)
	s.mux.HandleFunc("/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/identz", s.handleIdentz)
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// WaitJobs blocks until every running async sweep has finished. A
// graceful shutdown calls it after the HTTP listener closes and before
// SaveCache, so in-flight jobs complete and their cells persist instead
// of being killed mid-grid.
func (s *Server) WaitJobs() {
	s.jobsWG.Wait()
}

// SaveCache persists the cache to the configured file; a no-op without one.
func (s *Server) SaveCache() error {
	if s.cacheFile == "" {
		return nil
	}
	return s.cache.SaveFile(s.cacheFile)
}

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// httpError sends a plain-text error. Validation and parse failures are
// the caller's fault (400); everything else that can fail here is a
// lookup miss (404) or a method mismatch (405).
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSONBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /sweep only")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	sw, err := req.Sweep()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	sw.Jobs = s.poolJobs
	cells, err := sw.Prepare()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep: %v", err)
		return
	}
	fp := Fingerprint(sw)

	if !req.Async && s.syncLimit > 0 && len(cells) <= s.syncLimit {
		blob, err := s.runSweep(sw, cells, fp)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "sweep failed: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
		return
	}

	j := s.jobs.Create(len(cells))
	sw.OnResult = func(done, total int, _ experiment.Result) { j.Progress(done) }
	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		blob, err := s.runSweep(sw, cells, fp)
		j.Finish(blob, err)
		s.jobs.Complete(j)
	}()
	writeJSONBody(w, http.StatusAccepted, j.Status())
}

// runSweep executes cells through the cache: hits are served without
// simulating, misses execute on the sweep's worker pool and are stored
// (error cells excepted, so transient failures retry on the next
// request). Per-cell failures stay inside the results document — the
// sweep itself succeeded, matching CLI semantics where a partially
// failed grid still writes its results file.
func (s *Server) runSweep(sw *experiment.Sweep, cells []experiment.Cell, fp string) ([]byte, error) {
	// Back warm-fork checkpoints with the snapshot cache tier: a repeated
	// sweep (or one sharing warm groups with an earlier sweep) restores the
	// persisted checkpoint instead of re-simulating the warm-up.
	sw.SnapshotSource = s.resolveSnapshot
	src := func(c experiment.Cell) (experiment.Result, bool) {
		if h := testHookCellStart; h != nil {
			h(c)
		}
		return s.resolveKey(CacheKey(fp, c), func() experiment.Result {
			return sw.ExecuteCell(c)
		}), true
	}
	results, _ := sw.RunCells(cells, src)
	return experiment.MarshalJSONResults(results)
}

// resolveSnapshot answers one warm key from the snapshot cache tier,
// building (warming + checkpointing) on a miss. Concurrent misses on the
// same key across overlapping jobs are single-flighted like result cells;
// build failures are not cached, so waiters retry. Warm keys are pure hex,
// so the "snapshot/" flight-key prefix cannot collide with result flight
// keys (fingerprint-prefixed cache keys contain a cell suffix).
func (s *Server) resolveSnapshot(key string, build func() ([]byte, error)) ([]byte, error) {
	for {
		if blob, ok := s.cache.GetSnapshot(key); ok {
			return blob, nil
		}
		s.flight.mu.Lock()
		fk := "snapshot/" + key
		ch, running := s.flight.m[fk]
		if !running {
			ch = make(chan struct{})
			s.flight.m[fk] = ch
		}
		s.flight.mu.Unlock()
		if running {
			<-ch
			continue
		}
		blob, err := build()
		if err == nil {
			s.cache.PutSnapshot(key, blob)
		}
		s.flight.mu.Lock()
		delete(s.flight.m, fk)
		s.flight.mu.Unlock()
		close(ch)
		return blob, err
	}
}

// resolveKey answers one content key from the cache, executing exec on a
// miss. Concurrent misses on the same key are single-flighted: one
// caller executes, the rest wait and read its cached result — two
// overlapping grids posted at the same time simulate each shared cell
// once. If the leader's execution errors (nothing gets cached), each
// waiter retries, so transient failures don't fan out to every waiter.
func (s *Server) resolveKey(key string, exec func() experiment.Result) experiment.Result {
	for {
		if res, ok := s.cache.Get(key); ok {
			return res
		}
		s.flight.mu.Lock()
		ch, running := s.flight.m[key]
		if !running {
			ch = make(chan struct{})
			s.flight.m[key] = ch
		}
		s.flight.mu.Unlock()
		if running {
			<-ch
			continue
		}
		res := exec()
		s.storeResult(key, res)
		s.flight.mu.Lock()
		delete(s.flight.m, key)
		s.flight.mu.Unlock()
		close(ch)
		return res
	}
}

// storeResult caches a completed cell. Error cells are never stored: an
// error's IPC 0 is a failure marker, not a value, and caching it would
// pin a transient failure until eviction instead of retrying it on the
// next request.
func (s *Server) storeResult(key string, res experiment.Result) {
	if res.Error != "" {
		return
	}
	s.cache.Put(key, res)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/results/")
	res, ok := s.cache.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	writeJSONBody(w, http.StatusOK, res)
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSONBody(w, http.StatusOK, s.cache.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSONBody(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Identity is the JSON body of GET /identz: what this worker is and which
// schema versions it speaks. The cluster coordinator probes it before
// admitting a worker into the rendezvous ring — merging results from a
// worker with a different result schema would corrupt the merged
// document, so a version mismatch keeps the worker out of rotation.
type Identity struct {
	Service         string `json:"service"`
	ResultSchema    int    `json:"result_schema"`
	CacheSchema     int    `json:"cache_schema"`
	SnapshotVersion int    `json:"snapshot_version"`
}

// ServiceName identifies a sweep worker in GET /identz responses.
const ServiceName = "smtfetch-sweep-worker"

// Identz is the identity this server reports.
func Identz() Identity {
	return Identity{
		Service:         ServiceName,
		ResultSchema:    experiment.SchemaVersion,
		CacheSchema:     CacheSchemaVersion,
		SnapshotVersion: core.SnapshotVersion,
	}
}

func (s *Server) handleIdentz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSONBody(w, http.StatusOK, Identz())
}

// testHookCellStart, when non-nil, is called at the start of every cell
// resolution inside runSweep. Shutdown tests use it to hold a cell (and
// therefore its job) deterministically in flight while they assert the
// drain-then-save ordering; production code never sets it.
var testHookCellStart func(experiment.Cell)
