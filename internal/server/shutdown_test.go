package server

import (
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smtfetch/internal/experiment"
)

// TestShutdownDrainsJobThenSaves pins the serve-shutdown ordering with
// an async job deterministically held in flight: WaitJobs must not
// return while a cell is executing, and the cache saved afterwards must
// contain the job's results — the restarted server serves the same grid
// without simulating. All synchronization is channel-based: the 202
// response guarantees the job goroutine is registered with the drain
// WaitGroup, and the cell-start hook holds the cell mid-execution.
func TestShutdownDrainsJobThenSaves(t *testing.T) {
	cacheFile := filepath.Join(t.TempDir(), "cache.json")
	srv, ts := newTestServer(t, Config{CacheFile: cacheFile, SyncCellLimit: -1})

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookCellStart = func(experiment.Cell) {
		once.Do(func() { close(started) })
		<-release
	}
	defer func() { testHookCellStart = nil }()

	resp, body := postSweep(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweep = %s, want 202: %s", resp.Status, body)
	}
	// The 202 was written after jobsWG.Add, so the drain below cannot
	// miss the job; the hook confirms a cell is now executing inside it.
	<-started

	drained := make(chan struct{})
	go func() {
		srv.WaitJobs()
		close(drained)
	}()
	// The job goroutine is provably blocked inside the held cell, so its
	// WaitGroup slot is still claimed: WaitJobs cannot have returned.
	select {
	case <-drained:
		t.Fatal("WaitJobs returned while a cell was still executing")
	default:
	}
	if _, err := os.Stat(cacheFile); !os.IsNotExist(err) {
		t.Fatalf("cache file exists before shutdown saved it (stat err %v)", err)
	}

	close(release)
	<-drained
	if err := srv.SaveCache(); err != nil {
		t.Fatalf("SaveCache after drain: %v", err)
	}

	// A restarted server loads the drained job's cells from the file and
	// answers the same grid without a single simulation.
	testHookCellStart = nil
	restarted, ts2 := newTestServer(t, Config{CacheFile: cacheFile})
	resp2, body2 := postSweep(t, ts2, tinyRequest())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted sweep: %s: %s", resp2.Status, body2)
	}
	if st := restarted.CacheStats(); st.Misses != 0 || st.Hits != 2 {
		t.Fatalf("restarted server stats = %+v, want 2 hits and 0 misses", st)
	}
}
