// Package server turns the sweep harness into a long-running HTTP service:
// it accepts sweep requests as JSON, expands and validates them with the
// experiment machinery, executes cells on the bounded worker pool, and
// memoizes every completed cell in a content-keyed result cache so a
// repeated or overlapping grid is served without re-simulating.
//
// The cache key is the pair (sweep fingerprint, cell key). The cell key is
// already content-derived (workload/engine/policy/seed) and the simulator
// is deterministic, so two requests that agree on the fingerprint — the
// phase lengths, machine configuration, and result schema — must produce
// bit-identical results for a shared cell. That makes cache hits
// indistinguishable from re-execution, byte for byte.
package server

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"smtfetch/internal/config"
	"smtfetch/internal/experiment"
)

// Fingerprint hashes everything besides the cell identity that determines
// a cell's result: the simulation phase lengths (WarmupInstrs and
// WarmupCycles are explicit fields — a sweep with a different warm-up can
// never be served another warm-up's cells), the sampling spec, the
// warm-fork mode (it changes seed derivation), the machine configuration
// (with the engine/policy fields zeroed — the cell key carries those), and
// the result schema version. Sweeps with equal fingerprints may share
// cached cells.
func Fingerprint(s *experiment.Sweep) string {
	mc := config.Default()
	if s.Machine != nil {
		mc = *s.Machine
	}
	// Engine and policy vary per cell and are overwritten by the runner;
	// canonicalize them out so they cannot split the cache.
	mc.Engine = 0
	mc.FetchPolicy = config.FetchPolicy{}
	blob, err := json.Marshal(struct {
		ResultSchema  int
		WarmupInstrs  uint64
		WarmupCycles  uint64
		MeasureInstrs uint64
		MaxCycles     uint64
		Sample        string
		WarmFork      string
		Machine       config.Config
	}{experiment.SchemaVersion, s.WarmupInstrs, s.WarmupCycles, s.MeasureInstrs, s.MaxCycles, s.Sample, s.WarmFork, mc})
	if err != nil {
		// config.Config is a plain struct of scalars; this cannot fail.
		panic(fmt.Sprintf("server: fingerprint marshal: %v", err))
	}
	h := fnv.New64a()
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey is the full content key of one cached cell.
func CacheKey(fingerprint string, c experiment.Cell) string {
	return fingerprint + "/" + c.Key()
}

// CacheStats is the counter snapshot served by GET /cache/stats. The
// snapshot_* counters cover the warm-checkpoint artifact tier; the rest
// cover the result tier.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`

	SnapshotEntries   int    `json:"snapshot_entries"`
	SnapshotCapacity  int    `json:"snapshot_capacity"`
	SnapshotHits      uint64 `json:"snapshot_hits"`
	SnapshotMisses    uint64 `json:"snapshot_misses"`
	SnapshotStores    uint64 `json:"snapshot_stores"`
	SnapshotEvictions uint64 `json:"snapshot_evictions"`
}

// DefaultSnapshotCapacity bounds the snapshot tier when the owner does not
// call SetSnapshotCapacity. Snapshot blobs are megabytes, not bytes, so
// the bound is far below the result tier's.
const DefaultSnapshotCapacity = 64

// Cache is a bounded two-tier LRU, safe for concurrent use. The result
// tier holds completed sweep cells keyed by CacheKey(fingerprint, cell);
// the snapshot tier holds warm-checkpoint blobs (core.Sim.Snapshot
// artifacts) keyed by experiment warm keys, letting repeated sweeps skip
// the warm-up phase entirely in warm-fork mode.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	byKey     map[string]*list.Element
	hits      uint64
	misses    uint64
	stores    uint64
	evictions uint64

	snapCap       int
	snapLL        *list.List
	snapByKey     map[string]*list.Element
	snapHits      uint64
	snapMisses    uint64
	snapStores    uint64
	snapEvictions uint64
}

type cacheEntry struct {
	key string
	res experiment.Result
}

type snapCacheEntry struct {
	key  string
	blob []byte
}

// NewCache returns an empty cache bounded to capacity result entries
// (minimum 1) and DefaultSnapshotCapacity snapshot entries.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity:  capacity,
		ll:        list.New(),
		byKey:     map[string]*list.Element{},
		snapCap:   DefaultSnapshotCapacity,
		snapLL:    list.New(),
		snapByKey: map[string]*list.Element{},
	}
}

// SetSnapshotCapacity rebounds the snapshot tier (minimum 1), evicting
// immediately if the tier is over the new bound.
func (c *Cache) SetSnapshotCapacity(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapCap = n
	c.evictSnapshots()
}

// GetSnapshot returns the cached warm-checkpoint blob for key, marking it
// most recently used. Callers must not mutate the returned blob.
func (c *Cache) GetSnapshot(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.snapByKey[key]
	if !ok {
		c.snapMisses++
		return nil, false
	}
	c.snapHits++
	c.snapLL.MoveToFront(el)
	return el.Value.(*snapCacheEntry).blob, true
}

// PutSnapshot stores a warm-checkpoint blob under key, evicting the least
// recently used snapshot when the tier is full.
func (c *Cache) PutSnapshot(key string, blob []byte) {
	c.putSnapshot(key, blob, true)
}

func (c *Cache) putSnapshot(key string, blob []byte, countStore bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if countStore {
		c.snapStores++
	}
	if el, ok := c.snapByKey[key]; ok {
		el.Value.(*snapCacheEntry).blob = blob
		c.snapLL.MoveToFront(el)
		return
	}
	c.snapByKey[key] = c.snapLL.PushFront(&snapCacheEntry{key: key, blob: blob})
	c.evictSnapshots()
}

// evictSnapshots trims the snapshot tier to its bound; callers hold c.mu.
func (c *Cache) evictSnapshots() {
	for c.snapLL.Len() > c.snapCap {
		oldest := c.snapLL.Back()
		c.snapLL.Remove(oldest)
		delete(c.snapByKey, oldest.Value.(*snapCacheEntry).key)
		c.snapEvictions++
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (experiment.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return experiment.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// when full. Storing an existing key refreshes its value and recency.
func (c *Cache) Put(key string, r experiment.Result) {
	c.put(key, r, true)
}

func (c *Cache) put(key string, r experiment.Result, countStore bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if countStore {
		c.stores++
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = r
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: r})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Evictions: c.evictions,

		SnapshotEntries:   c.snapLL.Len(),
		SnapshotCapacity:  c.snapCap,
		SnapshotHits:      c.snapHits,
		SnapshotMisses:    c.snapMisses,
		SnapshotStores:    c.snapStores,
		SnapshotEvictions: c.snapEvictions,
	}
}

// CacheSchemaVersion versions the on-disk cache snapshot. Version 2 adds
// the entry tier: "result" entries reuse the experiment.Result schema that
// WriteJSON emits (so a result round-trips the disk byte-identically), and
// "snapshot" entries carry base64 warm-checkpoint blobs under their warm
// key. Version 1 files (untiered, results only) still load.
const CacheSchemaVersion = 2

// cacheFile is the persistence envelope: one entry per cached artifact,
// per tier in LRU order (least recently used first) so a reload
// reconstructs recency.
type cacheFile struct {
	SchemaVersion int              `json:"schema_version"`
	Entries       []persistedEntry `json:"entries"`
}

// persistedEntry is one cached artifact. Tier selects which fields are
// meaningful: "result" (or empty, the version-1 spelling) uses
// Fingerprint+Result, "snapshot" uses Key+Blob. Unknown tiers are a load
// error — a file written by a future schema must fail loudly, not load as
// an empty-looking result.
type persistedEntry struct {
	Tier        string             `json:"tier,omitempty"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Result      *experiment.Result `json:"result,omitempty"`
	Key         string             `json:"key,omitempty"`
	Blob        []byte             `json:"blob,omitempty"`
}

// Artifact tier names in persisted cache files.
const (
	TierResult   = "result"
	TierSnapshot = "snapshot"
)

// SaveFile atomically writes both cache tiers to path (tmp + rename).
func (c *Cache) SaveFile(path string) error {
	c.mu.Lock()
	f := cacheFile{SchemaVersion: CacheSchemaVersion}
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		// The key suffix is reconstructible from the result; only the
		// fingerprint prefix needs storing.
		fp := e.key[:len(e.key)-len(e.res.Key())-1]
		res := e.res
		f.Entries = append(f.Entries, persistedEntry{Tier: TierResult, Fingerprint: fp, Result: &res})
	}
	for el := c.snapLL.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*snapCacheEntry)
		f.Entries = append(f.Entries, persistedEntry{Tier: TierSnapshot, Key: e.key, Blob: e.blob})
	}
	c.mu.Unlock()

	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges a snapshot written by SaveFile into the cache, returning
// the number of entries loaded. A missing file is not an error (0, nil):
// a fresh server simply starts cold.
func (c *Cache) LoadFile(path string) (int, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f cacheFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return 0, fmt.Errorf("server: bad cache file %s: %w", path, err)
	}
	// Version 1 is version 2 minus tiers: every entry is an implicit
	// result. Anything newer (or older) is rejected.
	if f.SchemaVersion != CacheSchemaVersion && f.SchemaVersion != 1 {
		return 0, fmt.Errorf("server: cache file %s has schema version %d, want %d", path, f.SchemaVersion, CacheSchemaVersion)
	}
	for i, e := range f.Entries {
		switch e.Tier {
		case "", TierResult:
			if e.Result == nil {
				return 0, fmt.Errorf("server: cache file %s entry %d: result tier without a result", path, i)
			}
			// Loads do not count as stores: stats reflect live traffic only.
			c.put(e.Fingerprint+"/"+e.Result.Key(), *e.Result, false)
		case TierSnapshot:
			if e.Key == "" {
				return 0, fmt.Errorf("server: cache file %s entry %d: snapshot tier without a key", path, i)
			}
			c.putSnapshot(e.Key, e.Blob, false)
		default:
			return 0, fmt.Errorf("server: cache file %s entry %d has unknown artifact tier %q (known: %q, %q); refusing to load a future schema partially", path, i, e.Tier, TierResult, TierSnapshot)
		}
	}
	return len(f.Entries), nil
}
