// Package server turns the sweep harness into a long-running HTTP service:
// it accepts sweep requests as JSON, expands and validates them with the
// experiment machinery, executes cells on the bounded worker pool, and
// memoizes every completed cell in a content-keyed result cache so a
// repeated or overlapping grid is served without re-simulating.
//
// The cache key is the pair (sweep fingerprint, cell key). The cell key is
// already content-derived (workload/engine/policy/seed) and the simulator
// is deterministic, so two requests that agree on the fingerprint — the
// phase lengths, machine configuration, and result schema — must produce
// bit-identical results for a shared cell. That makes cache hits
// indistinguishable from re-execution, byte for byte.
package server

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"smtfetch/internal/config"
	"smtfetch/internal/experiment"
)

// Fingerprint hashes everything besides the cell identity that determines
// a cell's result: the simulation phase lengths, the machine configuration
// (with the engine/policy fields zeroed — the cell key carries those), and
// the result schema version. Sweeps with equal fingerprints may share
// cached cells.
func Fingerprint(s *experiment.Sweep) string {
	mc := config.Default()
	if s.Machine != nil {
		mc = *s.Machine
	}
	// Engine and policy vary per cell and are overwritten by the runner;
	// canonicalize them out so they cannot split the cache.
	mc.Engine = 0
	mc.FetchPolicy = config.FetchPolicy{}
	blob, err := json.Marshal(struct {
		ResultSchema  int
		WarmupInstrs  uint64
		WarmupCycles  uint64
		MeasureInstrs uint64
		MaxCycles     uint64
		Machine       config.Config
	}{experiment.SchemaVersion, s.WarmupInstrs, s.WarmupCycles, s.MeasureInstrs, s.MaxCycles, mc})
	if err != nil {
		// config.Config is a plain struct of scalars; this cannot fail.
		panic(fmt.Sprintf("server: fingerprint marshal: %v", err))
	}
	h := fnv.New64a()
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil))
}

// CacheKey is the full content key of one cached cell.
func CacheKey(fingerprint string, c experiment.Cell) string {
	return fingerprint + "/" + c.Key()
}

// CacheStats is the counter snapshot served by GET /cache/stats.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Evictions uint64 `json:"evictions"`
}

// Cache is a bounded LRU over completed sweep cells, keyed by
// CacheKey(fingerprint, cell). It is safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	byKey     map[string]*list.Element
	hits      uint64
	misses    uint64
	stores    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res experiment.Result
}

// NewCache returns an empty cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    map[string]*list.Element{},
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (experiment.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return experiment.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under key, evicting the least recently used entry
// when full. Storing an existing key refreshes its value and recency.
func (c *Cache) Put(key string, r experiment.Result) {
	c.put(key, r, true)
}

func (c *Cache) put(key string, r experiment.Result, countStore bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if countStore {
		c.stores++
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = r
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, res: r})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Evictions: c.evictions,
	}
}

// CacheSchemaVersion versions the on-disk cache snapshot. The entries
// themselves reuse the experiment.Result schema that WriteJSON emits, so a
// result round-trips the disk byte-identically.
const CacheSchemaVersion = 1

// cacheFile is the persistence envelope: one entry per cached cell, in
// LRU order (least recently used first) so a reload reconstructs recency.
type cacheFile struct {
	SchemaVersion int              `json:"schema_version"`
	Entries       []persistedEntry `json:"entries"`
}

type persistedEntry struct {
	Fingerprint string            `json:"fingerprint"`
	Result      experiment.Result `json:"result"`
}

// SaveFile atomically writes the cache contents to path (tmp + rename).
func (c *Cache) SaveFile(path string) error {
	c.mu.Lock()
	f := cacheFile{SchemaVersion: CacheSchemaVersion}
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		// The key suffix is reconstructible from the result; only the
		// fingerprint prefix needs storing.
		fp := e.key[:len(e.key)-len(e.res.Key())-1]
		f.Entries = append(f.Entries, persistedEntry{Fingerprint: fp, Result: e.res})
	}
	c.mu.Unlock()

	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cache-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(blob, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile merges a snapshot written by SaveFile into the cache, returning
// the number of entries loaded. A missing file is not an error (0, nil):
// a fresh server simply starts cold.
func (c *Cache) LoadFile(path string) (int, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f cacheFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return 0, fmt.Errorf("server: bad cache file %s: %w", path, err)
	}
	if f.SchemaVersion != CacheSchemaVersion {
		return 0, fmt.Errorf("server: cache file %s has schema version %d, want %d", path, f.SchemaVersion, CacheSchemaVersion)
	}
	for _, e := range f.Entries {
		// Loads do not count as stores: stats reflect live traffic only.
		c.put(e.Fingerprint+"/"+e.Result.Key(), e.Result, false)
	}
	return len(f.Entries), nil
}
