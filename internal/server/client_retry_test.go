package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smtfetch/internal/cluster/clustertest"
	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

func retryRequest() server.SweepRequest {
	return server.SweepRequest{
		Workloads:     []string{"2_MIX"},
		Engines:       []string{"stream"},
		Policies:      []string{"ICOUNT.1.8", "RR.1.8"},
		Seeds:         []uint64{1},
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
	}
}

// TestClientRetriesTransientPollFailures is the regression test for the
// polling loop treating ANY non-200 poll as fatal: a 500 and then a
// connection reset on GET /jobs/{id} must not abandon a job the server
// is still running. Faults are injected at the transport; sleeps are
// recorded, not slept, so the backoff schedule is asserted exactly.
func TestClientRetriesTransientPollFailures(t *testing.T) {
	srv, err := server.New(server.Config{SyncCellLimit: -1}) // everything async
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ft := clustertest.NewTransport(nil)
	ft.Script(
		&clustertest.Rule{Path: "/jobs/", Ordinal: 1, Fault: clustertest.Fault5xx},
		&clustertest.Rule{Path: "/jobs/", Ordinal: 2, Fault: clustertest.FaultReset},
	)

	var mu sync.Mutex
	var slept []time.Duration
	const interval = 10 * time.Millisecond
	cl := &server.Client{
		BaseURL:      ts.URL,
		HTTPClient:   &http.Client{Transport: ft},
		PollInterval: interval,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	got, err := cl.Sweep(retryRequest())
	if err != nil {
		t.Fatalf("Sweep with transient poll faults: %v", err)
	}

	sw, err := retryRequest().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiment.MarshalJSONResults(rs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("results after poll retries differ from local run:\n%s\nvs\n%s", got, want)
	}

	// The first two sleeps are the retry backoff: interval, then 2×.
	mu.Lock()
	defer mu.Unlock()
	if len(slept) < 2 {
		t.Fatalf("recorded %d sleeps, want the two retry backoffs first: %v", len(slept), slept)
	}
	if slept[0] != interval || slept[1] != 2*interval {
		t.Fatalf("retry backoff = %v, %v; want %v, %v", slept[0], slept[1], interval, 2*interval)
	}
}

// fakeJobServer answers POST /sweep with a job and scripts the poll
// responses; it never runs a simulator.
func fakeJobServer(poll http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.JobStatus{ID: "j1", State: server.JobRunning})
	})
	mux.HandleFunc("/jobs/", poll)
	return httptest.NewServer(mux)
}

// TestClientPermanentPollFailureIsFatal: a 404 poll means the job is
// gone (evicted, or the server restarted stateless) and must fail
// immediately — retrying would poll forever.
func TestClientPermanentPollFailureIsFatal(t *testing.T) {
	polls := 0
	ts := fakeJobServer(func(w http.ResponseWriter, r *http.Request) {
		polls++
		http.Error(w, "no such job", http.StatusNotFound)
	})
	t.Cleanup(ts.Close)
	cl := &server.Client{
		BaseURL:      ts.URL,
		PollInterval: time.Millisecond,
		Sleep:        func(time.Duration) { t.Error("slept before failing a permanent error") },
	}
	_, err := cl.Sweep(retryRequest())
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Sweep = %v, want immediate 404 failure", err)
	}
	if polls != 1 {
		t.Fatalf("client polled %d times after a 404, want 1", polls)
	}
}

// TestClientGivesUpAfterMaxPollFailures: a server that stays broken
// exhausts the consecutive-failure budget instead of retrying forever.
func TestClientGivesUpAfterMaxPollFailures(t *testing.T) {
	polls := 0
	ts := fakeJobServer(func(w http.ResponseWriter, r *http.Request) {
		polls++
		http.Error(w, "persistent failure", http.StatusInternalServerError)
	})
	t.Cleanup(ts.Close)
	var slept int
	cl := &server.Client{
		BaseURL:         ts.URL,
		PollInterval:    time.Millisecond,
		MaxPollFailures: 3,
		Sleep:           func(time.Duration) { slept++ },
	}
	_, err := cl.Sweep(retryRequest())
	if err == nil || !strings.Contains(err.Error(), "3 times in a row") {
		t.Fatalf("Sweep = %v, want give-up after 3 consecutive failures", err)
	}
	if polls != 3 {
		t.Fatalf("client polled %d times, want 3", polls)
	}
	if slept != 2 {
		t.Fatalf("client slept %d times, want 2 (between the 3 failed polls)", slept)
	}
}
