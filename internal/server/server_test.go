package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"smtfetch/internal/experiment"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// tinyRequest is a fast 2-cell grid: one workload, one engine, two
// policies, short simulation phases.
func tinyRequest() SweepRequest {
	return SweepRequest{
		Workloads:     []string{"2_MIX"},
		Engines:       []string{"stream"},
		Policies:      []string{"ICOUNT.1.8", "RR.1.8"},
		Seeds:         []uint64{1},
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, body.Bytes()
}

// The core acceptance property: posting the same sweep twice returns
// byte-identical results JSON, with the second response served entirely
// from cache, and the bytes match what the CLI path (Sweep.Run +
// MarshalJSONResults) produces for the same grid.
func TestSweepTwiceByteIdenticalAndCached(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	resp1, body1 := postSweep(t, ts, tinyRequest())
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST /sweep: %s: %s", resp1.Status, body1)
	}
	st := srv.CacheStats()
	if st.Hits != 0 || st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("stats after cold sweep = %+v", st)
	}

	resp2, body2 := postSweep(t, ts, tinyRequest())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST /sweep: %s", resp2.Status)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("repeated sweep not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	st = srv.CacheStats()
	if st.Hits != 2 || st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("stats after warm sweep = %+v", st)
	}

	// Byte-for-byte equivalence with the CLI execution path.
	sw, err := tinyRequest().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := experiment.MarshalJSONResults(results)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, cli) {
		t.Fatalf("server response differs from CLI output:\n%s\nvs\n%s", body1, cli)
	}
}

// An overlapping grid reuses the shared cells: a second request adding
// one policy only simulates the new cell.
func TestOverlappingGridPartialHits(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if resp, body := postSweep(t, ts, tinyRequest()); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: %s: %s", resp.Status, body)
	}
	wider := tinyRequest()
	wider.Policies = append(wider.Policies, "ICOUNT.2.8")
	if resp, body := postSweep(t, ts, wider); resp.StatusCode != http.StatusOK {
		t.Fatalf("wider sweep: %s: %s", resp.Status, body)
	}
	st := srv.CacheStats()
	if st.Hits != 2 || st.Misses != 3 || st.Stores != 3 {
		t.Fatalf("stats after overlapping sweeps = %+v", st)
	}
}

func TestAsyncJobFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{SyncCellLimit: -1}) // everything async

	resp, body := postSweep(t, ts, tinyRequest())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweep = %s, want 202: %s", resp.Status, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != JobRunning || st.Total != 2 {
		t.Fatalf("initial job status = %+v", st)
	}

	// The client hides the polling; give it a tight interval for tests.
	c := &Client{BaseURL: ts.URL, PollInterval: 10 * time.Millisecond}
	async, err := c.Sweep(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}

	// Poll the first job to completion and compare documents: the async
	// path must serve the same bytes as any other execution of the grid.
	deadline := time.Now().Add(30 * time.Second)
	for {
		blob, err := c.get("/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still running: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != JobDone || st.Done != st.Total || st.ResultsURL == "" {
		t.Fatalf("final job status = %+v", st)
	}
	results, err := c.get(st.ResultsURL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(results, async) {
		t.Fatal("async job results differ between the two runs")
	}
}

func TestForcedAsyncUnderSyncLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := tinyRequest()
	req.Async = true
	resp, body := postSweep(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("forced-async POST = %s, want 202: %s", resp.Status, body)
	}
}

func TestResultsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := tinyRequest()
	if resp, body := postSweep(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s: %s", resp.Status, body)
	}
	sw, err := req.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sw.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{BaseURL: ts.URL}
	blob, err := c.get("/results/" + CacheKey(Fingerprint(sw), cells[0]))
	if err != nil {
		t.Fatal(err)
	}
	var res experiment.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatal(err)
	}
	if res.Key() != cells[0].Key() || res.IPC <= 0 {
		t.Fatalf("cached cell = %+v, want key %s", res, cells[0].Key())
	}

	if _, err := c.get("/results/nope/2_MIX/stream/ICOUNT.1.8/1"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown key: %v", err)
	}
}

func TestHealthzAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := &Client{BaseURL: ts.URL}
	blob, err := c.get("/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"ok"`) {
		t.Fatalf("healthz = %s", blob)
	}
	blob, err = c.get("/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st CacheStats
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st.Capacity != 4096 {
		t.Fatalf("default capacity = %d", st.Capacity)
	}
}

func TestSweepRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"wrokloads": ["2_MIX"]}`},
		{"unknown workload", `{"workloads": ["9_NOPE"]}`},
		{"bad policy", `{"policies": ["ICOUNT"]}`},
		{"bad engine", `{"engines": ["quantum"]}`},
	} {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", tc.name, resp.Status)
		}
	}

	resp, err := http.Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /sweep = %s, want 405", resp.Status)
	}
}

func TestUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := &Client{BaseURL: ts.URL}
	if _, err := c.get("/jobs/job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown job: %v", err)
	}
}

// Persistence: a server restart with the same cache file serves the grid
// from cache without re-simulating.
func TestCacheFileSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")

	srv1, ts1 := newTestServer(t, Config{CacheFile: path})
	_, body1 := postSweep(t, ts1, tinyRequest())
	if err := srv1.SaveCache(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, Config{CacheFile: path})
	resp, body2 := postSweep(t, ts2, tinyRequest())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart sweep: %s", resp.Status)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("post-restart response not byte-identical")
	}
	st := srv2.CacheStats()
	if st.Hits != 2 || st.Misses != 0 || st.Stores != 0 {
		t.Fatalf("post-restart stats = %+v (grid was re-simulated?)", st)
	}
}

// Concurrent misses on one content key are single-flighted: the leader
// executes once, waiters block and read its cached result.
func TestResolveKeySingleFlight(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := cacheRes("2_MIX", 1, 1.5)
	started := make(chan struct{})
	release := make(chan struct{})
	var execs int32
	exec := func() experiment.Result {
		atomic.AddInt32(&execs, 1)
		close(started)
		<-release
		return want
	}

	leaderDone := make(chan experiment.Result, 1)
	go func() { leaderDone <- srv.resolveKey("fp/k", exec) }()
	<-started // the leader is now mid-execution; everyone else must wait

	const waiters = 8
	results := make(chan experiment.Result, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			results <- srv.resolveKey("fp/k", func() experiment.Result {
				t.Error("waiter executed instead of waiting")
				return want
			})
		}()
	}
	close(release)
	for i := 0; i < waiters; i++ {
		if got := <-results; got != want {
			t.Fatalf("waiter got %+v", got)
		}
	}
	if got := <-leaderDone; got != want {
		t.Fatalf("leader got %+v", got)
	}
	if execs != 1 {
		t.Fatalf("exec ran %d times, want 1", execs)
	}
}

// A leader whose execution errors caches nothing; the next resolve
// retries instead of serving the failure.
func TestResolveKeyRetriesAfterError(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var execs int
	failed := cacheRes("2_MIX", 1, 0)
	failed.Error = "synthetic failure"
	got := srv.resolveKey("fp/k", func() experiment.Result { execs++; return failed })
	if got.Error == "" {
		t.Fatal("leader's error result not returned")
	}
	ok := cacheRes("2_MIX", 1, 1.5)
	if got := srv.resolveKey("fp/k", func() experiment.Result { execs++; return ok }); got != ok {
		t.Fatalf("retry got %+v", got)
	}
	if execs != 2 {
		t.Fatalf("exec ran %d times, want 2", execs)
	}
	// The ok result is now cached: a third resolve must not execute.
	if got := srv.resolveKey("fp/k", func() experiment.Result { execs++; return failed }); got != ok {
		t.Fatalf("cached resolve got %+v", got)
	}
	if execs != 2 {
		t.Fatalf("exec ran %d times after cache fill, want 2", execs)
	}
}

// Error cells are never cached, so a transient failure is retried on
// the next request instead of being pinned until eviction.
func TestErrorCellsNotCached(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	failed := experiment.Result{
		Workload: "2_MIX", Engine: "stream", Policy: "ICOUNT.1.8", Seed: 1,
		Error: "synthetic failure",
	}
	srv.storeResult("fp/"+failed.Key(), failed)
	if _, ok := srv.cache.Get("fp/" + failed.Key()); ok {
		t.Fatal("error cell was cached")
	}
	ok := failed
	ok.Error, ok.IPC = "", 1.0
	srv.storeResult("fp/"+ok.Key(), ok)
	if _, hit := srv.cache.Get("fp/" + ok.Key()); !hit {
		t.Fatal("ok cell was not cached")
	}
}

// The server's multi-seed invariant: seeds are just another cache-key
// component — the server aggregates nothing. A grid whose seed axis grows
// reuses every already-simulated (cell, seed) pair, and the client-side
// aggregate over a mixed cached/fresh response is byte-identical to the
// aggregate over a fully fresh local run of the same grid.
func TestMultiSeedRoundTripAggregatesIdentically(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	warm := tinyRequest()
	warm.Seeds = []uint64{1, 2}
	if resp, body := postSweep(t, ts, warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up sweep: %s: %s", resp.Status, body)
	}
	if st := srv.CacheStats(); st.Hits != 0 || st.Misses != 4 || st.Stores != 4 {
		t.Fatalf("stats after 2-seed sweep = %+v", st)
	}

	// Growing the seed axis to {1,2,3} re-simulates only the two seed-3
	// cells; the four (policy, seed) pairs already cached are hits.
	grown := tinyRequest()
	grown.Seeds = []uint64{1, 2, 3}
	resp, body := postSweep(t, ts, grown)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grown sweep: %s: %s", resp.Status, body)
	}
	if st := srv.CacheStats(); st.Hits != 4 || st.Misses != 6 || st.Stores != 6 {
		t.Fatalf("stats after 3-seed sweep = %+v", st)
	}

	served, err := experiment.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := grown.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, err := experiment.MarshalAggregateJSON(experiment.Aggregate(served))
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.MarshalAggregateJSON(experiment.Aggregate(fresh))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cached+fresh aggregate differs from all-fresh aggregate:\n%s\nvs\n%s", a, b)
	}
}

// warmForkRequest is a 3-cell single-group grid (one workload, one
// engine, three 1.8-shape policies) in fork mode with short phases.
func warmForkRequest(mode string) SweepRequest {
	return SweepRequest{
		Workloads:     []string{"2_MIX"},
		Engines:       []string{"stream"},
		Policies:      []string{"ICOUNT.1.8", "RR.1.8", "BRCOUNT.1.8"},
		Seeds:         []uint64{1},
		WarmupInstrs:  5_000,
		WarmupCycles:  500,
		MeasureInstrs: 8_000,
		WarmFork:      mode,
	}
}

// The snapshot tier end to end: a warm-fork sweep warms each group once
// (one snapshot store), a repeated sweep restores from the cached
// checkpoint (one snapshot hit, zero new stores), and the fork output is
// byte-identical to the rerun reference path.
func TestWarmForkSweepUsesSnapshotTier(t *testing.T) {
	srv, ts := newTestServer(t, Config{})

	resp1, body1 := postSweep(t, ts, warmForkRequest("fork"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fork sweep: %s: %s", resp1.Status, body1)
	}
	st := srv.CacheStats()
	if st.SnapshotStores != 1 || st.SnapshotEntries != 1 {
		t.Fatalf("snapshot stats after cold fork sweep = %+v", st)
	}
	if st.SnapshotMisses != 1 {
		t.Fatalf("expected exactly one snapshot miss (one warm group), got %+v", st)
	}

	// Repeat with a fresh fingerprint-compatible grid but a disjoint
	// policy of the same shape: result cells miss, the warm checkpoint
	// hits — the whole warm-up phase is skipped.
	second := warmForkRequest("fork")
	second.Policies = []string{"STALL.1.8"}
	resp2, body2 := postSweep(t, ts, second)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second fork sweep: %s: %s", resp2.Status, body2)
	}
	st = srv.CacheStats()
	if st.SnapshotStores != 1 {
		t.Fatalf("second sweep rebuilt the checkpoint: %+v", st)
	}
	if st.SnapshotHits < 1 {
		t.Fatalf("second sweep did not hit the snapshot tier: %+v", st)
	}

	// Fork output must be byte-identical to the rerun reference (which
	// never touches the snapshot tier).
	rerunSrv, rerunTS := newTestServer(t, Config{})
	respR, bodyR := postSweep(t, rerunTS, warmForkRequest("rerun"))
	if respR.StatusCode != http.StatusOK {
		t.Fatalf("rerun sweep: %s: %s", respR.Status, bodyR)
	}
	if !bytes.Equal(body1, bodyR) {
		t.Fatalf("fork response differs from rerun reference:\n%s\nvs\n%s", body1, bodyR)
	}
	if st := rerunSrv.CacheStats(); st.SnapshotStores != 0 || st.SnapshotMisses != 0 {
		t.Fatalf("rerun mode touched the snapshot tier: %+v", st)
	}
}

// Snapshot blobs survive a server restart through the cache file, so a
// restarted server forks sweeps without re-warming.
func TestSnapshotTierSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")

	srv1, ts1 := newTestServer(t, Config{CacheFile: path})
	if resp, body := postSweep(t, ts1, warmForkRequest("fork")); resp.StatusCode != http.StatusOK {
		t.Fatalf("fork sweep: %s: %s", resp.Status, body)
	}
	if err := srv1.SaveCache(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := newTestServer(t, Config{CacheFile: path})
	if st := srv2.CacheStats(); st.SnapshotEntries != 1 {
		t.Fatalf("snapshot entries after restart = %+v", st)
	}
	// A same-shape sweep with a fresh policy restores instead of warming.
	req := warmForkRequest("fork")
	req.Policies = []string{"MISSCOUNT.1.8"}
	if resp, body := postSweep(t, ts2, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart sweep: %s: %s", resp.Status, body)
	}
	if st := srv2.CacheStats(); st.SnapshotStores != 0 || st.SnapshotHits < 1 {
		t.Fatalf("post-restart sweep re-warmed: %+v", st)
	}
}
