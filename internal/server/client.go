package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client drives a running sweep server. It hides the sync/async split:
// Sweep returns the results document either way, polling job status for
// grids the server chose to run asynchronously.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the job-status polling period (0 = 500ms).
	PollInterval time.Duration
	// MaxPollFailures bounds CONSECUTIVE transient poll failures (network
	// errors, 5xx) tolerated before the job is abandoned (0 = default 8).
	// A single successful poll resets the count: a running job must not
	// be abandoned because the server restarted its listener or a proxy
	// hiccuped, but a server that stays unreachable eventually is.
	MaxPollFailures int
	// OnProgress, when non-nil, is called after each poll of an async
	// job with the server-reported per-cell progress.
	OnProgress func(done, total int)
	// Sleep replaces time.Sleep between polls and backoff waits when
	// non-nil. Tests inject a recorder so retry schedules are asserted
	// without real delays.
	Sleep func(time.Duration)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// get fetches path, requiring status 200.
func (c *Client) get(path string) ([]byte, error) {
	body, _, err := c.getStatus(path)
	return body, err
}

// getStatus fetches path, returning the HTTP status code alongside the
// error so callers can tell transient server failures (5xx) from
// permanent ones (4xx). A transport-level failure reports status 0.
func (c *Client) getStatus(path string) ([]byte, int, error) {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, fmt.Errorf("server: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, resp.StatusCode, nil
}

// Sweep posts the request and returns the results-document bytes (the
// same schema `smtfetch sweep` writes). A 202 answer is followed by
// polling GET /jobs/{id} until the job completes.
func (c *Client) Sweep(req SweepRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.url("/sweep"), "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusAccepted:
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("server: bad job status: %w", err)
		}
		return c.wait(st.ID)
	default:
		return nil, fmt.Errorf("server: POST /sweep: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// transientPoll reports whether a failed poll should be retried: yes for
// transport errors (status 0: connection reset, dropped listener) and
// server-side 5xx, no for 4xx — a 404 means the job was evicted and will
// never reappear, so retrying would poll forever.
func transientPoll(status int) bool {
	return status == 0 || status >= 500
}

// wait polls a job until it leaves the running state, then fetches its
// results document. Transient poll failures retry with exponential
// backoff (interval, 2×interval, 4×…, capped at 16×) rather than
// abandoning a job the server is still running; MaxPollFailures
// consecutive failures give up.
func (c *Client) wait(id string) ([]byte, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	maxFails := c.MaxPollFailures
	if maxFails <= 0 {
		maxFails = 8
	}
	fails := 0
	for {
		body, status, err := c.getStatus("/jobs/" + id)
		if err != nil {
			if !transientPoll(status) {
				return nil, err
			}
			fails++
			if fails >= maxFails {
				return nil, fmt.Errorf("server: polling job %s failed %d times in a row: %w", id, fails, err)
			}
			backoff := interval << (fails - 1)
			if lim := interval << 4; backoff > lim {
				backoff = lim
			}
			c.sleep(backoff)
			continue
		}
		fails = 0
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("server: bad job status: %w", err)
		}
		if c.OnProgress != nil {
			c.OnProgress(st.Done, st.Total)
		}
		switch st.State {
		case JobDone:
			return c.get("/jobs/" + id + "/results")
		case JobFailed:
			return nil, fmt.Errorf("server: job %s failed: %s", id, st.Error)
		}
		c.sleep(interval)
	}
}
