package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client drives a running sweep server. It hides the sync/async split:
// Sweep returns the results document either way, polling job status for
// grids the server chose to run asynchronously.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is the job-status polling period (0 = 500ms).
	PollInterval time.Duration
	// OnProgress, when non-nil, is called after each poll of an async
	// job with the server-reported per-cell progress.
	OnProgress func(done, total int)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

// get fetches path, requiring status 200.
func (c *Client) get(path string) ([]byte, error) {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// Sweep posts the request and returns the results-document bytes (the
// same schema `smtfetch sweep` writes). A 202 answer is followed by
// polling GET /jobs/{id} until the job completes.
func (c *Client) Sweep(req SweepRequest) ([]byte, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.url("/sweep"), "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusAccepted:
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("server: bad job status: %w", err)
		}
		return c.wait(st.ID)
	default:
		return nil, fmt.Errorf("server: POST /sweep: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// wait polls a job until it leaves the running state, then fetches its
// results document.
func (c *Client) wait(id string) ([]byte, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		body, err := c.get("/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("server: bad job status: %w", err)
		}
		if c.OnProgress != nil {
			c.OnProgress(st.Done, st.Total)
		}
		switch st.State {
		case JobDone:
			return c.get("/jobs/" + id + "/results")
		case JobFailed:
			return nil, fmt.Errorf("server: job %s failed: %s", id, st.Error)
		}
		time.Sleep(interval)
	}
}
