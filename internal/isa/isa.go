// Package isa defines the dynamic instruction model shared by the synthetic
// program generator (internal/prog) and the processor pipeline
// (internal/core). It plays the role of the instruction-set layer of a
// trace-driven simulator: each Instruction carries everything the timing
// model needs (class, dependences, memory address, branch semantics) without
// encoding real machine code.
package isa

import "fmt"

// InstrSize is the size in bytes of every instruction, as on Alpha.
const InstrSize = 4

// Addr is a virtual address (instruction or data).
type Addr uint64

// Class enumerates instruction classes with distinct timing behaviour.
type Class uint8

const (
	// IntALU is a single-cycle integer operation.
	IntALU Class = iota
	// IntMul is a multi-cycle integer multiply/divide.
	IntMul
	// Load reads memory through the data cache.
	Load
	// Store writes memory through the data cache.
	Store
	// FPOp is a floating-point operation (rare in SPECint).
	FPOp
	// Branch is any control-transfer instruction; see BranchKind.
	Branch
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

// String returns a short mnemonic for the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "alu"
	case IntMul:
		return "mul"
	case Load:
		return "load"
	case Store:
		return "store"
	case FPOp:
		return "fp"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// BranchKind enumerates control-transfer kinds. The fetch engines treat them
// differently: conditional branches need a direction prediction, returns use
// the RAS, indirect jumps need a target prediction.
type BranchKind uint8

const (
	// NotBranch marks non-control instructions.
	NotBranch BranchKind = iota
	// CondBranch is a conditional direct branch.
	CondBranch
	// Jump is an unconditional direct jump.
	Jump
	// Call is a direct call (pushes the return address).
	Call
	// Return pops the RAS.
	Return
	// IndirectJump is an unconditional indirect jump (switch tables etc.).
	IndirectJump
)

// String returns a short mnemonic for the branch kind.
func (k BranchKind) String() string {
	switch k {
	case NotBranch:
		return "none"
	case CondBranch:
		return "cond"
	case Jump:
		return "jump"
	case Call:
		return "call"
	case Return:
		return "ret"
	case IndirectJump:
		return "ijump"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsBranch reports whether the kind is a control transfer.
//
//smtfetch:hotpath
func (k BranchKind) IsBranch() bool { return k != NotBranch }

// Instruction is one dynamic instruction. Register dependences are encoded
// as distances in the per-thread dynamic instruction stream: a distance d>0
// means "depends on the d-th previous instruction fetched on this thread
// (wrong path included)". This avoids simulating an architectural register
// file while preserving the dependence-chain shapes that determine ILP.
type Instruction struct {
	// PC is the instruction's address.
	PC Addr
	// PathSeq is the instruction's position in its source stream
	// (per-thread path order); dependence distances are resolved
	// against it.
	PathSeq uint64
	// Class determines execution latency and functional-unit needs.
	Class Class
	// Dep1, Dep2 are dependence distances (0 = no dependence).
	Dep1, Dep2 uint16
	// HasDest reports whether the instruction writes a register (consumes
	// a physical register at rename).
	HasDest bool

	// EffAddr is the effective address for loads and stores.
	EffAddr Addr

	// Branch metadata (Class == Branch only).
	BrKind BranchKind
	// Taken is the resolved direction of the branch on this dynamic path.
	Taken bool
	// Target is the resolved target address when Taken (or for calls,
	// jumps, returns, indirect jumps).
	Target Addr
	// FallThrough is PC + InstrSize, the not-taken successor.
	FallThrough Addr
}

// IsBranch reports whether the instruction is a control transfer.
//
//smtfetch:hotpath
func (in *Instruction) IsBranch() bool { return in.Class == Branch }

// NextPC returns the address of the next dynamic instruction on this path.
//
//smtfetch:hotpath
func (in *Instruction) NextPC() Addr {
	if in.Class == Branch && in.Taken {
		return in.Target
	}
	return in.PC + InstrSize
}

// LatencyTable gives the execution latency in cycles for each class.
// Loads add cache access time on top of their pipeline latency.
type LatencyTable [NumClasses]int

// DefaultLatencies mirrors common SMTSIM-era settings: single-cycle ALU,
// 3-cycle multiply, 1-cycle address generation for memory ops (cache time is
// added separately), 4-cycle FP.
func DefaultLatencies() LatencyTable {
	var t LatencyTable
	t[IntALU] = 1
	t[IntMul] = 3
	t[Load] = 1
	t[Store] = 1
	t[FPOp] = 4
	t[Branch] = 1
	return t
}
