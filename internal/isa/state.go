package isa

// Warm-state snapshot codec for Instruction, shared by every package that
// serializes instruction payloads (ftq requests, prog stream lookahead,
// core uop tables). Cold-path code, outside the cycle loop.

import "smtfetch/internal/snap"

// EncodeState serializes the instruction.
func (in *Instruction) EncodeState(w *snap.Writer) {
	w.U64(uint64(in.PC))
	w.U64(in.PathSeq)
	w.U8(uint8(in.Class))
	w.U16(in.Dep1)
	w.U16(in.Dep2)
	w.Bool(in.HasDest)
	w.U64(uint64(in.EffAddr))
	w.U8(uint8(in.BrKind))
	w.Bool(in.Taken)
	w.U64(uint64(in.Target))
	w.U64(uint64(in.FallThrough))
}

// DecodeState restores an instruction written with EncodeState.
func (in *Instruction) DecodeState(r *snap.Reader) {
	in.PC = Addr(r.U64())
	in.PathSeq = r.U64()
	in.Class = Class(r.U8())
	in.Dep1 = r.U16()
	in.Dep2 = r.U16()
	in.HasDest = r.Bool()
	in.EffAddr = Addr(r.U64())
	in.BrKind = BranchKind(r.U8())
	in.Taken = r.Bool()
	in.Target = Addr(r.U64())
	in.FallThrough = Addr(r.U64())
}
