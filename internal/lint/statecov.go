package lint

import (
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// StateCov proves snapshot completeness at the field level: every field of
// every struct participating in a snapshot section must be referenced in
// both the package's snapshot-write path and its restore-read path, or
// carry a //smtfetch:transient annotation explaining why it is not state
// (free lists, slabs, per-cycle scratch, memoized geometry). The warm-fork
// byte-identity tests cannot catch a field that is missing from BOTH sides
// of the comparison; this analyzer can.
var StateCov = &analysis.Analyzer{
	Name: "statecov",
	Doc: "prove every snapshot-struct field is serialized in both directions\n\n" +
		"In the snapshot packages (core, cache, fetch, bpred, pipeline, ftq,\n" +
		"prog, isa, stats, rng), a struct with both an encode- and a\n" +
		"decode-path method — or one of the known inline-serialized structs —\n" +
		"is snapshot state. Each of its fields must be referenced inside the\n" +
		"package's snapshot-write closure (EncodeState/Snapshot/State and\n" +
		"their same-package callees) AND its restore-read closure\n" +
		"(DecodeState/Restore/SetState), or be annotated\n" +
		"//smtfetch:transient <why>. Written-but-never-restored and\n" +
		"restored-but-never-written asymmetries are errors too.",
	Run: runStateCov,
}

func runStateCov(pass *analysis.Pass) (interface{}, error) {
	if !snapshotPackages[pass.Pkg.Path()] {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	structs := snapStructs(pass)
	if len(structs) == 0 {
		return nil, nil
	}
	writeFuncs, readFuncs := snapPaths(pass)

	written := make(map[*types.Named][]bool)
	restored := make(map[*types.Named][]bool)
	for named, st := range structs {
		written[named] = make([]bool, st.NumFields())
		restored[named] = make([]bool, st.NumFields())
	}
	markFieldRefs(pass, writeFuncs, structs, func(n *types.Named, i int) { written[n][i] = true })
	markFieldRefs(pass, readFuncs, structs, func(n *types.Named, i int) { restored[n][i] = true })

	for named, st := range structs {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" {
				continue
			}
			if dirs.lineHas(f.Pos(), dirTransient) {
				continue
			}
			w, r := written[named][i], restored[named][i]
			switch {
			case !w && !r:
				pass.Reportf(f.Pos(), "field %s.%s is in neither the snapshot-write nor the restore-read path: serialize it in EncodeState/DecodeState (or Snapshot/Restore) or annotate it %s%s <why it is not state>",
					named.Obj().Name(), f.Name(), directivePrefix, dirTransient)
			case w && !r:
				pass.Reportf(f.Pos(), "field %s.%s is written by the snapshot path but never restored: a restored simulator silently diverges from the original; decode it or annotate it %s%s <why>",
					named.Obj().Name(), f.Name(), directivePrefix, dirTransient)
			case !w && r:
				pass.Reportf(f.Pos(), "field %s.%s is restored but never written by the snapshot path: the decode consumes bytes the encode never produced (or rebuilds state it should not); encode it or annotate it %s%s <why>",
					named.Obj().Name(), f.Name(), directivePrefix, dirTransient)
			}
		}
	}
	return nil, nil
}
