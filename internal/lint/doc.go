// Package lint implements the smtfetch invariants-as-lints analyzer suite:
// custom go/analysis analyzers that machine-check the simulator's
// foundational guarantees at the diff, instead of trusting runtime panics
// and reviewer vigilance to catch violations after the fact.
//
// The simulator's headline properties are:
//
//   - bit-identical determinism: equal (config, workload, seed) always
//     produces a byte-identical result document. The PR 5 content-keyed
//     result cache and the PR 6 CI-overlap compare gate are both built on
//     it.
//   - a 0 allocs/op cycle loop: the steady-state hot path (core.Cycle and
//     everything it reaches) performs no heap allocation, enforced after
//     the fact by the CI allocs-per-op bench gate.
//   - pooled-object ownership: pipeline.UOp and ftq.Request are pooled
//     with identity-validated free lists; constructing one outside its
//     pool, or retaining one outside a documented owner structure,
//     corrupts the free-list invariants in ways the runtime checks only
//     catch when the corrupted path executes.
//
// Three analyzers mirror those invariants:
//
//   - poolown: pooled types may only be constructed by their pool owners,
//     and pooled pointers may not be retained in globals, channels, maps,
//     or struct slices outside annotated owner structures. It mechanizes
//     the lifetime rules in the internal/ftq package comment and the
//     identity-validated free lists in internal/core.
//   - zeroalloc: functions annotated //smtfetch:hotpath may not contain
//     allocating constructs, and may only call simulator functions that
//     are themselves annotated — so the hotpath property is closed over
//     the static call graph that core.Cycle reaches. The companion escape
//     gate (internal/lint/escape) cross-checks the compiler's actual
//     escape-analysis verdicts against a checked-in allowlist.
//   - determinism: simulator packages may not read wall clocks, global
//     randomness, the environment, or spawn goroutines, and may not
//     iterate maps except at sites annotated as commutative.
//
// # Directives
//
// The analyzers are driven by comment directives (same syntax family as
// //go:build — no space after //):
//
//	//smtfetch:hotpath
//	    On a function declaration: the function is on the cycle-loop hot
//	    path. zeroalloc checks its body and its callees.
//	//smtfetch:poolowner
//	    On a function: it may construct pooled types (it is pool/free-list
//	    machinery). On a struct type: it is a documented owner structure
//	    and may retain pooled pointers in slice/map fields.
//	//smtfetch:allowalloc <why>
//	    On or immediately above a line inside a hotpath function: the
//	    flagged construct is accepted (e.g. an append into a buffer
//	    pre-sized to a hard architectural bound). The reason is mandatory.
//	//smtfetch:allowcold <why>
//	    On or immediately above a call line: the hotpath function may call
//	    this non-hotpath simulator function. The reason is mandatory.
//	//smtfetch:commutative <why>
//	    On or immediately above a range-over-map: iteration order provably
//	    does not influence simulated state or output. The reason is
//	    mandatory.
//
// Test files (_test.go) are exempt from all three analyzers: tests build
// fixtures by hand on purpose, and the runtime identity checks still
// guard them.
//
// The suite is compiled into cmd/smtfetch-lint, which is both a
// standalone checker (smtfetch-lint ./...) and a go vet -vettool.
package lint
