package lint

import (
	"fmt"
	"go/constant"
	"go/types"
	"hash/fnv"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// SchemaVer pins every versioned serialization format to a checked-in
// field-set digest (schemadigest.go). Changing a serialized struct without
// bumping its version constant fails; bumping the constant with a stale
// registration fails. Persisted files (results, aggregates, cache,
// snapshots) can therefore never silently change format under an unchanged
// version number.
var SchemaVer = &analysis.Analyzer{
	Name: "schemaver",
	Doc: "pin versioned serialization schemas to checked-in field-set digests\n\n" +
		"internal/lint/schemadigest.go registers each schema: a version\n" +
		"constant, root structs, and a digest of their serialized field sets\n" +
		"(json mode: exported fields + json tags; snap mode: fields without\n" +
		"//smtfetch:transient). The analyzer recomputes the digest and\n" +
		"requires both the constant's value and the digest to match the\n" +
		"registration, so every format change is an explicit two-line diff\n" +
		"in the registry next to the version bump. Snapshot packages also\n" +
		"export per-struct digests as package facts so the core stream\n" +
		"digest folds in cross-package struct layouts.",
	FactTypes: []analysis.Fact{(*schemaDigests)(nil)},
	Run:       runSchemaVer,
}

// schemaDigests is the package fact a snapshot package exports: the snap
// digest of each of its snapshot structs, so dependent packages can fold
// cross-package struct layouts into their own stream digests.
type schemaDigests struct {
	Structs map[string]string
}

func (*schemaDigests) AFact() {}
func (d *schemaDigests) String() string {
	names := make([]string, 0, len(d.Structs))
	for n := range d.Structs {
		names = append(names, n)
	}
	sort.Strings(names)
	return "snap digests " + strings.Join(names, ",")
}

func runSchemaVer(pass *analysis.Pass) (interface{}, error) {
	ctx := &digestCtx{
		pass:     pass,
		dirs:     collectDirectives(pass),
		imported: make(map[string]map[string]string),
		memo:     make(map[digestKey]string),
		inProg:   make(map[digestKey]bool),
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact schemaDigests
		if pass.ImportPackageFact(imp, &fact) {
			ctx.imported[imp.Path()] = fact.Structs
		}
	}

	// Snapshot packages export their snapshot structs' snap digests so
	// dependents (ultimately core's stream digest) see layout changes.
	if snapshotPackages[pass.Pkg.Path()] {
		ctx.snapStructs = snapStructs(pass)
		if len(ctx.snapStructs) > 0 {
			fact := &schemaDigests{Structs: make(map[string]string)}
			for named := range ctx.snapStructs {
				fact.Structs[named.Obj().Name()] = ctx.digest(named, "snap")
			}
			pass.ExportPackageFact(fact)
		}
	}

	for _, reg := range schemaRegs {
		if reg.Pkg != pass.Pkg.Path() {
			continue
		}
		checkSchemaReg(pass, ctx, reg)
	}
	return nil, nil
}

func checkSchemaReg(pass *analysis.Pass, ctx *digestCtx, reg schemaReg) {
	cobj, ok := pass.Pkg.Scope().Lookup(reg.Const).(*types.Const)
	if !ok {
		// The registry names a constant that no longer exists: the schema
		// guard itself has rotted. Anchor at the package's first file.
		pass.Reportf(pass.Files[0].Package, "schema registration for %s references missing version constant %s: fix internal/lint/schemadigest.go", reg.Pkg, reg.Const)
		return
	}
	val, ok := constant.Int64Val(constant.ToInt(cobj.Val()))
	if !ok {
		pass.Reportf(cobj.Pos(), "schema version constant %s is not an integer", reg.Const)
		return
	}

	var parts []string
	for _, root := range reg.Roots {
		named, st := lookupStruct(pass.Pkg, root)
		if named == nil || st == nil {
			pass.Reportf(cobj.Pos(), "schema registration for %s names missing root struct %s: fix internal/lint/schemadigest.go", reg.Const, root)
			return
		}
		parts = append(parts, root+"="+ctx.digest(named, reg.Mode))
	}
	computed := fnvHex(strings.Join(parts, ";"))

	switch {
	case val != reg.Version:
		pass.Reportf(cobj.Pos(), "version constant %s = %d but the schema registration records version %d: after a deliberate format change, update the registration in internal/lint/schemadigest.go (Version: %d, Digest: %q)",
			reg.Const, val, reg.Version, val, computed)
	case computed != reg.Digest:
		pass.Reportf(cobj.Pos(), "serialized field set under %s changed without a version bump: computed digest %s, registration records %q; bump %s and update the registration in internal/lint/schemadigest.go (Digest: %q)",
			reg.Const, computed, reg.Digest, reg.Const, computed)
	}
}

// digestCtx computes canonical field-set digests over the type graph.
type digestCtx struct {
	pass        *analysis.Pass
	dirs        *directives
	snapStructs map[*types.Named]*types.Struct
	imported    map[string]map[string]string
	memo        map[digestKey]string
	inProg      map[digestKey]bool
}

// digestKey memoizes per (type, mode): the same struct can legitimately
// carry different digests as a JSON envelope member and as snap state.
type digestKey struct {
	named *types.Named
	mode  string
}

// digest returns the FNV-64a digest of a named struct's canonical field
// text in the given mode, memoized and cycle-safe.
func (c *digestCtx) digest(named *types.Named, mode string) string {
	key := digestKey{named, mode}
	if d, ok := c.memo[key]; ok {
		return d
	}
	if c.inProg[key] {
		return fnvHex("cycle:" + named.Obj().Name())
	}
	c.inProg[key] = true
	st, _ := named.Underlying().(*types.Struct)
	var d string
	if st == nil {
		d = fnvHex(types.TypeString(named, nil))
	} else {
		d = fnvHex(c.structText(st, mode))
	}
	delete(c.inProg, key)
	c.memo[key] = d
	return d
}

// structText renders one canonical line per serialized field:
// name<TAB>jsonName<TAB>type (json mode) or name<TAB>type (snap mode).
func (c *digestCtx) structText(st *types.Struct, mode string) string {
	var b strings.Builder
	b.WriteString("struct{\n")
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if mode == "json" {
			tag := jsonTagName(st.Tag(i))
			if !f.Exported() || tag == "-" {
				continue
			}
			fmt.Fprintf(&b, "%s\t%s\t%s\n", f.Name(), tag, c.typeRepr(f.Type(), mode))
			continue
		}
		// snap mode: transient fields are by definition not in the stream.
		// Annotations are only visible for the package under analysis;
		// cross-package structs are folded by their exported digests below.
		if f.Pkg() == c.pass.Pkg && c.dirs.lineHas(f.Pos(), dirTransient) {
			continue
		}
		fmt.Fprintf(&b, "%s\t%s\n", f.Name(), c.typeRepr(f.Type(), mode))
	}
	b.WriteString("}")
	return b.String()
}

// typeRepr folds a field type into the canonical text. Named snapshot
// structs fold by reference to their own digest (same-package directly,
// cross-package via the exported fact); everything else folds by its type
// string, so internal refactors of non-serialized helper structs do not
// shift stream digests.
func (c *digestCtx) typeRepr(t types.Type, mode string) string {
	switch u := t.(type) {
	case *types.Pointer:
		return "*" + c.typeRepr(u.Elem(), mode)
	case *types.Slice:
		return "[]" + c.typeRepr(u.Elem(), mode)
	case *types.Array:
		return fmt.Sprintf("[%d]", u.Len()) + c.typeRepr(u.Elem(), mode)
	case *types.Map:
		return "map[" + c.typeRepr(u.Key(), mode) + "]" + c.typeRepr(u.Elem(), mode)
	case *types.Struct:
		return c.structText(u, mode)
	case *types.Basic:
		return u.Name()
	case *types.Named:
		name := types.TypeString(u, nil)
		if mode == "json" {
			if _, ok := u.Underlying().(*types.Struct); ok {
				return name + "{" + c.digest(u, mode) + "}"
			}
			return name + "~" + c.typeRepr(u.Underlying(), mode)
		}
		// snap mode
		pkg := u.Obj().Pkg()
		if pkg == c.pass.Pkg {
			if _, ok := c.snapStructs[u]; ok {
				return name + "{" + c.digest(u, mode) + "}"
			}
			return name
		}
		if pkg != nil {
			if digests, ok := c.imported[pkg.Path()]; ok {
				if d, ok := digests[u.Obj().Name()]; ok {
					return name + "{" + d + "}"
				}
			}
		}
		return name
	default:
		return types.TypeString(t, nil)
	}
}

// fnvHex is the digest primitive: FNV-64a over the canonical text.
func fnvHex(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
