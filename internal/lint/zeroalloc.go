package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// ZeroAlloc enforces the 0 allocs/op property of the cycle loop at the
// diff: functions annotated //smtfetch:hotpath may not contain allocating
// constructs, and the hotpath set must be closed under calls into
// simulator packages, so everything core.Cycle reaches is checked.
var ZeroAlloc = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc: "forbid allocating constructs in //smtfetch:hotpath functions\n\n" +
		"Inside an annotated function the analyzer flags: new/make/append,\n" +
		"address-of composite literals, slice and map literals, map writes,\n" +
		"closures, defer/go, string concatenation and string<->[]byte\n" +
		"conversions, interface boxing of non-pointer values, and calls to\n" +
		"fmt/errors/log/sort helpers. Arguments to panic are exempt (a\n" +
		"panicking simulator is already dead). Calls to simulator-package\n" +
		"functions that are not themselves hotpath are flagged, so the\n" +
		"annotation closes over the static call graph; //smtfetch:allowalloc\n" +
		"and //smtfetch:allowcold record justified exceptions inline. The\n" +
		"compiler's real escape verdicts are cross-checked separately by the\n" +
		"escape gate (internal/lint/escape).",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*isHotpath)(nil)},
	Run:       runZeroAlloc,
}

// isHotpath marks a function annotated //smtfetch:hotpath, exported so
// that dependent packages can check call-closure across package
// boundaries.
type isHotpath struct{}

func (*isHotpath) AFact()         {}
func (*isHotpath) String() string { return "hotpath" }

// allocDenylist names stdlib functions whose call always (or almost
// always) allocates, keyed by package path.
var allocDenylist = map[string]map[string]bool{
	"fmt":     nil, // nil = every function in the package
	"errors":  nil,
	"log":     nil,
	"strings": {"Join": true, "Repeat": true, "Split": true, "Fields": true, "Replace": true, "ReplaceAll": true, "ToUpper": true, "ToLower": true},
	"sort":    {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true},
}

func runZeroAlloc(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Collect and export this package's hotpath set first, so recursion
	// and same-package calls resolve without facts.
	local := map[*types.Func]bool{}
	var hotDecls []*ast.FuncDecl
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if !dirs.declHas(fd, dirHotpath) {
			return
		}
		if isTestFile(pass.Fset, fd.Pos()) {
			pass.Reportf(fd.Pos(), "%shotpath has no effect in a test file", directivePrefix)
			return
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		local[fn] = true
		hotDecls = append(hotDecls, fd)
		pass.ExportObjectFact(fn, &isHotpath{})
	})

	hot := func(fn *types.Func) bool {
		if local[fn] {
			return true
		}
		return pass.ImportObjectFact(fn, &isHotpath{})
	}

	for _, fd := range hotDecls {
		checkHotBody(pass, dirs, fd, hot)
	}
	return nil, nil
}

// checkHotBody walks one annotated function body and reports allocating
// constructs and calls that leave the hotpath set.
func checkHotBody(pass *analysis.Pass, dirs *directives, fd *ast.FuncDecl, hot func(*types.Func) bool) {
	if fd.Body == nil {
		return
	}
	self, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	info := pass.TypesInfo

	allowed := func(pos token.Pos) bool { return dirs.lineHas(pos, dirAllowAlloc) }
	report := func(pos token.Pos, format string, args ...interface{}) {
		if allowed(pos) {
			return
		}
		pass.Reportf(pos, "hotpath %s: "+format, append([]interface{}{fd.Name.Name}, args...)...)
	}

	// boxes reports whether assigning an expression of type from to a
	// location of type to heap-boxes a value: a conversion to an
	// interface from a concrete type that is not pointer-shaped.
	boxes := func(to, from types.Type) bool {
		if to == nil || from == nil {
			return false
		}
		if !types.IsInterface(to) || types.IsInterface(from) {
			return false
		}
		if bt, ok := from.(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			return false
		}
		switch from.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			return false // pointer-shaped: fits the iface data word
		}
		return true
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement (allocates a goroutine; also a determinism violation)")
		case *ast.DeferStmt:
			report(n.Pos(), "defer (may heap-allocate its frame; restructure or justify with %s%s)", directivePrefix, dirAllowAlloc)
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closures capture on the heap)")
			return false // don't double-report the closure's own body
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes-by-construction: reuse pooled storage instead")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "%s literal allocates its backing store", shortType(tv.Type))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n.X]; ok {
					if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// Map writes may grow or split buckets.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							report(n.Pos(), "map write may allocate (bucket growth); pre-size and justify with %s%s if the key set is bounded", directivePrefix, dirAllowAlloc)
						}
					}
				}
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					lt := info.TypeOf(lhs)
					rt := info.TypeOf(n.Rhs[i])
					if boxes(lt, rt) {
						report(n.Pos(), "assignment boxes %s into %s (interface conversion of a non-pointer allocates)", rt, lt)
					}
				}
			}
		case *ast.CallExpr:
			// panic(...) arguments are exempt: the simulator is dead and
			// the message allocation is irrelevant. Skip the subtree.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
			checkHotCall(pass, dirs, fd, n, hot, self, report, boxes)
		case *ast.ReturnStmt:
			if self != nil {
				sig := self.Type().(*types.Signature)
				if sig.Results().Len() == len(n.Results) {
					for i, res := range n.Results {
						if boxes(sig.Results().At(i).Type(), info.TypeOf(res)) {
							report(res.Pos(), "return boxes %s into %s", info.TypeOf(res), sig.Results().At(i).Type())
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return walk(n)
	})
}

// checkHotCall handles the CallExpr cases: allocating builtins, denylisted
// stdlib calls, conversions, boxing at argument positions, and the
// call-closure rule for simulator packages.
func checkHotCall(pass *analysis.Pass, dirs *directives, fd *ast.FuncDecl, call *ast.CallExpr, hot func(*types.Func) bool, self *types.Func, report func(token.Pos, string, ...interface{}), boxes func(to, from types.Type) bool) {
	info := pass.TypesInfo

	// Type conversions: string<->[]byte/[]rune copy, and conversions to
	// interface box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to := tv.Type
			from := info.TypeOf(call.Args[0])
			if isStringByteConv(to, from) {
				report(call.Pos(), "conversion between string and byte/rune slice copies its data")
			}
			if boxes(to, from) {
				report(call.Pos(), "conversion boxes %s into %s", from, to)
			}
		}
		return
	}

	switch fn := typeutil.Callee(info, call).(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "new":
			report(call.Pos(), "new allocates; take storage from a pool or a pre-sized structure")
		case "make":
			report(call.Pos(), "make allocates; pre-size at construction time and justify growth paths with %s%s", directivePrefix, dirAllowAlloc)
		case "append":
			report(call.Pos(), "append may grow its backing array; guarantee capacity at construction and justify with %s%s", directivePrefix, dirAllowAlloc)
		}
		return
	case *types.Func:
		pkg := fn.Pkg()
		if pkg == nil {
			return
		}
		sig, _ := fn.Type().(*types.Signature)
		isMethod := sig != nil && sig.Recv() != nil
		if names, denied := allocDenylist[pkg.Path()]; denied && !isMethod {
			if names == nil || names[fn.Name()] {
				report(call.Pos(), "call to %s.%s allocates", pathBase(pkg.Path()), fn.Name())
			}
		}
		// Call-closure rule: a hotpath function may only call simulator
		// functions that are themselves hotpath, so the annotation (and
		// therefore this analyzer and the escape gate) covers everything
		// core.Cycle reaches.
		if simPackages[pkg.Path()] && fn != self && !hot(fn) && !dirs.lineHas(call.Pos(), dirAllowCold) {
			pass.Reportf(call.Pos(), "hotpath %s calls %s.%s which is not marked %s%s: annotate the callee (it is on the cycle loop) or justify the cold call with %s%s",
				fd.Name.Name, pathBase(pkg.Path()), fn.Name(), directivePrefix, dirHotpath, directivePrefix, dirAllowCold)
		}
		// Boxing at argument positions (e.g. a variadic ...any sink).
		if sig != nil {
			params := sig.Params()
			for i, arg := range call.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= params.Len()-1:
					if call.Ellipsis.IsValid() {
						continue
					}
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if boxes(pt, info.TypeOf(arg)) {
					report(arg.Pos(), "argument boxes %s into %s", info.TypeOf(arg), pt)
				}
			}
		}
	}
}

func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
