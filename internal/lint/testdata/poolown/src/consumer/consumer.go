// Package consumer exercises every poolown rule from outside the pool
// packages.
package consumer

import (
	"smtfetch/internal/ftq"
	"smtfetch/internal/pipeline"
)

// leakedUOps is a global retention point: never allowed, not even with an
// annotation.
var leakedUOps []*pipeline.UOp // want "package-level variable leakedUOps holds pooled pipeline.UOp"

// stray builds pooled objects by hand.
func stray() *pipeline.UOp {
	u := &pipeline.UOp{} // want "UOp composite literal outside its pool"
	_ = new(ftq.Request) // want "new\\(ftq.Request\\) outside its pool"
	var v pipeline.UOp   // want "var of pooled value type pipeline.UOp outside its pool"
	_ = v
	buf := make([]pipeline.UOp, 8) // want "make of \\[\\]pipeline.UOp outside an owner"
	_ = buf
	m := map[int]*ftq.Request{} // want "literal of map\\[int\\]\\*ftq.Request retains pooled ftq.Request"
	_ = m
	return u
}

// hoarder retains pooled pointers but is not a documented owner.
type hoarder struct {
	stash []*pipeline.UOp      // want "struct hoarder retains pooled pipeline.UOp in a container field"
	byID  map[int]*ftq.Request // want "struct hoarder retains pooled ftq.Request in a container field"
}

// uopChan hands pooled objects across goroutines.
func uopChan(ch chan *pipeline.UOp, u *pipeline.UOp) { // want "channel type carries pooled pipeline.UOp"
	ch <- u // want "channel send of pooled pipeline.UOp"
}

// replayQueue is a documented owner structure: the annotation makes the
// retention legal.
//
//smtfetch:poolowner
type replayQueue struct {
	pending []*pipeline.UOp
}

// recycle is pool machinery by annotation: construction and owner-style
// scratch storage are legal here.
//
//smtfetch:poolowner
func recycle(q *replayQueue, u *pipeline.UOp) {
	*u = pipeline.UOp{} // reset-in-place of pooled storage
	scratch := make([]*pipeline.UOp, 0, 4)
	scratch = append(scratch, u)
	q.pending = append(q.pending, scratch...)
}

// borrow passes pooled pointers through without retaining them: fine.
func borrow(u *pipeline.UOp, q *replayQueue) uint64 {
	q.pending = append(q.pending, u)
	return u.GSeq
}
