// Package pipeline is a fixture stand-in for the real pipeline package:
// same import path (inside the test universe), same pooled type name.
package pipeline

// UOp is the pooled micro-op stand-in.
type UOp struct {
	Thread int
	GSeq   uint64
}

// UOpRing is a documented owner inside the defining package: everything
// here is pool machinery by definition, so none of this is flagged.
type UOpRing struct {
	buf  []*UOp
	head int
}

// NewRing builds a ring; in-package construction is allowed.
func NewRing(n int) *UOpRing {
	return &UOpRing{buf: make([]*UOp, n)}
}

// Push appends in place.
func (r *UOpRing) Push(u *UOp) { r.buf[r.head] = u; r.head++ }
