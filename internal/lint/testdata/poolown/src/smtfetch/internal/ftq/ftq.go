// Package ftq is a fixture stand-in for the real ftq package.
package ftq

// Request is the pooled fetch-request stand-in.
type Request struct {
	Thread int
	refs   int32
}

// Pool owns free Requests.
type Pool struct {
	free []*Request
}

// Get hands out a pooled request; in-package construction is allowed.
func (p *Pool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return &Request{}
}
