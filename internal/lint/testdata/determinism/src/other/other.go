// Package other is outside the simulator set: the same constructs are
// legal here (the experiment/server layers schedule work and read the
// environment on purpose).
package other

import (
	"math/rand"
	"os"
	"time"
)

// Clock may read the wall clock outside the simulator.
func Clock() (int64, int, string) {
	go func() {}()
	for range map[int]int{1: 1} {
	}
	return time.Now().Unix(), rand.Intn(10), os.Getenv("HOME")
}
