// Package core is a fixture stand-in for the real core package: its
// import path puts it in the simulator set, so every determinism rule
// applies.
package core

import (
	"math/rand"
	"os" // want "simulator package imports \"os\""
	"time"
)

// counters is iterated below.
var counters = map[string]uint64{"a": 1}

// wallClock reads nondeterministic inputs.
func wallClock() int64 {
	t := time.Now() // want "time.Now in a simulator package"
	_ = os.Getenv("HOME")
	time.Sleep(time.Millisecond) // want "time.Sleep in a simulator package"
	return t.Unix()
}

// globalRand uses process-global generator state.
func globalRand() int {
	return rand.Intn(10) // want "rand.Intn uses global math/rand state"
}

// seededRand derives randomness from an explicit seed: reproducible, not
// flagged.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// spawn breaks scheduling determinism.
func spawn(done chan struct{}) {
	go func() { close(done) }() // want "go statement in a simulator package"
	select {                    // want "select in a simulator package"
	case <-done:
	default:
	}
}

// sumMap iterates a map without an annotation.
func sumMap() uint64 {
	var s uint64
	for _, v := range counters { // want "range over map in a simulator package"
		s += v
	}
	return s
}

// sumMapCommutative carries the commutativity proof sketch, so the
// iteration is accepted.
func sumMapCommutative() uint64 {
	var s uint64
	//smtfetch:commutative unordered sum over uint64 counters is associative and commutative
	for _, v := range counters {
		s += v
	}
	return s
}
