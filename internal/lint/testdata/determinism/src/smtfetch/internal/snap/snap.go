// Package snap is a fixture stand-in for the state codec: it is not a
// simulator package, but it serializes simulator state, so the satellite
// extension holds it to the same determinism rules.
package snap

import "time"

// stamps is iterated below.
var stamps = map[string]uint64{"a": 1}

// badEncode timestamps the stream (wall clock) and walks a map in hash
// order; either would make two encodes of identical state differ.
func badEncode() uint64 {
	t := uint64(time.Now().Unix()) // want "time.Now in a simulator package"
	for _, v := range stamps {     // want "range over map in a simulator package"
		t += v
	}
	return t
}

// goodEncode serializes deterministically: no clock, slice iteration.
func goodEncode(vals []uint64) uint64 {
	var sum uint64
	for _, v := range vals {
		sum += v
	}
	return sum
}
