// Package config is a fixture stand-in: both cache keys marshal the whole
// Config, so every field reachable from it must be visible to
// encoding/json or be annotated nonsemantic.
package config

// CacheConfig is reached from Config by value, so its fields are audited
// too.
type CacheConfig struct {
	Sets int
	ways int // want "never reaches the cache keys"
}

// Config is the machine-description root.
type Config struct {
	ROBSize int
	L1I     CacheConfig
	debug   bool   // want "never reaches the cache keys"
	Skipped string `json:"-"` // want "never reaches the cache keys"
	//smtfetch:nonsemantic trace output path, no effect on simulated behavior
	trace string
}
