// Package experiment is a fixture stand-in: keycov classifies each Sweep
// field (WarmKey closure, nonsemantic annotation, or neither) and exports
// the classification for the server package to finish the check.
package experiment

// Cell is the unit of work; its identity is carried by cache keys
// directly, outside the Sweep fields.
type Cell struct{ Workload string }

// Sweep mirrors the real sweep: grid axes, phase lengths, mechanics.
type Sweep struct {
	Workloads []string //smtfetch:nonsemantic grid axis; cell identity enters the keys via the cell

	WarmupInstrs  uint64
	MeasureInstrs uint64

	Jobs   int
	secret int
}

// WarmKey covers WarmupInstrs through a same-package helper.
func (s *Sweep) WarmKey(c Cell) string {
	return s.warmBody(c)
}

func (s *Sweep) warmBody(c Cell) string {
	_ = s.WarmupInstrs
	return c.Workload
}
