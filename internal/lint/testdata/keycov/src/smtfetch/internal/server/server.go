// Package server is a fixture stand-in: keycov anchors uncovered-Sweep
// diagnostics at Fingerprint, where the missing hash component belongs.
// MeasureInstrs is covered here, WarmupInstrs by WarmKey, Workloads by its
// annotation; Jobs and secret reach no key and carry no annotation.
package server

import "smtfetch/internal/experiment"

// Fingerprint covers MeasureInstrs through a same-package helper.
func Fingerprint(s *experiment.Sweep) string { // want "Sweep.Jobs flows into neither" "Sweep.secret flows into neither"
	return fpBody(s)
}

func fpBody(s *experiment.Sweep) string {
	_ = s.MeasureInstrs
	return ""
}
