// Package core is a fixture stand-in for the real core package: its
// import path puts it in the snapshot set, so statecov audits every
// struct with both an encode- and a decode-path method.
package core

// Machine is snapshot state: it has both a write- and a read-path method.
type Machine struct {
	good      int
	writeOnly int // want "written by the snapshot path but never restored"
	readOnly  int // want "restored but never written by the snapshot path"
	missing   int // want "neither the snapshot-write nor the restore-read path"
	//smtfetch:transient per-cycle scratch, recomputed before first use
	scratch []int
}

// Snapshot covers good through a helper on the write closure.
func (m *Machine) Snapshot() {
	m.encodeCore()
	_ = m.writeOnly
}

// Restore covers good directly on the read path.
func (m *Machine) Restore() {
	m.good = 0
	_ = m.readOnly
}

func (m *Machine) encodeCore() { _ = m.good }

// threadState has no codec methods of its own; the extras table makes it
// snapshot state because the real core serializes it inline.
type threadState struct {
	icount int
	stale  int // want "neither the snapshot-write nor the restore-read path"
}

func encodeThreads(ts []threadState) {
	for i := range ts {
		_ = ts[i].icount
	}
}

func decodeThreads(ts []threadState) {
	for i := range ts {
		ts[i].icount = 0
	}
}

// scratchPad has no snapshot methods at all, so statecov ignores it even
// though nothing serializes its field.
type scratchPad struct {
	buf []int
}

// use keeps the fixture free of genuinely dead code paths.
func use(p *scratchPad, ts []threadState) {
	encodeThreads(ts)
	decodeThreads(ts)
	_ = p.buf
}
