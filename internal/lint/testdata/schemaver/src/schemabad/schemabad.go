// Package schemabad is the reject fixture: one registration per failure
// class the analyzer must catch.
package schemabad // want "references missing version constant VersionGone"

// VersionDrift's registration records the right version but a digest from
// an older field set.
const VersionDrift = 1 // want "changed without a version bump"

type driftFile struct {
	SchemaVersion int    `json:"schema_version"`
	Added         string `json:"added"`
}

// VersionStale was bumped in code without updating the registration.
const VersionStale = 2 // want "registration records version 1"

type staleFile struct {
	SchemaVersion int `json:"schema_version"`
}

// VersionNoRoot's registration names a struct that no longer exists.
const VersionNoRoot = 1 // want "names missing root struct goneFile"
