// Package core is a fixture snapshot package: its snap-mode stream digest
// folds in the cross-package rng.Rand layout via rng's exported fact, and
// excludes the transient scratch field.
package core

import "smtfetch/internal/rng"

// SnapshotVersion guards the stream format; the registration digest
// matches, so the fixture is clean.
const SnapshotVersion = 1

// Sim is the stream root (Snapshot/Restore roots).
type Sim struct {
	now  uint64
	seed *rng.Rand
	//smtfetch:transient per-cycle scratch, recomputed before first use
	scratch []int
}

// Snapshot is the write root.
func (s *Sim) Snapshot() { _ = s.now }

// Restore is the read root.
func (s *Sim) Restore() { s.now = 0 }
