// Package rng is a fixture snapshot package: schemaver exports its
// snapshot structs' snap digests as a package fact for dependents.
package rng

// Rand is auto-discovered snapshot state (State/SetState roots).
type Rand struct {
	s [4]uint64
}

// State is the snapshot-write root.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState is the restore-read root.
func (r *Rand) SetState(s [4]uint64) { r.s = s }
