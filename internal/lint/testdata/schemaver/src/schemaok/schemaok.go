// Package schemaok is the accept fixture: the version constant and the
// envelope's field-set digest both match the test registration.
package schemaok

// Version guards the envelope format.
const Version = 3

type envelope struct {
	SchemaVersion int     `json:"schema_version"`
	Items         []entry `json:"items"`
	internal      int
}

type entry struct {
	Name  string  `json:"name"`
	Value float64 `json:"value,omitempty"`
}
