// Package core is a fixture stand-in for the real core package,
// exercising every zeroalloc rule.
package core

import (
	"errors"

	"smtfetch/internal/fetch"
)

type point struct{ x, y int }

type simState struct {
	buf   []int
	index map[int]int
	sink  interface{}
	name  string
}

// helper is deliberately unannotated.
func helper(s *simState) {}

// coldSetup is unannotated, so allocation is unconstrained here.
func coldSetup() *simState {
	return &simState{
		buf:   make([]int, 0, 8),
		index: make(map[int]int),
	}
}

// cycle checks the call-closure rule.
//
//smtfetch:hotpath
func cycle(s *simState) {
	tick(s)
	_ = fetch.Predict(1)
	fetch.Cold() // want "calls fetch.Cold which is not marked"
	helper(s)    // want "calls core.helper which is not marked"
	//smtfetch:allowcold invariant audit runs once per run, outside the measured loop
	helper(s)
}

// tick checks the allocating-construct rules.
//
//smtfetch:hotpath
func tick(s *simState) {
	s.buf = append(s.buf, 1) // want "append may grow its backing array"
	//smtfetch:allowalloc buffer pre-sized to the ROB bound at construction
	s.buf = append(s.buf, 2)
	p := new(int) // want "new allocates"
	_ = p
	q := make([]int, 4) // want "make allocates"
	_ = q
	s.index[1] = 2 // want "map write may allocate"
	s.sink = 42    // want "assignment boxes int into"
	var f func()
	f = func() {} // want "function literal"
	f()
	defer f()          // want "defer"
	go f()             // want "go statement"
	pt := &point{1, 2} // want "address of composite literal"
	_ = pt
	v := []int{1, 2} // want "literal allocates its backing store"
	_ = v
	s.name = s.name + "x" // want "string concatenation allocates"
	b := []byte(s.name)   // want "conversion between string and byte/rune slice"
	_ = b
	err := errors.New("x") // want "call to errors.New allocates"
	_ = err
	panic(errors.New("panic paths are exempt: the simulator is already dead"))
}

// boxedReturn checks interface boxing at returns.
//
//smtfetch:hotpath
func boxedReturn(n int) interface{} {
	return n // want "return boxes int into"
}

// clean is a hotpath function with nothing to flag.
//
//smtfetch:hotpath
func clean(s *simState, i int) int {
	if i < len(s.buf) {
		s.buf[i]++
		return s.buf[i] + fetch.Predict(i)
	}
	return 0
}
