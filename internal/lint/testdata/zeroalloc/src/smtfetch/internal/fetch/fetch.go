// Package fetch is a fixture stand-in for the real fetch package: its
// hotpath annotations are exported as facts for dependents to check
// call-closure across package boundaries.
package fetch

// Predict is on the hot path.
//
//smtfetch:hotpath
func Predict(t int) int { return t * 2 }

// Cold is not annotated: hotpath callers must not call it.
func Cold() {}
