// Package driver loads Go packages from source and runs go/analysis
// analyzers over them, without depending on go/packages (which is not
// vendored with the toolchain). It shells out to `go list -json -deps`
// for build-system metadata, type-checks the dependency graph from source
// (function bodies ignored outside the analyzed set, so the whole stdlib
// closure stays cheap), and implements the analysis.Pass contract
// including in-memory object/package facts across module packages.
//
// It exists to make `smtfetch-lint ./...` work standalone; under
// `go vet -vettool` the same analyzers run through the x/tools
// unitchecker instead, which handles facts via .vetx files.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Diagnostic is one analyzer finding, with a resolved position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// pkg is one loaded package.
type pkg struct {
	meta  *listPackage
	types *types.Package
	files []*ast.File // populated for analyzed packages only
	info  *types.Info // populated for analyzed packages only
	facts map[reflect.Type][]analysis.Fact
}

// Program is a loaded package graph ready for analysis.
type Program struct {
	fset     *token.FileSet
	byPath   map[string]*pkg
	order    []*pkg // dependency order (deps before dependents)
	analyzed []*pkg // the packages matched by the load patterns
	sizes    types.Sizes

	objFacts map[types.Object]map[reflect.Type]analysis.Fact
	pkgFacts map[*types.Package]map[reflect.Type]analysis.Fact
}

// Load lists patterns (e.g. "./...") in dir and type-checks the matched
// packages plus their dependency closure from source.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo-free loading: with CGO_ENABLED=0 every stdlib package resolves
	// to its pure-Go file set, which go/types can check from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	prog := &Program{
		fset:     token.NewFileSet(),
		byPath:   make(map[string]*pkg),
		sizes:    types.SizesFor("gc", runtime.GOARCH),
		objFacts: make(map[types.Object]map[reflect.Type]analysis.Fact),
		pkgFacts: make(map[*types.Package]map[reflect.Type]analysis.Fact),
	}

	dec := json.NewDecoder(&stdout)
	for dec.More() {
		meta := new(listPackage)
		if err := dec.Decode(meta); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if meta.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", meta.ImportPath, meta.Error.Err)
		}
		p := &pkg{meta: meta}
		prog.byPath[meta.ImportPath] = p
		prog.order = append(prog.order, p)
	}

	// -deps emits a depth-first post-order: every package appears after
	// its dependencies, so a single forward sweep can type-check.
	for _, p := range prog.order {
		if err := prog.check(p); err != nil {
			return nil, err
		}
		if !p.meta.DepOnly {
			prog.analyzed = append(prog.analyzed, p)
		}
	}
	return prog, nil
}

// check type-checks one package from source.
func (prog *Program) check(p *pkg) error {
	if p.meta.ImportPath == "unsafe" {
		p.types = types.Unsafe
		return nil
	}
	full := !p.meta.DepOnly // analyzed packages keep bodies, comments, info

	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range p.meta.GoFiles {
		f, err := parser.ParseFile(prog.fset, filepath.Join(p.meta.Dir, name), nil, mode)
		if err != nil {
			return fmt.Errorf("parsing %s: %v", p.meta.ImportPath, err)
		}
		files = append(files, f)
	}

	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	conf := types.Config{
		Importer:         importerFunc(func(path string) (*types.Package, error) { return prog.importPkg(path) }),
		IgnoreFuncBodies: !full,
		Sizes:            prog.sizes,
		Error: func(err error) {
			// collected through the returned error below; keep going so
			// one error does not mask the rest of the package
		},
	}
	tpkg, err := conf.Check(p.meta.ImportPath, prog.fset, files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", p.meta.ImportPath, err)
	}
	p.types = tpkg
	if full {
		p.files = files
		p.info = info
	}
	return nil
}

func (prog *Program) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := prog.byPath[path]; ok && p.types != nil {
		return p.types, nil
	}
	// Stdlib-vendored dependencies (e.g. golang.org/x/net under net) are
	// listed by the go command under a "vendor/" prefix but imported by
	// their plain path.
	if p, ok := prog.byPath["vendor/"+path]; ok && p.types != nil {
		return p.types, nil
	}
	return nil, fmt.Errorf("package %q not in the loaded dependency graph", path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run executes the analyzers (and their requirements) over every loaded
// non-dependency package, in dependency order so facts flow forward.
// Diagnostics come back sorted by position.
func (prog *Program) Run(analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, p := range prog.analyzed {
		results := make(map[*analysis.Analyzer]interface{})
		for _, a := range analyzers {
			if err := prog.runAnalyzer(a, p, results, &diags); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func (prog *Program) runAnalyzer(a *analysis.Analyzer, p *pkg, results map[*analysis.Analyzer]interface{}, diags *[]Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, req := range a.Requires {
		if err := prog.runAnalyzer(req, p, results, diags); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       prog.fset,
		Files:      p.files,
		Pkg:        p.types,
		TypesInfo:  p.info,
		TypesSizes: prog.sizes,
		ResultOf:   results,
		ReadFile:   os.ReadFile,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, Diagnostic{
				Pos:      prog.fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		},
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return readFact(prog.objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			if prog.objFacts[obj] == nil {
				prog.objFacts[obj] = make(map[reflect.Type]analysis.Fact)
			}
			prog.objFacts[obj][reflect.TypeOf(fact)] = fact
		},
		ImportPackageFact: func(tp *types.Package, fact analysis.Fact) bool {
			return readFact(prog.pkgFacts[tp], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			if prog.pkgFacts[p.types] == nil {
				prog.pkgFacts[p.types] = make(map[reflect.Type]analysis.Fact)
			}
			prog.pkgFacts[p.types][reflect.TypeOf(fact)] = fact
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s on %s: %v", a.Name, p.meta.ImportPath, err)
	}
	results[a] = res
	return nil
}

// readFact copies a stored fact of fact's concrete type into fact.
func readFact(m map[reflect.Type]analysis.Fact, fact analysis.Fact) bool {
	if m == nil {
		return false
	}
	stored, ok := m[reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
