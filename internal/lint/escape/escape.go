// Package escape implements the escape-analysis gate: the static
// zeroalloc analyzer forbids allocating *constructs*, and this gate
// cross-checks the compiler's real verdicts, so a construct the analyzer
// cannot see (or a justified //smtfetch:allowalloc site that grew a new
// escape) still cannot land silently.
//
// It runs `go build -gcflags=-m` over the hot-path packages, keeps every
// "escapes to heap" / "moved to heap" diagnostic that falls inside a
// //smtfetch:hotpath function, and diffs the resulting set against a
// checked-in allowlist. Both directions are strict: a new hot escape
// fails the gate, and a stale allowlist entry fails it too, so the
// allowlist always describes exactly the compiler's current behavior.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultAllowlist is the checked-in allowlist path, relative to the
// module root.
const DefaultAllowlist = "internal/lint/escape/allowlist.txt"

// HotPackages are the package patterns the repo-level gate scans: the
// packages reachable from core.Cycle.
var HotPackages = []string{
	"./internal/core",
	"./internal/cache",
	"./internal/fetch",
	"./internal/bpred",
	"./internal/pipeline",
	"./internal/ftq",
	"./internal/prog",
	"./internal/isa",
	"./internal/stats",
}

// Finding is one compiler escape diagnostic inside a hotpath function.
type Finding struct {
	File    string // path as printed by the compiler, slash-normalized
	Func    string // enclosing hotpath function name
	Message string // compiler message, e.g. "&Big{...} escapes to heap"
}

// Key is the canonical allowlist form: file, function and message joined
// by tabs. Line numbers are deliberately excluded so unrelated edits to
// the same file do not churn the allowlist.
func (f Finding) Key() string {
	return f.File + "\t" + f.Func + "\t" + f.Message
}

// Gate runs the escape gate for patterns inside module directory dir and
// writes a report to w. A nil error means the gate passed. An empty
// allowlist path loads DefaultAllowlist under dir (a missing default file
// is treated as an empty allowlist, so a repo without exceptions needs no
// file).
func Gate(w io.Writer, dir, allowlistPath string, patterns ...string) error {
	if len(patterns) == 0 {
		patterns = HotPackages
	}
	explicit := allowlistPath != ""
	if !explicit {
		allowlistPath = filepath.Join(dir, filepath.FromSlash(DefaultAllowlist))
	}
	allowed, err := readAllowlist(allowlistPath, explicit)
	if err != nil {
		return err
	}

	findings, err := Analyze(dir, patterns...)
	if err != nil {
		return err
	}

	seen := make(map[string]bool, len(findings))
	var violations []Finding
	for _, f := range findings {
		seen[f.Key()] = true
		if !allowed[f.Key()] {
			violations = append(violations, f)
		}
	}
	var stale []string
	for key := range allowed {
		if !seen[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)

	fmt.Fprintf(w, "escape gate: %d hot escape(s), %d allowlisted, %d violation(s), %d stale allowlist entr(ies)\n",
		len(findings), len(allowed), len(violations), len(stale))
	for _, f := range violations {
		fmt.Fprintf(w, "  NEW: %s: %s escapes in hotpath %s\n", f.File, f.Message, f.Func)
	}
	for _, key := range stale {
		fmt.Fprintf(w, "  STALE: %s\n", strings.ReplaceAll(key, "\t", " "))
	}

	if len(violations) > 0 || len(stale) > 0 {
		return fmt.Errorf("escape gate failed: %d new hot escape(s), %d stale allowlist entr(ies); update %s only with a justified entry",
			len(violations), len(stale), allowlistPath)
	}
	return nil
}

// Analyze compiles patterns with -gcflags=-m in dir and returns the
// escape diagnostics located inside //smtfetch:hotpath functions, sorted
// by key. The go command replays cached compiler diagnostics, so repeated
// runs are cheap and complete.
func Analyze(dir string, patterns ...string) ([]Finding, error) {
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	hot := newHotIndex(dir)
	var findings []Finding
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		file, lineNo, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		// String constants escape only by being boxed into an interface
		// (panic and fmt arguments). zeroalloc already rejects every
		// non-panic boxing construct in hotpath code, so a surviving
		// string-constant escape is on a panic path: the simulator is
		// already dead when it allocates. The same goes for anything
		// inside a panic(...) call's source range (e.g. Sprintf
		// arguments), which the gate resolves below.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		fn, isHot, inPanic, err := hot.enclosingHotFunc(file, lineNo)
		if err != nil {
			return nil, err
		}
		if !isHot || inPanic {
			continue
		}
		findings = append(findings, Finding{
			File:    filepath.ToSlash(file),
			Func:    fn,
			Message: msg,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Key() < findings[j].Key() })
	return findings, nil
}

// splitDiag parses "file.go:12:34: message".
func splitDiag(line string) (file string, lineNo int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, "", false
	}
	return file, n, strings.TrimSpace(parts[2]), true
}

// hotIndex caches, per file, the line ranges of //smtfetch:hotpath
// functions and of panic(...) calls.
type hotIndex struct {
	dir   string
	files map[string]*fileRanges
}

type fileRanges struct {
	hot    []hotRange
	panics []hotRange // name unused
}

type hotRange struct {
	name       string
	start, end int
}

func newHotIndex(dir string) *hotIndex {
	return &hotIndex{dir: dir, files: make(map[string]*fileRanges)}
}

func (h *hotIndex) enclosingHotFunc(file string, line int) (fn string, isHot, inPanic bool, err error) {
	ranges, ok := h.files[file]
	if !ok {
		ranges, err = rangesOf(filepath.Join(h.dir, file))
		if err != nil {
			return "", false, false, err
		}
		h.files[file] = ranges
	}
	for _, r := range ranges.hot {
		if r.start <= line && line <= r.end {
			fn, isHot = r.name, true
			break
		}
	}
	for _, r := range ranges.panics {
		if r.start <= line && line <= r.end {
			inPanic = true
			break
		}
	}
	return fn, isHot, inPanic, nil
}

func rangesOf(path string) (*fileRanges, error) {
	fset := token.NewFileSet()
	ranges := &fileRanges{}
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		if os.IsNotExist(err) {
			// A file the compiler saw but we cannot (e.g. generated into
			// the build cache): nothing there is annotated.
			return ranges, nil
		}
		return nil, err
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if c.Text == "//smtfetch:hotpath" || strings.HasPrefix(c.Text, "//smtfetch:hotpath ") {
				ranges.hot = append(ranges.hot, hotRange{
					name:  fd.Name.Name,
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				})
				break
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			ranges.panics = append(ranges.panics, hotRange{
				start: fset.Position(call.Pos()).Line,
				end:   fset.Position(call.End()).Line,
			})
		}
		return true
	})
	return ranges, nil
}

// readAllowlist loads the allowlist: one Key() per line, tab- or
// double-space-separated, '#' comments and blank lines ignored.
func readAllowlist(path string, mustExist bool) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && !mustExist {
			return map[string]bool{}, nil
		}
		return nil, fmt.Errorf("reading escape allowlist: %v", err)
	}
	allowed := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("escape allowlist %s: malformed line %q (want file<TAB>func<TAB>message)", path, line)
		}
		allowed[strings.Join(fields, "\t")] = true
	}
	return allowed, nil
}
