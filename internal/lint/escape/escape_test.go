package escape

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot returns the repo root; this test file lives at
// internal/lint/escape, three levels below it.
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join(wd, "..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	return root
}

const fixturePattern = "./internal/lint/escape/testdata/escapefixture"

func writeAllowlist(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allowlist.txt")
	content := "# test allowlist\n" + strings.Join(lines, "\n") + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalyzeFixture pins down what the gate extracts from the compiler:
// the hot escape is found and attributed to the hotpath function, and the
// identical escape in the unannotated function is ignored.
func TestAnalyzeFixture(t *testing.T) {
	findings, err := Analyze(moduleRoot(t), fixturePattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 hot escape in fixture, got %d: %+v", len(findings), findings)
	}
	f := findings[0]
	if f.Func != "LeakHot" {
		t.Errorf("escape attributed to %q, want LeakHot", f.Func)
	}
	if !strings.Contains(f.Message, "heap") {
		t.Errorf("message %q does not mention the heap", f.Message)
	}
	if f.File != "internal/lint/escape/testdata/escapefixture/fixture.go" {
		t.Errorf("unexpected file %q", f.File)
	}
}

// TestGateFailsOnUnlistedEscape is the mutation half of the gate
// contract: a known heap escape in a hotpath function must fail against
// an empty allowlist.
func TestGateFailsOnUnlistedEscape(t *testing.T) {
	var out bytes.Buffer
	err := Gate(&out, moduleRoot(t), writeAllowlist(t), fixturePattern)
	if err == nil {
		t.Fatalf("gate passed with an empty allowlist; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "LeakHot") {
		t.Errorf("report does not name the offending function:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NEW:") {
		t.Errorf("report does not mark the escape as NEW:\n%s", out.String())
	}
}

// TestGatePassesWithAllowlistedEscape: the same fixture passes once its
// escape is recorded, proving the allowlist matches by key.
func TestGatePassesWithAllowlistedEscape(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Analyze(root, fixturePattern)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, f := range findings {
		keys = append(keys, f.Key())
	}
	var out bytes.Buffer
	if err := Gate(&out, root, writeAllowlist(t, keys...), fixturePattern); err != nil {
		t.Fatalf("gate failed despite allowlisted escape: %v\n%s", err, out.String())
	}
}

// TestGateFailsOnStaleEntry: an allowlist entry the compiler no longer
// reports is an error, so the file cannot rot.
func TestGateFailsOnStaleEntry(t *testing.T) {
	root := moduleRoot(t)
	findings, err := Analyze(root, fixturePattern)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"internal/lint/escape/testdata/escapefixture/fixture.go\tGone\tx escapes to heap"}
	for _, f := range findings {
		keys = append(keys, f.Key())
	}
	var out bytes.Buffer
	err = Gate(&out, root, writeAllowlist(t, keys...), fixturePattern)
	if err == nil {
		t.Fatalf("gate passed with a stale allowlist entry; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "STALE:") {
		t.Errorf("report does not mark the entry as STALE:\n%s", out.String())
	}
}

// TestGateCleanTree runs the real gate exactly as CI does: the simulator
// hot path must have no unlisted escapes.
func TestGateCleanTree(t *testing.T) {
	var out bytes.Buffer
	if err := Gate(&out, moduleRoot(t), ""); err != nil {
		t.Fatalf("escape gate fails on the clean tree: %v\n%s", err, out.String())
	}
}

func TestSplitDiag(t *testing.T) {
	cases := []struct {
		line   string
		file   string
		lineNo int
		msg    string
		ok     bool
	}{
		{"internal/ftq/ftq.go:123:6: &b escapes to heap", "internal/ftq/ftq.go", 123, "&b escapes to heap", true},
		{"a/b.go:7:2: moved to heap: x", "a/b.go", 7, "moved to heap: x", true},
		{"# smtfetch/internal/core", "", 0, "", false},
		{"can inline helper", "", 0, "", false},
	}
	for _, c := range cases {
		file, n, msg, ok := splitDiag(c.line)
		if ok != c.ok || file != c.file || n != c.lineNo || msg != c.msg {
			t.Errorf("splitDiag(%q) = %q,%d,%q,%v; want %q,%d,%q,%v",
				c.line, file, n, msg, ok, c.file, c.lineNo, c.msg, c.ok)
		}
	}
}

func TestReadAllowlistRejectsMalformed(t *testing.T) {
	path := writeAllowlist(t, "not a tab separated entry")
	if _, err := readAllowlist(path, true); err == nil {
		t.Error("malformed allowlist line accepted")
	}
}
