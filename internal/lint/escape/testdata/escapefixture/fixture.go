// Package escapefixture is a buildable fixture for the escape gate
// tests. It lives under testdata so ./... patterns never match it, but it
// compiles when named by explicit path, which is how the tests feed it to
// `go build -gcflags=-m`.
package escapefixture

// Big is large enough that the compiler always heap-allocates it when its
// address leaves the frame.
type Big struct {
	Payload [1024]uint64
}

var sink *Big

// LeakHot returns a pointer to a local, a guaranteed "escapes to heap" in
// a hotpath function: the gate must flag it against an empty allowlist.
//
//smtfetch:hotpath
func LeakHot() *Big {
	b := Big{}
	b.Payload[0] = 1
	return &b
}

// LeakCold has the identical escape but is not annotated, so the gate
// must ignore it.
func LeakCold() *Big {
	b := Big{}
	b.Payload[0] = 2
	return &b
}

// StayHot is hotpath and escape-free.
//
//smtfetch:hotpath
func StayHot(b *Big) uint64 {
	return b.Payload[0]
}

// Keep makes the results observable so nothing is optimized away.
func Keep() {
	sink = LeakHot()
	sink = LeakCold()
	_ = StayHot(sink)
}
