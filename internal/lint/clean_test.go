package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"smtfetch/internal/lint"
	"smtfetch/internal/lint/driver"
)

// TestCleanTree runs the full analyzer suite over the real module through
// the standalone driver, exactly like `smtfetch-lint ./...`: the
// checked-in tree must produce zero diagnostics. Any new violation of the
// pooling, zero-alloc, or determinism invariants fails this test before
// it ever reaches CI.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(wd, "..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
	prog, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
