package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full smtfetch analyzer suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{PoolOwn, ZeroAlloc, Determinism, StateCov, KeyCov, SchemaVer}
}

// simPackages are the packages whose code determines simulated behavior.
// determinism applies to all of them; zeroalloc's call-graph closure rule
// treats any callee inside one of them as required-to-be-hotpath.
var simPackages = map[string]bool{
	"smtfetch/internal/core":     true,
	"smtfetch/internal/cache":    true,
	"smtfetch/internal/fetch":    true,
	"smtfetch/internal/bpred":    true,
	"smtfetch/internal/pipeline": true,
	"smtfetch/internal/ftq":      true,
	"smtfetch/internal/prog":     true,
	"smtfetch/internal/isa":      true,
	"smtfetch/internal/stats":    true,
}

// pooledTypes names the pool-managed types, keyed by defining package
// path. Constructing one of these outside its pool machinery, or
// retaining a pointer to one outside an annotated owner structure, is a
// poolown violation.
var pooledTypes = map[string]map[string]bool{
	"smtfetch/internal/pipeline": {"UOp": true},
	"smtfetch/internal/ftq":      {"Request": true},
}

// Directive names (the text after "//smtfetch:").
const (
	dirHotpath     = "hotpath"
	dirPoolOwner   = "poolowner"
	dirAllowAlloc  = "allowalloc"
	dirAllowCold   = "allowcold"
	dirCommutative = "commutative"
	dirTransient   = "transient"
	dirNonsemantic = "nonsemantic"
)

const directivePrefix = "//smtfetch:"

// directives indexes every //smtfetch: comment directive of one package:
// by declaration (for hotpath/poolowner) and by file line (for the
// allowalloc/allowcold/commutative escape hatches).
type directives struct {
	fset *token.FileSet
	// decl maps a FuncDecl or TypeSpec node to its directive names.
	decl map[ast.Node]map[string]bool
	// line maps filename:line to the directive names present on that
	// line (either as a standalone comment line or trailing a statement).
	line map[string]map[string]bool
}

func lineKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

// itoa avoids strconv for a tiny hot helper (and keeps imports minimal).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// parseDirective returns the directive name and whether the comment line
// is an smtfetch directive at all. A reasoned directive like
// "//smtfetch:allowalloc pre-sized to ROB bound" yields "allowalloc".
func parseDirective(text string) (name string, reason string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i:]), true
	}
	return rest, "", true
}

// reasonRequired lists directives that must carry a justification.
var reasonRequired = map[string]bool{
	dirAllowAlloc:  true,
	dirAllowCold:   true,
	dirCommutative: true,
	dirTransient:   true,
	dirNonsemantic: true,
}

// collectDirectives scans the package once. Malformed directives (unknown
// name, or a missing reason where one is mandatory) are reported
// immediately so a typo cannot silently disable a check.
func collectDirectives(pass *analysis.Pass) *directives {
	d := &directives{
		fset: pass.Fset,
		decl: make(map[ast.Node]map[string]bool),
		line: make(map[string]map[string]bool),
	}
	known := map[string]bool{
		dirHotpath: true, dirPoolOwner: true,
		dirAllowAlloc: true, dirAllowCold: true, dirCommutative: true,
		dirTransient: true, dirNonsemantic: true,
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if !known[name] {
					pass.Reportf(c.Pos(), "unknown smtfetch directive %q", directivePrefix+name)
					continue
				}
				if reasonRequired[name] && reason == "" {
					pass.Reportf(c.Pos(), "%s%s requires a justification after the directive name", directivePrefix, name)
					continue
				}
				key := lineKey(pass.Fset, c.Pos())
				if d.line[key] == nil {
					d.line[key] = make(map[string]bool)
				}
				d.line[key][name] = true
			}
		}
		// Attach doc-comment directives to their declarations.
		for _, decl := range f.Decls {
			switch n := decl.(type) {
			case *ast.FuncDecl:
				d.attachDoc(n, n.Doc)
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					// A directive may sit on the GenDecl ("type ( ... )"
					// block doc) only for single-spec decls; otherwise it
					// must be on the TypeSpec itself.
					doc := ts.Doc
					if doc == nil && len(n.Specs) == 1 {
						doc = n.Doc
					}
					d.attachDoc(ts, doc)
				}
			}
		}
	}
	return d
}

func (d *directives) attachDoc(node ast.Node, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		name, _, ok := parseDirective(c.Text)
		if !ok {
			continue
		}
		if d.decl[node] == nil {
			d.decl[node] = make(map[string]bool)
		}
		d.decl[node][name] = true
	}
}

// declHas reports whether node carries the named declaration directive.
func (d *directives) declHas(node ast.Node, name string) bool {
	return d.decl[node][name]
}

// lineHas reports whether the named line directive is present on the
// node's own line or the line immediately above it (the two conventional
// placements for an escape-hatch comment).
func (d *directives) lineHas(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	if d.line[p.Filename+":"+itoa(p.Line)][name] {
		return true
	}
	return p.Line > 1 && d.line[p.Filename+":"+itoa(p.Line-1)][name]
}

// isTestFile reports whether pos is inside a _test.go file. Tests build
// pool fixtures and use randomness deliberately; the runtime identity
// checks still guard them, so all three analyzers skip test files.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// fileOf returns the *ast.File of pass.Files containing pos.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
