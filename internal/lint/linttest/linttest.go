// Package linttest is a minimal analysistest replacement: it loads
// GOPATH-style fixture packages from a testdata directory, runs an
// analyzer over them (facts flowing between fixture packages), and checks
// reported diagnostics against `// want` comments.
//
// x/tools' own analysistest depends on go/packages, which is not part of
// the toolchain-vendored subset of x/tools this repo can build against;
// this harness reimplements the part of its contract the suite needs:
//
//   - testdata/src/<importpath>/*.go defines the fixture package
//     <importpath>; fixtures may import each other and the stdlib.
//   - a line expecting a diagnostic carries a comment of the form
//     `// want "regexp"` (multiple wants per line allowed).
//   - every diagnostic must match a want on its line, and every want
//     must be matched by a diagnostic, or the test fails.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

type testPkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	t       *testing.T
	root    string // the testdata directory
	fset    *token.FileSet
	pkgs    map[string]*testPkg
	order   []*testPkg
	std     types.Importer
	sizes   types.Sizes
	loading map[string]bool
}

// Run loads the named fixture packages (plus any fixture packages they
// import) from testdataDir, runs the analyzer over all of them in
// dependency order, and checks diagnostics against want comments.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		t:    t,
		root: testdataDir,
		fset: fset,
		pkgs: make(map[string]*testPkg),
		// The source importer type-checks stdlib imports (time, fmt, os,
		// ...) from GOROOT source: fully offline.
		std:     importer.ForCompiler(fset, "source", nil),
		sizes:   types.SizesFor("gc", runtime.GOARCH),
		loading: make(map[string]bool),
	}
	for _, path := range paths {
		if _, err := ld.load(path); err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
	}

	diags := ld.analyze(a)
	ld.checkWants(a, diags)
}

func (ld *loader) load(path string) (*testPkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.root, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("no fixture directory %s", dir)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	ld.loading[path] = true
	defer func() { ld.loading[path] = false }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			// Fixture-package imports resolve inside testdata; everything
			// else falls through to the stdlib source importer.
			if fi, err := os.Stat(filepath.Join(ld.root, "src", filepath.FromSlash(ipath))); err == nil && fi.IsDir() {
				p, err := ld.load(ipath)
				if err != nil {
					return nil, err
				}
				return p.types, nil
			}
			return ld.std.Import(ipath)
		}),
		Sizes: ld.sizes,
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &testPkg{path: path, files: files, types: tpkg, info: info}
	ld.pkgs[path] = p
	ld.order = append(ld.order, p) // deps finish loading before dependents
	return p, nil
}

type diag struct {
	pos token.Position
	msg string
}

// analyze runs a (and its requirements) over every loaded fixture package
// in dependency order, with in-memory fact propagation.
func (ld *loader) analyze(a *analysis.Analyzer) []diag {
	ld.t.Helper()
	var diags []diag
	objFacts := make(map[types.Object]analysis.Fact)
	pkgFacts := make(map[*types.Package]analysis.Fact)

	for _, p := range ld.order {
		results := make(map[*analysis.Analyzer]interface{})
		var run func(a *analysis.Analyzer)
		run = func(a *analysis.Analyzer) {
			if _, done := results[a]; done {
				return
			}
			for _, req := range a.Requires {
				run(req)
			}
			p := p
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       ld.fset,
				Files:      p.files,
				Pkg:        p.types,
				TypesInfo:  p.info,
				TypesSizes: ld.sizes,
				ResultOf:   results,
				ReadFile:   os.ReadFile,
				Report: func(d analysis.Diagnostic) {
					diags = append(diags, diag{pos: ld.fset.Position(d.Pos), msg: d.Message})
				},
				ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
					stored, ok := objFacts[obj]
					if !ok || reflect.TypeOf(stored) != reflect.TypeOf(fact) {
						return false
					}
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				},
				ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
					objFacts[obj] = fact
				},
				ImportPackageFact: func(tp *types.Package, fact analysis.Fact) bool {
					stored, ok := pkgFacts[tp]
					if !ok || reflect.TypeOf(stored) != reflect.TypeOf(fact) {
						return false
					}
					reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
					return true
				},
				ExportPackageFact: func(fact analysis.Fact) { pkgFacts[p.types] = fact },
				AllObjectFacts:    func() []analysis.ObjectFact { return nil },
				AllPackageFacts:   func() []analysis.PackageFact { return nil },
			}
			res, err := a.Run(pass)
			if err != nil {
				ld.t.Fatalf("%s on %s: %v", a.Name, p.path, err)
			}
			results[a] = res
		}
		run(a)
	}
	return diags
}

var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// checkWants matches diagnostics against `// want "re"` comments.
func (ld *loader) checkWants(a *analysis.Analyzer, diags []diag) {
	ld.t.Helper()
	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[wantKey][]*want)

	for _, p := range ld.pkgs {
		for _, f := range p.files {
			name := ld.fset.Position(f.Pos()).Filename
			src, err := os.ReadFile(name)
			if err != nil {
				ld.t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				// The captured section may hold several quoted patterns:
				// want "a" "b"
				for _, q := range splitQuoted(ld.t, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						ld.t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, q, err)
					}
					key := wantKey{file: name, line: i + 1}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		key := wantKey{file: d.pos.Filename, line: d.pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.msg) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			ld.t.Errorf("%s: unexpected diagnostic from %s: %s", d.pos, a.Name, d.msg)
		}
	}
	var keys []wantKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				ld.t.Errorf("%s:%d: want %q: no matching diagnostic from %s", k.file, k.line, w.re, a.Name)
			}
		}
	}
}

// splitQuoted splits `"a" "b"` into its segments, interpreting each as a
// Go string literal (so `\\(` in the source is the regex `\(`, matching
// analysistest's conventions).
func splitQuoted(t *testing.T, s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("malformed want clause %q", s)
		}
		i := 1
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			t.Fatalf("unterminated want pattern %q", s)
		}
		q, err := strconv.Unquote(s[:i+1])
		if err != nil {
			t.Fatalf("bad want pattern %q: %v", s[:i+1], err)
		}
		out = append(out, q)
		s = s[i+1:]
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
