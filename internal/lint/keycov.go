package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package paths the key-coverage check is anchored to.
const (
	experimentPkgPath = "smtfetch/internal/experiment"
	serverPkgPath     = "smtfetch/internal/server"
	configPkgPath     = "smtfetch/internal/config"
)

// KeyCov proves cache-key completeness: every field of experiment.Sweep
// must flow into server.Fingerprint and/or Sweep.WarmKey (or be annotated
// //smtfetch:nonsemantic), and every field of config.Config must actually
// reach the JSON both keys marshal. A new knob that changes simulation
// output but not the cache key is a fleet-wide stale-cache incident; this
// analyzer turns it into a compile-time error instead.
var KeyCov = &analysis.Analyzer{
	Name: "keycov",
	Doc: "prove every sweep and config field flows into the cache keys\n\n" +
		"In package experiment, each field of Sweep is classified: referenced\n" +
		"by WarmKey's same-package closure, annotated\n" +
		"//smtfetch:nonsemantic <why> (grid axes are the cell identity;\n" +
		"execution mechanics do not change results), or neither. The\n" +
		"classification is exported as a package fact. In package server,\n" +
		"fields covered by neither WarmKey, the annotation, nor Fingerprint's\n" +
		"closure are reported. In package config, every field reachable from\n" +
		"Config by value must be exported and not json-skipped — Fingerprint\n" +
		"and WarmKey marshal the whole struct, so an invisible field silently\n" +
		"never reaches either key.",
	FactTypes: []analysis.Fact{(*sweepCoverage)(nil)},
	Run:       runKeyCov,
}

// sweepField is one field of experiment.Sweep as seen by the experiment
// half of the check.
type sweepField struct {
	Name        string
	InWarmKey   bool
	Nonsemantic bool
}

// sweepCoverage is the package fact experiment exports for server: the
// per-field WarmKey/annotation classification of the Sweep struct.
type sweepCoverage struct {
	Fields []sweepField
}

func (*sweepCoverage) AFact() {}
func (c *sweepCoverage) String() string {
	names := make([]string, 0, len(c.Fields))
	for _, f := range c.Fields {
		names = append(names, f.Name)
	}
	return "sweep fields " + strings.Join(names, ",")
}

func runKeyCov(pass *analysis.Pass) (interface{}, error) {
	switch pass.Pkg.Path() {
	case experimentPkgPath:
		runKeyCovExperiment(pass)
	case serverPkgPath:
		runKeyCovServer(pass)
	case configPkgPath:
		runKeyCovConfig(pass)
	}
	return nil, nil
}

// runKeyCovExperiment classifies Sweep's fields and exports the fact. The
// reporting happens in package server, where Fingerprint's coverage is
// visible too.
func runKeyCovExperiment(pass *analysis.Pass) {
	dirs := collectDirectives(pass)
	named, st := lookupStruct(pass.Pkg, "Sweep")
	if named == nil {
		return
	}
	inWarmKey := make([]bool, st.NumFields())
	funcs := sameClosureByName(pass, "WarmKey")
	markFieldRefs(pass, funcs, map[*types.Named]*types.Struct{named: st}, func(_ *types.Named, i int) {
		inWarmKey[i] = true
	})
	fact := &sweepCoverage{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fact.Fields = append(fact.Fields, sweepField{
			Name:        f.Name(),
			InWarmKey:   inWarmKey[i],
			Nonsemantic: dirs.lineHas(f.Pos(), dirNonsemantic),
		})
	}
	pass.ExportPackageFact(fact)
}

// runKeyCovServer imports experiment's Sweep classification, adds
// Fingerprint's own coverage, and reports any field reaching neither key.
// Diagnostics anchor at the Fingerprint declaration: that is where the
// missing hash component belongs.
func runKeyCovServer(pass *analysis.Pass) {
	var expPkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == experimentPkgPath {
			expPkg = imp
			break
		}
	}
	if expPkg == nil {
		return
	}
	var cov sweepCoverage
	if !pass.ImportPackageFact(expPkg, &cov) {
		return
	}
	named, st := lookupStruct(expPkg, "Sweep")
	if named == nil {
		return
	}

	fpDecl := funcDeclByName(pass, "Fingerprint")
	if fpDecl == nil {
		return
	}
	inFingerprint := make([]bool, st.NumFields())
	funcs := sameClosureByName(pass, "Fingerprint")
	markFieldRefs(pass, funcs, map[*types.Named]*types.Struct{named: st}, func(_ *types.Named, i int) {
		inFingerprint[i] = true
	})

	for i, f := range cov.Fields {
		if i >= len(inFingerprint) {
			break // fact and type disagree (mid-refactor); the clean build re-checks
		}
		if f.InWarmKey || f.Nonsemantic || inFingerprint[i] {
			continue
		}
		pass.Reportf(fpDecl.Name.Pos(), "experiment.Sweep.%s flows into neither server.Fingerprint nor Sweep.WarmKey: hash it into a key or annotate the field %s%s <why it cannot change results>",
			f.Name, directivePrefix, dirNonsemantic)
	}
}

// runKeyCovConfig checks that every field reachable from config.Config is
// visible to encoding/json: the keys marshal the whole struct, so an
// unexported or json:"-" field is a knob that can change simulation output
// without changing any cache key.
func runKeyCovConfig(pass *analysis.Pass) {
	dirs := collectDirectives(pass)
	root, _ := lookupStruct(pass.Pkg, "Config")
	if root == nil {
		return
	}
	seen := make(map[*types.Named]bool)
	var visit func(named *types.Named)
	visit = func(named *types.Named) {
		if seen[named] {
			return
		}
		seen[named] = true
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			jsonSkipped := jsonTagName(st.Tag(i)) == "-"
			if (!f.Exported() || jsonSkipped) && !dirs.lineHas(f.Pos(), dirNonsemantic) {
				why := "is unexported"
				if jsonSkipped {
					why = "is tagged json:\"-\""
				}
				pass.Reportf(f.Pos(), "config field %s.%s %s and never reaches the cache keys (Fingerprint and WarmKey marshal the whole config): export it into the JSON or annotate it %s%s <why>",
					named.Obj().Name(), f.Name(), why, directivePrefix, dirNonsemantic)
			}
			if sub := derefNamed(f.Type()); sub != nil && sub.Obj().Pkg() == pass.Pkg {
				visit(sub)
			}
		}
	}
	visit(root)
}

// jsonTagName extracts the name part of a struct tag's json key.
func jsonTagName(tag string) string {
	val, ok := reflect.StructTag(tag).Lookup("json")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(val, ','); i >= 0 {
		val = val[:i]
	}
	return val
}

// lookupStruct finds a named struct type at package scope.
func lookupStruct(pkg *types.Package, name string) (*types.Named, *types.Struct) {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// funcDeclByName finds a package-level function or method declaration.
func funcDeclByName(pass *analysis.Pass, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name && !isTestFile(pass.Fset, fd.Pos()) {
				return fd
			}
		}
	}
	return nil
}

// sameClosureByName returns the function(s) with the given name plus every
// same-package function they transitively call, mirroring snapPaths but
// rooted at one name.
func sameClosureByName(pass *analysis.Pass, root string) map[*types.Func]*ast.FuncDecl {
	set, _ := funcClosures(pass, func(name string) (bool, bool) { return name == root, false })
	return set
}
