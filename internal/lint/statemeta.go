package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Shared machinery for the state-coverage analyzers (statecov, schemaver):
// which packages carry snapshot sections, which of their structs are
// snapshot state, and which functions form the snapshot-write and
// restore-read paths.

// snapshotPackages are the packages whose structs participate in the
// core.Sim.Snapshot/Restore stream. statecov checks field coverage and
// schemaver exports field-set digests for all of them.
var snapshotPackages = map[string]bool{
	"smtfetch/internal/core":     true,
	"smtfetch/internal/cache":    true,
	"smtfetch/internal/fetch":    true,
	"smtfetch/internal/bpred":    true,
	"smtfetch/internal/pipeline": true,
	"smtfetch/internal/ftq":      true,
	"smtfetch/internal/prog":     true,
	"smtfetch/internal/isa":      true,
	"smtfetch/internal/stats":    true,
	"smtfetch/internal/rng":      true,
}

// snapshotExtras names snapshot structs that cannot be auto-discovered
// from their method sets: their fields are serialized inline by another
// function of the package (threadState and threadFE by Sim.Snapshot and
// FrontEnd.EncodeState respectively) or decoded by a free function
// (bpred's value codecs).
var snapshotExtras = map[string][]string{
	"smtfetch/internal/core":  {"threadState"},
	"smtfetch/internal/fetch": {"threadFE"},
	"smtfetch/internal/bpred": {"RASCheckpoint", "PathHistory"},
}

// snapRootKind classifies a function of a snapshot package as part of the
// snapshot-write path, the restore-read path, or neither, by name:
// Encode*/Snapshot/State write the stream, Decode*/Restore/SetState read
// it. The same classification drives struct auto-discovery (a struct with
// both a write and a read method is snapshot state).
func snapRootKind(name string) (write, read bool) {
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "encode"), name == "Snapshot", name == "State":
		return true, false
	case strings.HasPrefix(lower, "decode"), name == "Restore", name == "SetState":
		return false, true
	}
	return false, false
}

// snapStructs returns the snapshot structs of the analyzed package: named
// struct types with both a write- and a read-path method (EncodeState +
// DecodeState and spelling variants), plus the snapshotExtras entries.
// Structs declared in test files are skipped.
func snapStructs(pass *analysis.Pass) map[*types.Named]*types.Struct {
	out := make(map[*types.Named]*types.Struct)
	scope := pass.Pkg.Scope()
	extra := make(map[string]bool)
	for _, name := range snapshotExtras[pass.Pkg.Path()] {
		extra[name] = true
	}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if isTestFile(pass.Fset, tn.Pos()) {
			continue
		}
		if extra[name] {
			out[named] = st
			continue
		}
		var hasWrite, hasRead bool
		for i := 0; i < named.NumMethods(); i++ {
			w, r := snapRootKind(named.Method(i).Name())
			hasWrite = hasWrite || w
			hasRead = hasRead || r
		}
		if hasWrite && hasRead {
			out[named] = st
		}
	}
	return out
}

// snapPaths computes the package's snapshot-write and restore-read path
// closures: the root functions (classified by snapRootKind) plus every
// same-package function they transitively call. Roots and callees in test
// files are excluded.
func snapPaths(pass *analysis.Pass) (write, read map[*types.Func]*ast.FuncDecl) {
	return funcClosures(pass, snapRootKind)
}

// funcClosures is the general form of snapPaths: rootKind classifies each
// package-level function name into up to two root sets, and the returned
// maps are those sets closed over same-package calls.
func funcClosures(pass *analysis.Pass, rootKind func(string) (bool, bool)) (first, second map[*types.Func]*ast.FuncDecl) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	callees := make(map[*types.Func][]*types.Func)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
				if ok && callee.Pkg() == pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				}
				return true
			})
		}
	}
	closure := func(isRoot func(string) bool) map[*types.Func]*ast.FuncDecl {
		set := make(map[*types.Func]*ast.FuncDecl)
		var frontier []*types.Func
		for fn, fd := range decls {
			if isRoot(fn.Name()) {
				set[fn] = fd
				frontier = append(frontier, fn)
			}
		}
		for len(frontier) > 0 {
			fn := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for _, callee := range callees[fn] {
				if _, seen := set[callee]; seen {
					continue
				}
				if fd, ok := decls[callee]; ok {
					set[callee] = fd
					frontier = append(frontier, callee)
				}
			}
		}
		return set
	}
	first = closure(func(name string) bool { a, _ := rootKind(name); return a })
	second = closure(func(name string) bool { _, b := rootKind(name); return b })
	return first, second
}

// markFieldRefs walks the given function bodies and records, for every
// field selection (including promoted-field selections, attributed to the
// embedded field actually traversed) on one of the snapshot structs, the
// struct field it covers.
func markFieldRefs(pass *analysis.Pass, funcs map[*types.Func]*ast.FuncDecl, structs map[*types.Named]*types.Struct, mark func(*types.Named, int)) {
	for _, fd := range funcs {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			named := derefNamed(s.Recv())
			if named == nil {
				return true
			}
			if _, tracked := structs[named]; tracked {
				mark(named, s.Index()[0])
			}
			return true
		})
	}
}

// derefNamed unwraps pointers down to a named type, or nil.
func derefNamed(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
