package lint

// schemaReg registers one versioned serialization schema: the package and
// version constant that guard it, the struct roots whose field sets define
// the wire format, and the checked-in digest of those field sets.
//
// The digest workflow is the same strict two-way diff discipline as the
// escape-analysis allowlist: change the serialized field set without
// bumping the version constant and schemaver fails with the new digest to
// paste; bump the constant without updating this table and schemaver fails
// because the recorded Version is stale. Every schema change therefore
// leaves an explicit, reviewed edit in this file.
type schemaReg struct {
	// Pkg is the import path owning the version constant and roots.
	Pkg string
	// Const names the package-level version constant.
	Const string
	// Version is the recorded value of that constant.
	Version int64
	// Mode selects how fields are folded into the digest: "json" digests
	// exported fields with their json tags (encoding/json envelopes);
	// "snap" digests non-//smtfetch:transient fields (the snap byte
	// stream), folding cross-package snapshot structs by their own
	// exported digests.
	Mode string
	// Roots are the struct type names (in Pkg) whose field sets the
	// digest covers.
	Roots []string
	// Digest is the checked-in FNV-64a digest of the roots' field sets.
	Digest string
}

// schemaRegs is the checked-in schema registry. Tests may swap it to run
// the analyzer against fixture packages.
var schemaRegs = []schemaReg{
	{
		Pkg:     "smtfetch/internal/experiment",
		Const:   "SchemaVersion",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"resultsFile"},
		Digest:  "c228ffc2ddefeb37",
	},
	{
		Pkg:     "smtfetch/internal/experiment",
		Const:   "AggregateSchemaVersion",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"aggregateFile"},
		Digest:  "15dd6705487e67e6",
	},
	{
		Pkg:     "smtfetch/internal/server",
		Const:   "CacheSchemaVersion",
		Version: 2,
		Mode:    "json",
		Roots:   []string{"cacheFile"},
		Digest:  "f94a45bbaf8bf851",
	},
	{
		Pkg:     "smtfetch/internal/core",
		Const:   "SnapshotVersion",
		Version: 1,
		Mode:    "snap",
		Roots:   []string{"Sim"},
		Digest:  "8349faadbbba540a",
	},
}
