package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// PoolOwn enforces the pooled-object ownership rules: pipeline.UOp and
// ftq.Request live on identity-validated free lists, so every construction
// must go through pool machinery, and every long-lived retention point must
// be a documented owner structure.
var PoolOwn = &analysis.Analyzer{
	Name: "poolown",
	Doc: "enforce pool ownership of pipeline.UOp and ftq.Request\n\n" +
		"Pooled types may not be constructed (composite literal, new, var of\n" +
		"value type, make of a value slice) outside their defining package or\n" +
		"a //smtfetch:poolowner function, may not be stored in package-level\n" +
		"variables or channels at all, and may not be retained in maps or in\n" +
		"struct slice/array fields outside a //smtfetch:poolowner struct.\n" +
		"This mechanizes the lifetime rules in the internal/ftq package\n" +
		"comment and the free-list invariants in internal/core.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runPoolOwn,
}

// pooledName returns the defining-package path and type name if named is a
// pooled type.
func pooledName(t types.Type) (pkg, name string, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	names := pooledTypes[obj.Pkg().Path()]
	if names == nil || !names[obj.Name()] {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// containsPooled walks t structurally through pointers, slices, arrays,
// maps, and channels and reports the first pooled named type it reaches.
// It does not descend into named struct types: their own declarations are
// checked where they are declared.
func containsPooled(t types.Type) (pkg, name string, ok bool) {
	seen := map[types.Type]bool{}
	var walk func(types.Type) (string, string, bool)
	walk = func(t types.Type) (string, string, bool) {
		if seen[t] {
			return "", "", false
		}
		seen[t] = true
		if pkg, name, ok := pooledName(t); ok {
			return pkg, name, ok
		}
		switch u := t.(type) {
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		case *types.Map:
			if pkg, name, ok := walk(u.Key()); ok {
				return pkg, name, ok
			}
			return walk(u.Elem())
		}
		return "", "", false
	}
	return walk(t)
}

func runPoolOwn(pass *analysis.Pass) (interface{}, error) {
	dirs := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// The defining package is its own pool machinery.
	ownPkg := pooledTypes[pass.Pkg.Path()] != nil

	// ownerFunc reports whether any enclosing function declaration in the
	// stack is annotated //smtfetch:poolowner.
	ownerFunc := func(stack []ast.Node) bool {
		for _, n := range stack {
			if fd, ok := n.(*ast.FuncDecl); ok && dirs.declHas(fd, dirPoolOwner) {
				return true
			}
		}
		return false
	}

	nodeFilter := []ast.Node{
		(*ast.CompositeLit)(nil),
		(*ast.CallExpr)(nil),
		(*ast.ValueSpec)(nil),
		(*ast.TypeSpec)(nil),
		(*ast.SendStmt)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if isTestFile(pass.Fset, n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok {
				return true
			}
			// Direct pooled literal (UOp{...}, &UOp{...} via the parent
			// unary): construction.
			if pkg, name, ok := pooledName(tv.Type); ok && !ownPkg && !ownerFunc(stack) {
				pass.Reportf(n.Pos(), "%s.%s composite literal outside its pool: pooled objects must come from the identity-validated free list (annotate pool machinery with %spoolowner)",
					pathBase(pkg), name, directivePrefix)
				return true
			}
			// Container literal retaining pooled values/pointers
			// ([]*UOp{...}, map literals, ...): retention.
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Map:
				if pkg, name, ok := containsPooled(tv.Type); ok && !ownPkg && !ownerFunc(stack) {
					pass.Reportf(n.Pos(), "literal of %s retains pooled %s.%s outside an owner: only %spoolowner structures may hold pooled objects",
						shortType(tv.Type), pathBase(pkg), name, directivePrefix)
				}
			}
		case *ast.CallExpr:
			// new(UOp) and make([]UOp, ...) construct pooled storage.
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && (b.Name() == "new" || b.Name() == "make") {
					if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && tv.IsType() {
						target := tv.Type
						if b.Name() == "new" {
							if pkg, name, ok := pooledName(target); ok && !ownPkg && !ownerFunc(stack) {
								pass.Reportf(n.Pos(), "new(%s.%s) outside its pool: pooled objects must come from the identity-validated free list", pathBase(pkg), name)
							}
						} else if pkg, name, ok := containsPooled(target); ok && !ownPkg && !ownerFunc(stack) {
							pass.Reportf(n.Pos(), "make of %s outside an owner: constructing or retaining pooled %s.%s storage is reserved to %spoolowner functions",
								shortType(target), pathBase(pkg), name, directivePrefix)
						}
					}
				}
			}
		case *ast.ValueSpec:
			// Package-level variables may never hold pooled objects: a
			// global retention point outlives every pool epoch.
			isPkgLevel := len(stack) >= 2 && isFileLevelDecl(stack)
			for _, name := range n.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if pkg, tname, ok := containsPooled(obj.Type()); ok {
					if isPkgLevel {
						pass.Reportf(name.Pos(), "package-level variable %s holds pooled %s.%s: globals outlive every pool epoch and are never valid owners", name.Name, pathBase(pkg), tname)
						continue
					}
					// Local declaration of a bare pooled *value* outside
					// the pool (var u pipeline.UOp): construction.
					if _, _, direct := pooledName(obj.Type()); direct && !ownPkg && !ownerFunc(stack) {
						pass.Reportf(name.Pos(), "var of pooled value type %s.%s outside its pool: use the free list, not a stack copy (identity checks cannot see copies)", pathBase(pkg), tname)
					}
				}
			}
		case *ast.TypeSpec:
			st, ok := n.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if ownPkg || dirs.declHas(n, dirPoolOwner) {
				return true
			}
			for _, f := range st.Fields.List {
				tv, ok := pass.TypesInfo.Types[f.Type]
				if !ok {
					continue
				}
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Map, *types.Chan:
					if pkg, name, ok := containsPooled(tv.Type); ok {
						pass.Reportf(f.Pos(), "struct %s retains pooled %s.%s in a container field but is not a documented owner: annotate the struct with %spoolowner (and document it) or hand the objects back to their pool",
							n.Name.Name, pathBase(pkg), name, directivePrefix)
					}
				}
			}
		case *ast.SendStmt:
			// Channels hand objects to other goroutines: never a valid
			// transfer for pool-owned state (and goroutines are banned in
			// simulator packages anyway).
			if tv, ok := pass.TypesInfo.Types[n.Value]; ok {
				if pkg, name, ok := containsPooled(tv.Type); ok {
					pass.Reportf(n.Pos(), "channel send of pooled %s.%s: pooled objects may not cross goroutines", pathBase(pkg), name)
				}
			}
		}
		return true
	})

	// Channel types mentioning pooled objects are wrong wherever they
	// appear (fields, params, locals): scan type expressions.
	ins.Preorder([]ast.Node{(*ast.ChanType)(nil)}, func(n ast.Node) {
		if isTestFile(pass.Fset, n.Pos()) {
			return
		}
		if tv, ok := pass.TypesInfo.Types[n.(ast.Expr)]; ok {
			if pkg, name, ok := containsPooled(tv.Type); ok {
				pass.Reportf(n.Pos(), "channel type carries pooled %s.%s: pooled objects may not cross goroutines", pathBase(pkg), name)
			}
		}
	})

	return nil, nil
}

// isFileLevelDecl reports whether the innermost declaration context in the
// stack is a file-level GenDecl (i.e. not inside any function).
func isFileLevelDecl(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
	}
	return true
}

// shortType renders a type with bare package names (pipeline.UOp, not the
// full import path), keeping diagnostics readable.
func shortType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
