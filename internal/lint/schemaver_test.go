package lint

// An internal test: the fixture run swaps the unexported schema registry
// for registrations pointing at the fixture packages, covering every
// failure class (stale digest, stale recorded version, rotten const,
// rotten root) plus the clean json and snap (cross-package fact) cases.

import (
	"testing"

	"smtfetch/internal/lint/linttest"
)

// fixtureRegs mirrors schemadigest.go for the testdata/schemaver module.
// The accept digests are pinned: if the digest algorithm itself changes,
// this test fails before the real registry silently re-validates.
var fixtureRegs = []schemaReg{
	{
		Pkg:     "schemaok",
		Const:   "Version",
		Version: 3,
		Mode:    "json",
		Roots:   []string{"envelope"},
		Digest:  "e8a8fde082255188",
	},
	{
		Pkg:     "smtfetch/internal/core",
		Const:   "SnapshotVersion",
		Version: 1,
		Mode:    "snap",
		Roots:   []string{"Sim"},
		Digest:  "86948302ac5910c1",
	},
	{
		Pkg:     "schemabad",
		Const:   "VersionDrift",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"driftFile"},
		Digest:  "ffffffffffffffff",
	},
	{
		Pkg:     "schemabad",
		Const:   "VersionStale",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"staleFile"},
		Digest:  "ffffffffffffffff",
	},
	{
		Pkg:     "schemabad",
		Const:   "VersionGone",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"staleFile"},
		Digest:  "ffffffffffffffff",
	},
	{
		Pkg:     "schemabad",
		Const:   "VersionNoRoot",
		Version: 1,
		Mode:    "json",
		Roots:   []string{"goneFile"},
		Digest:  "ffffffffffffffff",
	},
}

func TestSchemaVer(t *testing.T) {
	saved := schemaRegs
	schemaRegs = fixtureRegs
	defer func() { schemaRegs = saved }()
	linttest.Run(t, "testdata/schemaver", SchemaVer,
		"smtfetch/internal/rng", "smtfetch/internal/core",
		"schemaok", "schemabad")
}
