package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// Determinism enforces bit-identical reproducibility in the simulator
// packages: equal (config, workload, seed) must produce a byte-identical
// result document — the content-keyed result cache and the CI compare
// gates are built on that guarantee.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid nondeterministic inputs and scheduling in simulator packages\n\n" +
		"Simulator packages may not read wall clocks (time.Now and friends),\n" +
		"global math/rand state, or the process environment (importing os,\n" +
		"syscall, net, or os/exec at all is flagged); may not launch\n" +
		"goroutines or select over channels; and may not range over maps\n" +
		"except at sites annotated //smtfetch:commutative with a proof\n" +
		"sketch. Seeded *rand.Rand instances are fine: they are part of the\n" +
		"reproducible input.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

// bannedImports are packages whose mere import into simulator code smells
// of environment access or I/O that the result document must not depend
// on. Keyed by exact path or by "prefix/" meaning the whole subtree.
var bannedImports = []string{
	"os", "os/", "syscall", "io/ioutil", "net", "net/",
}

// nondetTimeFuncs are the wall-clock entry points of package time.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func importBanned(path string) bool {
	for _, b := range bannedImports {
		if strings.HasSuffix(b, "/") {
			if strings.HasPrefix(path, b) {
				return true
			}
		} else if path == b {
			return true
		}
	}
	return false
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	// internal/snap is not a sim package (zeroalloc's closure rule does not
	// apply to it) but it serializes sim state, so it must obey the same
	// no-clock/no-map-iteration determinism rules.
	if !simPackages[pass.Pkg.Path()] && pass.Pkg.Path() != "smtfetch/internal/snap" {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.ImportSpec)(nil),
		(*ast.CallExpr)(nil),
		(*ast.GoStmt)(nil),
		(*ast.SelectStmt)(nil),
		(*ast.RangeStmt)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if isTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.ImportSpec:
			path, err := strconv.Unquote(n.Path.Value)
			if err == nil && importBanned(path) {
				pass.Reportf(n.Pos(), "simulator package imports %q: environment and I/O access breaks bit-identical determinism (move it behind the experiment/server layers)", path)
			}
		case *ast.CallExpr:
			fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			sig, _ := fn.Type().(*types.Signature)
			isMethod := sig != nil && sig.Recv() != nil
			switch fn.Pkg().Path() {
			case "time":
				if !isMethod && nondetTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "time.%s in a simulator package: wall-clock reads break bit-identical determinism (cycle counts are the only clock)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Methods on an explicitly seeded *rand.Rand are
				// reproducible inputs; the package-level functions share
				// unseeded (or process-global) state. Constructors are
				// how you obtain the seeded generator.
				if !isMethod && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(n.Pos(), "%s.%s uses global math/rand state: derive randomness from an explicitly seeded *rand.Rand owned by the simulation", pathBase(fn.Pkg().Path()), fn.Name())
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in a simulator package: scheduling order is not reproducible; parallelism belongs in the experiment layer above the simulator")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in a simulator package: case choice is randomized by the runtime and breaks determinism")
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if dirs.lineHas(n.Pos(), dirCommutative) {
				return
			}
			pass.Reportf(n.Pos(), "range over map in a simulator package: iteration order is randomized; sort the keys, use a slice, or annotate the site %s%s with a commutativity argument", directivePrefix, dirCommutative)
		}
	})
	return nil, nil
}
