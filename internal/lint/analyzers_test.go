package lint_test

import (
	"testing"

	"smtfetch/internal/lint"
	"smtfetch/internal/lint/linttest"
)

// Each analyzer must both flag the violating fixtures and stay quiet on
// the idiomatic patterns sitting next to them; the `// want` comments in
// testdata encode both sides.

func TestPoolOwn(t *testing.T) {
	linttest.Run(t, "testdata/poolown", lint.PoolOwn, "consumer")
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", lint.Determinism,
		"smtfetch/internal/core", "smtfetch/internal/snap", "other")
}

func TestZeroAlloc(t *testing.T) {
	linttest.Run(t, "testdata/zeroalloc", lint.ZeroAlloc,
		"smtfetch/internal/core")
}

func TestStateCov(t *testing.T) {
	linttest.Run(t, "testdata/statecov", lint.StateCov,
		"smtfetch/internal/core")
}

func TestKeyCov(t *testing.T) {
	linttest.Run(t, "testdata/keycov", lint.KeyCov,
		"smtfetch/internal/experiment", "smtfetch/internal/config",
		"smtfetch/internal/server")
}
