package experiment

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
)

func TestCellsFullGridDefaults(t *testing.T) {
	var s Sweep
	cells := s.Cells()
	want := len(bench.WorkloadNames()) * len(config.Engines()) * len(config.FetchPolicies())
	if len(cells) != want {
		t.Fatalf("default grid has %d cells, want %d", len(cells), want)
	}
	// Deterministic order: first axis is workload, innermost is seed.
	if cells[0].Workload != "2_ILP" || cells[0].Engine != config.GShareBTB {
		t.Fatalf("first cell = %+v", cells[0])
	}
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			t.Fatalf("duplicate cell %s", k)
		}
		seen[k] = true
	}
}

func TestCellsFilter(t *testing.T) {
	s := Sweep{
		Workloads: []string{"2_MIX", "4_MIX"},
		Seeds:     []uint64{1, 2},
		Filter:    func(c Cell) bool { return c.Engine == config.StreamFetch },
	}
	cells := s.Cells()
	want := 2 * 1 * len(config.FetchPolicies()) * 2
	if len(cells) != want {
		t.Fatalf("filtered grid has %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Engine != config.StreamFetch {
			t.Fatalf("filter leaked %+v", c)
		}
	}
}

func TestValidateRejectsBadWorkload(t *testing.T) {
	s := Sweep{Workloads: []string{"9_NOPE"}}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown workload")
	}
	empty := Sweep{Filter: func(Cell) bool { return false }}
	if err := empty.Validate(); err == nil {
		t.Fatal("Validate accepted an empty grid")
	}
	badPolicy := Sweep{Policies: []config.FetchPolicy{{Policy: config.ICount, Threads: 9, Width: 8}}}
	if err := badPolicy.Validate(); err == nil {
		t.Fatal("Validate accepted a bad fetch policy")
	}
}

func TestCellSeedDependsOnlyOnIdentity(t *testing.T) {
	c := Cell{Workload: "2_MIX", Engine: config.StreamFetch, Policy: config.ICount116, Seed: 1}
	if CellSeed(c) != CellSeed(c) {
		t.Fatal("CellSeed not stable")
	}
	if CellSeed(c) == 0 {
		t.Fatal("CellSeed produced the reserved 0 value")
	}
	// Any identity change must change the derived seed.
	variants := []Cell{
		{Workload: "4_MIX", Engine: c.Engine, Policy: c.Policy, Seed: c.Seed},
		{Workload: c.Workload, Engine: config.GShareBTB, Policy: c.Policy, Seed: c.Seed},
		{Workload: c.Workload, Engine: c.Engine, Policy: config.ICount18, Seed: c.Seed},
		{Workload: c.Workload, Engine: c.Engine, Policy: c.Policy, Seed: 2},
	}
	for _, v := range variants {
		if CellSeed(v) == CellSeed(c) {
			t.Fatalf("CellSeed collision between %s and %s", c.Key(), v.Key())
		}
	}
}

// fakeRunner replaces the simulator with a deterministic function of the
// cell so pool mechanics can be tested in microseconds.
func fakeRunner(s *Sweep, c Cell) Result {
	seed := CellSeed(c)
	return Result{
		Workload: c.Workload,
		Engine:   c.Engine.String(),
		Policy:   c.Policy.String(),
		Seed:     c.Seed,
		IPC:      float64(seed%1000) / 100,
		IPFC:     float64(seed%2000) / 100,
	}
}

func withFakeRunner(t *testing.T) {
	t.Helper()
	orig := runner
	runner = fakeRunner
	t.Cleanup(func() { runner = orig })
}

func TestRunParallelismInvariant(t *testing.T) {
	withFakeRunner(t)
	newSweep := func(jobs int) Sweep {
		return Sweep{
			Workloads: []string{"2_MIX", "4_MIX", "8_MIX"},
			Seeds:     []uint64{1, 2, 3},
			Jobs:      jobs,
		}
	}
	var outputs []string
	for _, jobs := range []int{1, 4, 16} {
		s := newSweep(jobs)
		results, err := s.Run()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		b, err := MarshalJSONResults(results)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, string(b))
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Fatal("sweep JSON differs across worker counts")
	}
}

func TestRunCellsResultSource(t *testing.T) {
	var executed int32
	orig := runner
	runner = func(s *Sweep, c Cell) Result {
		atomic.AddInt32(&executed, 1)
		return fakeRunner(s, c)
	}
	t.Cleanup(func() { runner = orig })

	s := Sweep{Workloads: []string{"2_MIX"}, Jobs: 4}
	cells, err := s.Prepare()
	if err != nil {
		t.Fatal(err)
	}

	// A source that knows every other cell: only the misses may execute.
	var hits int32
	src := func(c Cell) (Result, bool) {
		if c.Policy == config.ICount18 || c.Policy == config.ICount28 {
			atomic.AddInt32(&hits, 1)
			r := fakeRunner(&s, c)
			r.IPFC = -1 // marker proving the source's result is used verbatim
			return r, true
		}
		return Result{}, false
	}
	results, err := s.RunCells(cells, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("%d results for %d cells", len(results), len(cells))
	}
	if int(hits)+int(executed) != len(cells) {
		t.Fatalf("hits %d + executed %d != %d cells", hits, executed, len(cells))
	}
	if hits == 0 || executed == 0 {
		t.Fatalf("expected a mix of source hits and executions, got hits=%d executed=%d", hits, executed)
	}
	for _, r := range results {
		fromSource := r.IPFC == -1
		if wantSource := r.Policy == "ICOUNT.1.8" || r.Policy == "ICOUNT.2.8"; fromSource != wantSource {
			t.Fatalf("cell %s: fromSource=%v, want %v", r.Key(), fromSource, wantSource)
		}
	}

	// A full source means zero executions, and Run (nil source) still
	// executes everything.
	executed = 0
	if _, err := s.RunCells(cells, func(c Cell) (Result, bool) { return fakeRunner(&s, c), true }); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("full source still executed %d cells", executed)
	}
}

func TestPrepareMatchesCellsAndValidate(t *testing.T) {
	s := Sweep{Workloads: []string{"2_MIX", "4_MIX"}}
	cells, err := s.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	direct := s.Cells()
	if len(cells) != len(direct) {
		t.Fatalf("Prepare returned %d cells, Cells %d", len(cells), len(direct))
	}
	for i := range cells {
		if cells[i] != direct[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, cells[i], direct[i])
		}
	}
	bad := Sweep{Workloads: []string{"9_NOPE"}}
	if _, err := bad.Prepare(); err == nil {
		t.Fatal("Prepare accepted an unknown workload")
	}
}

func TestRunResultsSorted(t *testing.T) {
	withFakeRunner(t)
	s := Sweep{Workloads: []string{"4_MIX", "2_MIX"}, Jobs: 8}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Key() >= results[i].Key() {
			t.Fatalf("results not strictly sorted: %q then %q", results[i-1].Key(), results[i].Key())
		}
	}
}

func TestRunProgressCallback(t *testing.T) {
	withFakeRunner(t)
	var calls int
	var last int
	s := Sweep{
		Workloads: []string{"2_MIX"},
		Jobs:      4,
		OnResult: func(done, total int, r Result) {
			calls++
			if done != calls {
				t.Errorf("done = %d on call %d", done, calls)
			}
			last = total
		},
	}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(results) || last != len(results) {
		t.Fatalf("callback calls=%d total=%d, want %d", calls, last, len(results))
	}
}

func TestRunCollectsCellErrors(t *testing.T) {
	orig := runner
	runner = func(s *Sweep, c Cell) Result {
		r := fakeRunner(s, c)
		if c.Engine == config.GSkewFTB {
			r.Error = "synthetic failure"
			r.IPC = 0
		}
		return r
	}
	t.Cleanup(func() { runner = orig })

	s := Sweep{Workloads: []string{"2_MIX"}, Jobs: 2}
	results, err := s.Run()
	if err == nil {
		t.Fatal("Run swallowed cell errors")
	}
	if !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("aggregate error %q lacks cell message", err)
	}
	var failed int
	for _, r := range results {
		if r.Error != "" {
			failed++
		}
	}
	if failed != len(config.FetchPolicies()) {
		t.Fatalf("%d failed cells, want %d", failed, len(config.FetchPolicies()))
	}
}

func TestTableAligned(t *testing.T) {
	withFakeRunner(t)
	s := Sweep{Workloads: []string{"2_MIX"}, Jobs: 2}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table(results)
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != len(results)+1 {
		t.Fatalf("table has %d lines, want %d", len(lines), len(results)+1)
	}
	if !strings.HasPrefix(lines[0], "WORKLOAD") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// Columns align: every row's ENGINE column starts at the same offset.
	off := strings.Index(lines[0], "ENGINE")
	for i, ln := range lines[1:] {
		if len(ln) < off {
			t.Fatalf("row %d too short: %q", i+1, ln)
		}
		if ln[off-1] != ' ' {
			t.Fatalf("row %d misaligned at ENGINE column: %q", i+1, ln)
		}
	}
}

func TestJSONRoundTripAndSchemaVersion(t *testing.T) {
	withFakeRunner(t)
	s := Sweep{Workloads: []string{"2_MIX"}, Jobs: 2}
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalJSONResults(results)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip returned %d results, want %d", len(back), len(results))
	}
	for i := range back {
		if back[i].Key() != results[i].Key() || back[i].IPC != results[i].IPC {
			t.Fatalf("result %d changed in round trip", i)
		}
	}
	// Wrong schema version is rejected.
	bad := strings.Replace(string(b), fmt.Sprintf("\"schema_version\": %d", SchemaVersion), "\"schema_version\": 999", 1)
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("ReadJSON accepted a wrong schema version")
	}
}
