package experiment

import (
	"testing"

	"smtfetch/internal/config"
)

// TestSweepDeterminismAcrossJobs runs a real (but short) sweep twice — one
// worker vs eight — and requires bit-identical JSON. This is the harness
// property every future perf PR leans on: parallelism must never perturb
// results.
func TestSweepDeterminismAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator sweep; skipped with -short")
	}
	newSweep := func(jobs int) Sweep {
		return Sweep{
			Workloads:     []string{"2_MIX"},
			Engines:       []config.Engine{config.GShareBTB, config.StreamFetch},
			Policies:      []config.FetchPolicy{config.ICount18, config.ICount116},
			Seeds:         []uint64{1, 2},
			Jobs:          jobs,
			WarmupInstrs:  5_000,
			MeasureInstrs: 10_000,
		}
	}

	run := func(jobs int) string {
		s := newSweep(jobs)
		results, err := s.Run()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		b, err := MarshalJSONResults(results)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatal("sweep JSON differs between -jobs 1 and -jobs 8")
	}
}

// TestSweepFilteredSubsetMatchesFullGrid checks that filtering does not
// change per-cell results: a cell's derived seed depends on its identity,
// not on which other cells ran beside it.
func TestSweepFilteredSubsetMatchesFullGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator sweep; skipped with -short")
	}
	base := Sweep{
		Workloads:     []string{"2_MIX"},
		Engines:       []config.Engine{config.GShareBTB, config.StreamFetch},
		Policies:      []config.FetchPolicy{config.ICount18},
		Jobs:          4,
		WarmupInstrs:  5_000,
		MeasureInstrs: 10_000,
	}
	full, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	sub := base
	sub.Filter = func(c Cell) bool { return c.Engine == config.StreamFetch }
	filtered, err := sub.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 1 {
		t.Fatalf("filtered sweep has %d cells, want 1", len(filtered))
	}
	var match *Result
	for i := range full {
		if full[i].Key() == filtered[0].Key() {
			match = &full[i]
		}
	}
	if match == nil {
		t.Fatalf("cell %s absent from full grid", filtered[0].Key())
	}
	if match.IPC != filtered[0].IPC || match.Stats.Committed != filtered[0].Stats.Committed {
		t.Fatal("filtered cell result differs from the same cell in the full grid")
	}
}
