package experiment

import (
	"strings"
	"testing"

	"smtfetch/internal/config"
)

// TestPerfBenchProducesReport runs a tiny real perf bench and checks the
// report is complete, positive, and serializable.
func TestPerfBenchProducesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator run; skipped with -short")
	}
	pb := PerfBench{
		Workloads:     []string{"2_MIX"},
		Engines:       []config.Engine{config.GShareBTB, config.StreamFetch},
		Policies:      []config.FetchPolicy{config.ICount18},
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
	}
	var progress int
	pb.OnCell = func(done, total int, c PerfCell) { progress++ }

	rep, err := pb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || progress != 2 {
		t.Fatalf("got %d cells, %d progress calls, want 2/2", len(rep.Cells), progress)
	}
	if rep.SchemaVersion != PerfSchemaVersion || rep.GoVersion == "" || rep.Timestamp == "" {
		t.Fatalf("incomplete report header: %+v", rep)
	}
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s/%s errored: %s", c.Workload, c.Engine, c.Error)
		}
		if c.Cycles == 0 || c.Committed == 0 || c.WallNS <= 0 {
			t.Fatalf("cell %s/%s has empty measurements: %+v", c.Workload, c.Engine, c)
		}
		if c.KiloCyclesPerSec <= 0 || c.MIPS <= 0 || c.IPC <= 0 {
			t.Fatalf("cell %s/%s has non-positive rates: %+v", c.Workload, c.Engine, c)
		}
		if c.AllocsPerCycle < 0 {
			t.Fatalf("cell %s/%s negative allocs/cycle", c.Workload, c.Engine)
		}
	}

	var sb strings.Builder
	if err := WritePerfJSON(&sb, rep); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"\"schema_version\": 1", "\"kilo_cycles_per_sec\"", "\"allocs_per_cycle\"", "2_MIX"} {
		if !strings.Contains(sb.String(), needle) {
			t.Fatalf("perf JSON missing %q:\n%s", needle, sb.String())
		}
	}
	if tbl := PerfTable(rep); !strings.Contains(tbl, "KCYC/S") || !strings.Contains(tbl, "stream") {
		t.Fatalf("perf table malformed:\n%s", tbl)
	}
}

// TestPerfBenchRejectsBadWorkload checks error propagation.
func TestPerfBenchRejectsBadWorkload(t *testing.T) {
	pb := PerfBench{
		Workloads:     []string{"9_NOPE"},
		Engines:       []config.Engine{config.GShareBTB},
		Policies:      []config.FetchPolicy{config.ICount18},
		WarmupInstrs:  1,
		MeasureInstrs: 1,
	}
	rep, err := pb.Run()
	if err == nil {
		t.Fatal("unknown workload did not error")
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Error == "" {
		t.Fatal("failing cell not recorded in report")
	}
}
