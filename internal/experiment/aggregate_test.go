package experiment

import (
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %.12f, want %.12f", name, got, want)
	}
}

// Hand-computed replication statistics, including the degenerate cases the
// CI-overlap gate depends on getting right: n=1 (no spread information)
// and zero variance (a point interval).
func TestSummarizeHandComputed(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if s := summarize(nil); s != (Summary{}) {
			t.Fatalf("summarize(nil) = %+v, want zero", s)
		}
	})
	t.Run("n=1", func(t *testing.T) {
		s := summarize([]float64{2.5})
		if s.N != 1 {
			t.Fatalf("N = %d", s.N)
		}
		approx(t, "Mean", s.Mean, 2.5)
		approx(t, "Stddev", s.Stddev, 0)
		// A single run has no spread: the interval degenerates to the
		// point estimate rather than fabricating a zero-width "CI".
		approx(t, "CILow", s.CILow, 2.5)
		approx(t, "CIHigh", s.CIHigh, 2.5)
	})
	t.Run("n=2", func(t *testing.T) {
		// {1, 3}: mean 2, sample stddev sqrt(2); t(df=1) = 12.706 gives a
		// half-width of 12.706*sqrt(2)/sqrt(2) = 12.706 — two runs pin
		// almost nothing down, which is exactly what the wide interval says.
		s := summarize([]float64{1, 3})
		approx(t, "Mean", s.Mean, 2)
		approx(t, "Stddev", s.Stddev, math.Sqrt2)
		approx(t, "CILow", s.CILow, 2-12.706)
		approx(t, "CIHigh", s.CIHigh, 2+12.706)
	})
	t.Run("n=3", func(t *testing.T) {
		// {1, 2, 3}: mean 2, sample stddev 1, t(df=2) = 4.303,
		// half-width 4.303/sqrt(3).
		s := summarize([]float64{1, 2, 3})
		h := 4.303 / math.Sqrt(3)
		approx(t, "Mean", s.Mean, 2)
		approx(t, "Stddev", s.Stddev, 1)
		approx(t, "CILow", s.CILow, 2-h)
		approx(t, "CIHigh", s.CIHigh, 2+h)
		approx(t, "CIHalfWidth", s.CIHalfWidth(), h)
	})
	t.Run("zero variance", func(t *testing.T) {
		s := summarize([]float64{2, 2, 2, 2})
		if s.N != 4 {
			t.Fatalf("N = %d", s.N)
		}
		approx(t, "Stddev", s.Stddev, 0)
		approx(t, "CILow", s.CILow, 2)
		approx(t, "CIHigh", s.CIHigh, 2)
	})
}

func TestTCrit95Monotone(t *testing.T) {
	// The critical value must decrease toward the normal 1.96 as df grows;
	// a table typo would quietly mis-size every interval.
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		c := tCrit95(df)
		if c > prev {
			t.Fatalf("tCrit95(%d) = %v > tCrit95(%d) = %v", df, c, df-1, prev)
		}
		if c < 1.96 {
			t.Fatalf("tCrit95(%d) = %v below the normal limit", df, c)
		}
		prev = c
	}
}

func aggRes(workload, engine, policy string, seed uint64, ipc, ipfc, acc float64) Result {
	return Result{Workload: workload, Engine: engine, Policy: policy, Seed: seed,
		IPC: ipc, IPFC: ipfc, CondAccuracy: acc}
}

func TestAggregateGroupsAcrossSeeds(t *testing.T) {
	rs := []Result{
		// Deliberately unsorted, seeds 10/2/1 to exercise numeric ordering.
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 10, 3.0, 9.0, 0.95),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0, 7.0, 0.93),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 2, 2.0, 8.0, 0.94),
		aggRes("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.5, 6.0, 0.90),
	}
	gs := Aggregate(rs)
	if len(gs) != 2 {
		t.Fatalf("%d groups, want 2", len(gs))
	}
	// Sorted by (workload, engine, policy): gshare+BTB before stream.
	if gs[0].Engine != "gshare+BTB" || gs[1].Engine != "stream" {
		t.Fatalf("group order: %s, %s", gs[0].Key(), gs[1].Key())
	}
	single, multi := gs[0], gs[1]
	if single.IPC.N != 1 || single.IPC.Mean != 1.5 {
		t.Fatalf("single-seed group = %+v", single.IPC)
	}
	if multi.IPC.N != 3 {
		t.Fatalf("N = %d", multi.IPC.N)
	}
	if len(multi.Seeds) != 3 || multi.Seeds[0] != 1 || multi.Seeds[1] != 2 || multi.Seeds[2] != 10 {
		t.Fatalf("Seeds = %v, want numeric order [1 2 10]", multi.Seeds)
	}
	approx(t, "IPC.Mean", multi.IPC.Mean, 2)
	approx(t, "IPC.Stddev", multi.IPC.Stddev, 1)
	approx(t, "IPFC.Mean", multi.IPFC.Mean, 8)
	approx(t, "CondAccuracy.Mean", multi.CondAccuracy.Mean, 0.94)
}

func TestAggregateExcludesErrorCells(t *testing.T) {
	bad := aggRes("2_MIX", "stream", "ICOUNT.1.8", 2, 0, 0, 0)
	bad.Error = "synthetic failure"
	rs := []Result{
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0, 8.0, 0.94),
		bad,
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 3, 2.2, 8.2, 0.95),
	}
	gs := Aggregate(rs)
	if len(gs) != 1 {
		t.Fatalf("%d groups", len(gs))
	}
	g := gs[0]
	if g.Errors != 1 || g.IPC.N != 2 {
		t.Fatalf("Errors = %d, N = %d, want 1, 2", g.Errors, g.IPC.N)
	}
	// The failed cell's IPC-0 marker must not drag the mean down.
	approx(t, "IPC.Mean", g.IPC.Mean, 2.1)
	if len(g.Seeds) != 2 || g.Seeds[0] != 1 || g.Seeds[1] != 3 {
		t.Fatalf("Seeds = %v, want [1 3]", g.Seeds)
	}

	// A group of only error cells keeps its identity but has no stats.
	gs = Aggregate([]Result{bad})
	if len(gs) != 1 || gs[0].IPC.N != 0 || gs[0].Errors != 1 {
		t.Fatalf("all-error group = %+v", gs[0])
	}
}

// Aggregation is a pure function of the result multiset: input order must
// not leak into the statistics or the JSON bytes.
func TestAggregateOrderIndependent(t *testing.T) {
	rs := []Result{
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 1, 1.01, 7, 0.93),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 2, 2.02, 8, 0.94),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 3, 3.03, 9, 0.95),
		aggRes("4_MIX", "stream", "ICOUNT.1.8", 1, 1.5, 6, 0.90),
	}
	want, err := MarshalAggregateJSON(Aggregate(rs))
	if err != nil {
		t.Fatal(err)
	}
	perm := []Result{rs[3], rs[1], rs[0], rs[2]}
	got, err := MarshalAggregateJSON(Aggregate(perm))
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("aggregate depends on input order:\n%s\nvs\n%s", want, got)
	}
}

func TestAggregateJSONRoundTripAndSchema(t *testing.T) {
	gs := Aggregate([]Result{
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0, 8.0, 0.94),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 2, 2.2, 8.2, 0.95),
	})
	blob, err := MarshalAggregateJSON(gs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"aggregate_schema_version": 1`) {
		t.Fatalf("missing schema version:\n%s", blob)
	}
	back, err := ReadAggregateJSON(strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].IPC != gs[0].IPC || back[0].Key() != gs[0].Key() {
		t.Fatalf("round trip changed groups: %+v vs %+v", back, gs)
	}
	bad := strings.Replace(string(blob), `"aggregate_schema_version": 1`, `"aggregate_schema_version": 999`, 1)
	if _, err := ReadAggregateJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("wrong aggregate schema version accepted")
	}
}

func TestAggregateTableRendering(t *testing.T) {
	gs := Aggregate([]Result{
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0, 8.0, 0.94),
		aggRes("2_MIX", "stream", "ICOUNT.1.8", 2, 2.2, 8.2, 0.95),
		aggRes("4_MIX", "stream", "ICOUNT.1.8", 1, 1.5, 6.0, 0.90),
	})
	tbl := AggregateTable(gs)
	lines := strings.Split(strings.TrimRight(tbl, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), tbl)
	}
	for _, frag := range []string{"IPC.CI95", "IPC.SD", "ERRORS"} {
		if !strings.Contains(lines[0], frag) {
			t.Fatalf("header missing %q: %q", frag, lines[0])
		}
	}
	if !strings.Contains(lines[1], "2.100") {
		t.Fatalf("multi-seed row missing the mean:\n%s", tbl)
	}
	// The n=1 group must not fabricate a zero spread.
	if !strings.Contains(lines[2], "-") {
		t.Fatalf("single-seed row should render '-' for spread columns:\n%s", tbl)
	}
}
