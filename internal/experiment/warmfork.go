package experiment

// Warm-state checkpoint sharing across sweep cells.
//
// A sweep's fetch-policy axis multiplies its wall clock by the number of
// policies, yet every policy cell of one (workload, engine, T.W shape,
// seed) group spends its warm-up phase doing nearly identical work. The
// warm-fork modes collapse that: the group is warmed ONCE under a
// canonical policy (ICOUNT with the cell's thread/width shape — chosen
// because ICOUNT never puts FLUSH replay state in flight, which is the
// one condition under which core.Sim.SetPolicy refuses to switch), the
// warmed state is checkpointed with core.Sim.Snapshot, and each cell is
// forked from the checkpoint via Restore + SetPolicy + Measure.
//
// Because all cells of a group must consume the same warm-up, the
// simulator seed in these modes is the CANONICAL cell's seed, not the
// per-cell one — which is why warm-fork is opt-in rather than the
// default: its results are not comparable against default-mode baselines
// cell-for-cell. WarmForkRerun exists as the audit path: it derives seeds
// identically and re-simulates the identical canonical warm-up for every
// cell without checkpointing, so `fork` and `rerun` sweeps must produce
// byte-identical output files (CI compares them with cmp).

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"

	"smtfetch"
	"smtfetch/internal/config"
	"smtfetch/internal/core"
)

// Warm-fork modes for Sweep.WarmFork.
const (
	// WarmForkOff warms every cell independently under its own policy.
	WarmForkOff = ""
	// WarmForkFork warms once per group, checkpoints, and forks cells.
	WarmForkFork = "fork"
	// WarmForkRerun re-simulates the canonical warm-up per cell; the
	// reference path WarmForkFork must match byte-for-byte.
	WarmForkRerun = "rerun"
)

// canonicalCell maps a cell to its warm-up group representative: the
// ICOUNT policy with the cell's thread/width shape. Cells differing only
// in the policy heuristic share a representative; cells with different
// T.W shapes do not (SetPolicy refuses bandwidth changes, since fetch
// buffer and selection structures are sized by them).
func canonicalCell(c Cell) Cell {
	c.Policy.Policy = config.ICount
	return c
}

// WarmKey identifies a warm checkpoint: a hex FNV-64a over a canonical
// JSON document of everything that shapes warmed state. WarmupInstrs and
// WarmupCycles are explicit, documented components — changing either
// changes the key, so a sweep with a different warm-up length can never
// be served a stale checkpoint (the cache-miss regression test pins
// this). The machine description keeps its engine and canonical policy,
// unlike server.Fingerprint's result keys, because warmed predictor and
// cache state depends on both. The snapshot format version is folded in
// so format bumps invalidate cached blobs instead of failing restores.
func (s *Sweep) WarmKey(c Cell) string {
	return s.warmKeyAt(core.SnapshotVersion, c)
}

// warmKeyAt is WarmKey with an explicit snapshot format version, split out
// so tests can pin that the version is a live key component (a format bump
// must change every warm key).
func (s *Sweep) warmKeyAt(snapshotVersion int, c Cell) string {
	canon := canonicalCell(c)
	mc := config.Default()
	if s.Machine != nil {
		mc = *s.Machine
	}
	mc.Engine = canon.Engine
	mc.FetchPolicy = canon.Policy
	doc := struct {
		SnapshotVersion int           `json:"snapshot_version"`
		Cell            string        `json:"cell"`
		WarmupInstrs    uint64        `json:"warmup_instrs"`
		WarmupCycles    uint64        `json:"warmup_cycles"`
		MaxCycles       uint64        `json:"max_cycles"`
		Machine         config.Config `json:"machine"`
	}{
		SnapshotVersion: snapshotVersion,
		Cell:            canon.Key(),
		WarmupInstrs:    s.WarmupInstrs,
		WarmupCycles:    s.WarmupCycles,
		MaxCycles:       s.MaxCycles,
		Machine:         mc,
	}
	b, err := json.Marshal(doc)
	if err != nil {
		panic(fmt.Sprintf("experiment: warm key not serializable: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// snapMemo singleflights warm-checkpoint construction across the worker
// pool: the first worker to need a key builds it, the rest block on the
// entry's once and share the blob.
type snapMemo struct {
	mu sync.Mutex
	m  map[string]*snapEntry
}

type snapEntry struct {
	once sync.Once
	blob []byte
	err  error
}

func newSnapMemo() *snapMemo {
	return &snapMemo{m: make(map[string]*snapEntry)}
}

// snapshotFor returns the warm checkpoint for key, building it at most
// once per sweep and routing through SnapshotSource (the cross-sweep
// cache) when one is installed.
func (s *Sweep) snapshotFor(key string, build func() ([]byte, error)) ([]byte, error) {
	wrapped := build
	if s.SnapshotSource != nil {
		wrapped = func() ([]byte, error) { return s.SnapshotSource(key, build) }
	}
	m := s.snap
	if m == nil {
		// Direct ExecuteCell call outside RunCells: correct, just unmemoized.
		return wrapped()
	}
	m.mu.Lock()
	e := m.m[key]
	if e == nil {
		e = &snapEntry{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.blob, e.err = wrapped() })
	return e.blob, e.err
}

// runWarmFork executes one cell in a warm-fork mode. Both modes build the
// measuring simulator from identical options (canonical policy, group
// seed); they differ only in how it reaches the warmed state — rerun
// simulates the warm-up, fork restores the group checkpoint — after which
// both switch to the cell's policy and measure.
func runWarmFork(s *Sweep, c Cell) Result {
	r := Result{
		Workload: c.Workload,
		Engine:   c.Engine.String(),
		Policy:   c.Policy.String(),
		Seed:     c.Seed,
	}
	fail := func(err error) Result {
		r.Error = err.Error()
		return r
	}
	sample, err := smtfetch.ParseSample(s.Sample)
	if err != nil {
		return fail(err)
	}
	canon := canonicalCell(c)
	opts := smtfetch.Options{
		Workload:      c.Workload,
		Engine:        c.Engine,
		Policy:        canon.Policy,
		Seed:          CellSeed(canon),
		WarmupInstrs:  s.WarmupInstrs,
		WarmupCycles:  s.WarmupCycles,
		MeasureInstrs: s.MeasureInstrs,
		MaxCycles:     s.MaxCycles,
		Machine:       s.Machine,
		Sample:        sample,
	}
	sim, err := smtfetch.New(opts)
	if err != nil {
		return fail(err)
	}
	switch s.WarmFork {
	case WarmForkRerun:
		sim.Warm()
	case WarmForkFork:
		blob, err := s.snapshotFor(s.WarmKey(c), func() ([]byte, error) {
			warm, err := smtfetch.New(opts)
			if err != nil {
				return nil, err
			}
			warm.Warm()
			return warm.Core().Snapshot()
		})
		if err != nil {
			return fail(fmt.Errorf("warm checkpoint: %w", err))
		}
		if err := sim.Core().Restore(blob); err != nil {
			return fail(fmt.Errorf("warm checkpoint restore: %w", err))
		}
	default:
		return fail(fmt.Errorf("experiment: unknown warm-fork mode %q", s.WarmFork))
	}
	if err := sim.Core().SetPolicy(c.Policy); err != nil {
		return fail(err)
	}
	res, err := sim.Measure()
	if err != nil {
		return fail(err)
	}
	fillResult(&r, res)
	return r
}
