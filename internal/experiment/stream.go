package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// ResultStream writes a results document incrementally, producing bytes
// identical to WriteJSON over the same results without ever holding more
// than one Result. It exists for the cluster coordinator, which merges
// worker results into the response document as they arrive: the grid can
// be arbitrarily large, but the coordinator only buffers the out-of-order
// window, not the whole result set.
//
// Results must be written in canonical order (SortResults order); Write
// rejects out-of-order results rather than silently emitting a document
// that would no longer match a local sweep byte-for-byte.
type ResultStream struct {
	w       io.Writer
	n       int
	err     error
	closed  bool
	lastKey string
	last    Result // key fields only; Stats is dropped so it can be freed
}

// NewResultStream starts a results document on w. The envelope opens on
// the first Write (or at Close for an empty stream), so construction
// itself writes nothing.
func NewResultStream(w io.Writer) *ResultStream {
	return &ResultStream{w: w}
}

// header is everything WriteJSON emits before the first array element.
const streamHeader = "{\n  \"schema_version\": " // + version + header tail
const streamArrayOpen = ",\n  \"results\": [\n"

// Write appends one result to the document. Results must arrive in
// SortResults order.
func (s *ResultStream) Write(r Result) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return s.fail(fmt.Errorf("experiment: ResultStream: write after Close"))
	}
	if s.n > 0 {
		prev := s.last
		if !lessResult(prev, r) {
			return s.fail(fmt.Errorf("experiment: ResultStream: result %s out of order after %s", r.Key(), s.lastKey))
		}
	}
	if s.n == 0 {
		if err := s.writeString(fmt.Sprintf("%s%d%s", streamHeader, SchemaVersion, streamArrayOpen)); err != nil {
			return err
		}
	} else {
		if err := s.writeString(",\n"); err != nil {
			return err
		}
	}
	// Elements sit two indent levels deep; MarshalIndent prefixes every
	// line but the first, which gets the explicit "    " below. This is
	// exactly what json.Encoder produces for a nested array element, so
	// the assembled document matches WriteJSON byte-for-byte (pinned by
	// TestResultStreamMatchesWriteJSON).
	blob, err := json.MarshalIndent(r, "    ", "  ")
	if err != nil {
		return s.fail(err)
	}
	if err := s.writeString("    "); err != nil {
		return err
	}
	if _, err := s.w.Write(blob); err != nil {
		return s.fail(err)
	}
	s.n++
	s.lastKey = r.Key()
	r.Stats = nil // keep only the ordering fields alive
	s.last = r
	return nil
}

// Close terminates the document. A stream with zero writes produces the
// same bytes as WriteJSON over an empty (non-nil) result slice.
func (s *ResultStream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	if s.n == 0 {
		return s.writeString(fmt.Sprintf("%s%d,\n  \"results\": []\n}\n", streamHeader, SchemaVersion))
	}
	return s.writeString("\n  ]\n}\n")
}

// Count reports how many results have been written.
func (s *ResultStream) Count() int { return s.n }

func (s *ResultStream) writeString(str string) error {
	if _, err := io.WriteString(s.w, str); err != nil {
		return s.fail(err)
	}
	return nil
}

// fail latches the first error; every later call returns it.
func (s *ResultStream) fail(err error) error {
	if s.err == nil {
		s.err = err
	}
	return s.err
}
