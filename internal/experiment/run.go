package experiment

import (
	"smtfetch"
)

// runner executes a single cell. It is a package variable so tests can
// substitute a fast fake simulator when exercising pool mechanics; real
// sweeps always go through the public smtfetch API.
var runner = func(s *Sweep, c Cell) Result {
	if s.WarmFork != WarmForkOff {
		return runWarmFork(s, c)
	}
	r := Result{
		Workload: c.Workload,
		Engine:   c.Engine.String(),
		Policy:   c.Policy.String(),
		Seed:     c.Seed,
	}
	sample, err := smtfetch.ParseSample(s.Sample)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	res, err := smtfetch.Run(smtfetch.Options{
		Workload:      c.Workload,
		Engine:        c.Engine,
		Policy:        c.Policy,
		Seed:          CellSeed(c),
		WarmupInstrs:  s.WarmupInstrs,
		WarmupCycles:  s.WarmupCycles,
		MeasureInstrs: s.MeasureInstrs,
		MaxCycles:     s.MaxCycles,
		Machine:       s.Machine,
		Sample:        sample,
	})
	if err != nil {
		r.Error = err.Error()
		return r
	}
	fillResult(&r, res)
	return r
}

// fillResult copies a simulator result into a sweep cell result.
func fillResult(r *Result, res *smtfetch.Result) {
	snap := res.Stats.Snapshot()
	r.IPC = res.IPC
	r.IPFC = res.IPFC
	r.CondAccuracy = res.CondAccuracy
	r.Stats = &snap
	r.SampleIntervals = res.SampleIntervals
	r.IPCCI95 = res.IPCCI95
}
