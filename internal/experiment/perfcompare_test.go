package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func perfCell(w, e, p string, kcyc, allocs float64, cycles, committed uint64) PerfCell {
	return PerfCell{
		Workload: w, Engine: e, Policy: p,
		KiloCyclesPerSec: kcyc, AllocsPerCycle: allocs,
		Cycles: cycles, Committed: committed,
	}
}

func perfReport(cells ...PerfCell) *PerfReport {
	return &PerfReport{
		SchemaVersion: PerfSchemaVersion,
		WarmupInstrs:  50_000,
		MeasureInstrs: 300_000,
		Cells:         cells,
	}
}

// TestPerfCompareFlagsRegressions checks the three failure axes separately:
// throughput drop, allocation increase, and simulated-behavior shift.
func TestPerfCompareFlagsRegressions(t *testing.T) {
	old := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 5000, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 1000, 0, 6000, 10000),
		perfCell("8_MIX", "stream", "ICOUNT.1.8", 1000, 0, 7000, 10000),
	)

	// Same behavior, same allocs, 10% slower: inside a 25% tolerance.
	ok := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 900, 0, 5000, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 900, 0, 6000, 10000),
		perfCell("8_MIX", "stream", "ICOUNT.1.8", 900, 0, 7000, 10000),
	)
	rep := PerfCompare(old, ok, 0.25, 0.01)
	if rep.Regressions != 0 || rep.BehaviorShifts != 0 || rep.Err() != nil {
		t.Fatalf("in-tolerance comparison flagged: %+v", rep)
	}

	// 50% slower on one cell.
	slow := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 500, 0, 5000, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 1000, 0, 6000, 10000),
		perfCell("8_MIX", "stream", "ICOUNT.1.8", 1000, 0, 7000, 10000),
	)
	rep = PerfCompare(old, slow, 0.25, 0.01)
	if rep.Regressions != 1 || rep.Err() == nil {
		t.Fatalf("50%% throughput drop not flagged: %+v", rep)
	}
	if !rep.Deltas[0].ThroughputRegression {
		t.Fatalf("wrong cell flagged: %+v", rep.Deltas)
	}

	// Allocation creep beyond the absolute tolerance.
	leaky := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0.5, 5000, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 1000, 0, 6000, 10000),
		perfCell("8_MIX", "stream", "ICOUNT.1.8", 1000, 0, 7000, 10000),
	)
	rep = PerfCompare(old, leaky, 0.25, 0.01)
	if rep.Regressions != 1 || !rep.Deltas[0].AllocRegression {
		t.Fatalf("alloc regression not flagged: %+v", rep)
	}

	// Shifted cycle count = changed simulated behavior.
	shifted := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 5001, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 1000, 0, 6000, 10000),
		perfCell("8_MIX", "stream", "ICOUNT.1.8", 1000, 0, 7000, 10000),
	)
	rep = PerfCompare(old, shifted, 0.25, 0.01)
	if rep.BehaviorShifts != 1 || rep.Err() == nil {
		t.Fatalf("behavior shift not flagged: %+v", rep)
	}
	if !strings.Contains(rep.Err().Error(), "behavior") {
		t.Fatalf("behavior shift error unclear: %v", rep.Err())
	}
}

// TestPerfCompareSkipsBehaviorAcrossBudgets: quick-mode CI reports measure
// fewer instructions than the checked-in baseline, so cycle counts
// legitimately differ and must not be flagged.
func TestPerfCompareSkipsBehaviorAcrossBudgets(t *testing.T) {
	old := perfReport(perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 5000, 10000))
	quick := &PerfReport{
		SchemaVersion: PerfSchemaVersion,
		WarmupInstrs:  10_000,
		MeasureInstrs: 50_000,
		Cells:         []PerfCell{perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 900, 2000)},
	}
	rep := PerfCompare(old, quick, 0.25, 0.01)
	if rep.BehaviorShifts != 0 || rep.Err() != nil {
		t.Fatalf("cross-budget behavior comparison flagged: %+v", rep)
	}
}

// TestPerfCompareMissingCells checks that asymmetric grids are reported as
// missing, never as regressions, on both sides.
func TestPerfCompareMissingCells(t *testing.T) {
	old := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 5000, 10000),
		perfCell("4_MIX", "stream", "ICOUNT.1.8", 1000, 0, 6000, 10000),
	)
	new := perfReport(
		perfCell("2_MIX", "stream", "ICOUNT.1.8", 1000, 0, 5000, 10000),
		perfCell("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1000, 0, 4000, 10000),
	)
	rep := PerfCompare(old, new, 0.25, 0.01)
	if rep.Missing != 2 || rep.Regressions != 0 || rep.Err() != nil {
		t.Fatalf("missing cells mishandled: %+v", rep)
	}
}

// TestPerfCompareRoundTrip writes a report, reads it back, and compares it
// against itself: zero regressions, zero shifts, and a rendered table.
func TestPerfCompareRoundTrip(t *testing.T) {
	rep := perfReport(perfCell("2_MIX", "stream", "ICOUNT.1.8", 1234, 0.125, 5000, 10000))
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePerfJSON(f, rep); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadPerfJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cmp := PerfCompare(rep, back, 0, 0)
	if cmp.Regressions != 0 || cmp.BehaviorShifts != 0 || cmp.Missing != 0 {
		t.Fatalf("self-comparison not clean: %+v", cmp)
	}
	if s := cmp.String(); !strings.Contains(s, "2_MIX/stream/ICOUNT.1.8") || !strings.Contains(s, "0 regressions") {
		t.Fatalf("comparison table malformed:\n%s", s)
	}
}

// TestReadPerfJSONFileRejectsBadSchema guards the version gate.
func TestReadPerfJSONFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPerfJSONFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("bad schema accepted: %v", err)
	}
}
