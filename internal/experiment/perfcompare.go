package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// PerfDelta compares one cell of two perf-bench reports.
type PerfDelta struct {
	Key string `json:"key"`

	OldKCycPerSec float64 `json:"old_kcyc_per_sec"`
	NewKCycPerSec float64 `json:"new_kcyc_per_sec"`
	// ThroughputChange is (new-old)/old kilo-cycles/sec; nil when the old
	// rate is zero.
	ThroughputChange *float64 `json:"throughput_change,omitempty"`

	OldAllocsPerCycle float64 `json:"old_allocs_per_cycle"`
	NewAllocsPerCycle float64 `json:"new_allocs_per_cycle"`

	// ThroughputRegression / AllocRegression flag drops beyond the
	// comparison tolerances.
	ThroughputRegression bool `json:"throughput_regression"`
	AllocRegression      bool `json:"alloc_regression"`
	// BehaviorShift marks cells whose simulated cycle or commit counts
	// differ between the reports: a perf-only change must keep them
	// bit-identical. Only checked when both reports measured the same
	// instruction budget.
	BehaviorShift bool `json:"behavior_shift"`
	// MissingIn is "old" or "new" when the cell exists on only one side.
	MissingIn string `json:"missing_in,omitempty"`
}

// PerfCompareReport aggregates a perf-bench comparison: the simulator-speed
// regression gate. CI regenerates a report per PR and fails when the new
// report is slower, allocates more, or simulates different behavior than
// the checked-in baseline.
type PerfCompareReport struct {
	ThroughputTol  float64     `json:"throughput_tol"`
	AllocTol       float64     `json:"alloc_tol"`
	Deltas         []PerfDelta `json:"deltas"`
	Regressions    int         `json:"regressions"`
	BehaviorShifts int         `json:"behavior_shifts"`
	Missing        int         `json:"missing"`
}

// Err returns a non-nil error when the comparison should fail a gate.
func (rep *PerfCompareReport) Err() error {
	switch {
	case rep.BehaviorShifts > 0:
		return fmt.Errorf("%d cells changed simulated behavior (cycle/commit counts shifted); regenerate the baseline if intentional", rep.BehaviorShifts)
	case rep.Regressions > 0:
		return fmt.Errorf("%d perf regressions beyond tolerance (throughput -%.0f%%, allocs +%.3f/cycle)",
			rep.Regressions, 100*rep.ThroughputTol, rep.AllocTol)
	}
	return nil
}

// PerfCompare matches the cells of two perf reports by (workload, engine,
// policy) and flags throughput drops beyond throughputTol (relative:
// 0.25 tolerates a 25% drop — wall-clock rates are machine-dependent, so
// the tolerance is deliberately loose), allocation increases beyond
// allocTol (absolute allocs/cycle — allocation counts are deterministic,
// so the tolerance is tight), and any shift in simulated behavior.
func PerfCompare(old, new *PerfReport, throughputTol, allocTol float64) PerfCompareReport {
	if throughputTol < 0 {
		throughputTol = 0
	}
	if allocTol < 0 {
		allocTol = 0
	}
	// Behavior comparison is meaningful only for equal measurement budgets.
	sameBudget := old.WarmupInstrs == new.WarmupInstrs && old.MeasureInstrs == new.MeasureInstrs

	key := func(c PerfCell) string { return c.Workload + "/" + c.Engine + "/" + c.Policy }
	oldByKey := make(map[string]PerfCell, len(old.Cells))
	for _, c := range old.Cells {
		oldByKey[key(c)] = c
	}
	rep := PerfCompareReport{ThroughputTol: throughputTol, AllocTol: allocTol}
	seen := make(map[string]bool, len(new.Cells))
	for _, n := range new.Cells {
		k := key(n)
		seen[k] = true
		o, inOld := oldByKey[k]
		d := PerfDelta{
			Key:               k,
			NewKCycPerSec:     n.KiloCyclesPerSec,
			NewAllocsPerCycle: n.AllocsPerCycle,
		}
		if !inOld {
			d.MissingIn = "old"
			rep.Missing++
			rep.Deltas = append(rep.Deltas, d)
			continue
		}
		d.OldKCycPerSec = o.KiloCyclesPerSec
		d.OldAllocsPerCycle = o.AllocsPerCycle
		if o.KiloCyclesPerSec > 0 {
			tc := (n.KiloCyclesPerSec - o.KiloCyclesPerSec) / o.KiloCyclesPerSec
			d.ThroughputChange = &tc
		}
		if n.KiloCyclesPerSec < o.KiloCyclesPerSec*(1-throughputTol) {
			d.ThroughputRegression = true
		}
		if n.AllocsPerCycle > o.AllocsPerCycle+allocTol {
			d.AllocRegression = true
		}
		if sameBudget && (n.Cycles != o.Cycles || n.Committed != o.Committed) {
			d.BehaviorShift = true
			rep.BehaviorShifts++
		}
		if d.ThroughputRegression || d.AllocRegression {
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, o := range old.Cells {
		if k := key(o); !seen[k] {
			rep.Missing++
			rep.Deltas = append(rep.Deltas, PerfDelta{
				Key:               k,
				OldKCycPerSec:     o.KiloCyclesPerSec,
				OldAllocsPerCycle: o.AllocsPerCycle,
				MissingIn:         "new",
			})
		}
	}
	return rep
}

// String renders the comparison as an aligned table plus a verdict line.
func (rep PerfCompareReport) String() string {
	rows := [][]string{{"CELL", "OLD.KCYC/S", "NEW.KCYC/S", "CHANGE", "OLD.ALLOC", "NEW.ALLOC", "FLAG"}}
	for _, d := range rep.Deltas {
		change := "n/a"
		if d.ThroughputChange != nil {
			change = fmt.Sprintf("%+.1f%%", 100**d.ThroughputChange)
		}
		var flags []string
		if d.MissingIn != "" {
			flags = append(flags, "missing in "+d.MissingIn)
		}
		if d.ThroughputRegression {
			flags = append(flags, "SLOWER")
		}
		if d.AllocRegression {
			flags = append(flags, "ALLOCS")
		}
		if d.BehaviorShift {
			flags = append(flags, "BEHAVIOR SHIFT")
		}
		rows = append(rows, []string{
			d.Key,
			fmt.Sprintf("%.0f", d.OldKCycPerSec),
			fmt.Sprintf("%.0f", d.NewKCycPerSec),
			change,
			fmt.Sprintf("%.3f", d.OldAllocsPerCycle),
			fmt.Sprintf("%.3f", d.NewAllocsPerCycle),
			strings.Join(flags, ", "),
		})
	}
	var b strings.Builder
	b.WriteString(renderAligned(rows))
	fmt.Fprintf(&b, "%d cells compared, %d regressions, %d behavior shifts, %d missing (tol: throughput -%.0f%%, allocs +%.3f/cycle)\n",
		len(rep.Deltas), rep.Regressions, rep.BehaviorShifts, rep.Missing, 100*rep.ThroughputTol, rep.AllocTol)
	return b.String()
}

// ReadPerfJSONFile reads a perf-bench report written by WritePerfJSON.
func ReadPerfJSONFile(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("experiment: parsing %s: %w", path, err)
	}
	if rep.SchemaVersion != PerfSchemaVersion {
		return nil, fmt.Errorf("experiment: %s has perf schema version %d, this build understands %d",
			path, rep.SchemaVersion, PerfSchemaVersion)
	}
	return &rep, nil
}
