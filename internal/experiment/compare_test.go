package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func res(workload, engine, policy string, seed uint64, ipc float64) Result {
	return Result{Workload: workload, Engine: engine, Policy: policy, Seed: seed, IPC: ipc}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.00),
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 2.00),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.80), // -6.7%: regression at 2%
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 1.97), // -1.5%: inside tolerance
	}
	rep := Compare(old, new_, 0.02)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", rep.Regressions)
	}
	if !rep.Deltas[0].Regression || rep.Deltas[1].Regression {
		t.Fatalf("wrong cell flagged: %+v", rep.Deltas)
	}
	if rc := rep.Deltas[0].RelChange; rc == nil || math.Abs(*rc-(-0.2/3.0)) > 1e-12 {
		t.Fatalf("RelChange = %v", rc)
	}
}

func TestCompareImprovementNotFlagged(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.00)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.50)}
	rep := Compare(old, new_, 0.02)
	if rep.Regressions != 0 {
		t.Fatalf("improvement flagged as regression: %+v", rep.Deltas)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.00)}
	// Exactly at the boundary: new == old*(1-tol) is NOT a regression
	// (strict less-than), so gates don't flap on exact-equal baselines.
	exact := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.98)}
	if rep := Compare(old, exact, 0.02); rep.Regressions != 0 {
		t.Fatal("boundary value flagged")
	}
	below := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.9799)}
	if rep := Compare(old, below, 0.02); rep.Regressions != 1 {
		t.Fatal("below-boundary value not flagged")
	}
	// Negative tolerance is clamped to exact matching.
	if rep := Compare(old, []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.999)}, -1); rep.Regressions != 1 {
		t.Fatal("negative tolerance did not clamp to 0")
	}
}

func TestCompareMissingCells(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.0),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
	}
	rep := Compare(old, new_, 0.02)
	if rep.Missing != 2 {
		t.Fatalf("Missing = %d, want 2", rep.Missing)
	}
	if rep.Regressions != 0 {
		t.Fatal("missing cells counted as regressions")
	}
	var inOld, inNew int
	for _, d := range rep.Deltas {
		switch d.MissingIn {
		case "old":
			inOld++
		case "new":
			inNew++
		}
	}
	if inOld != 1 || inNew != 1 {
		t.Fatalf("missing split old=%d new=%d, want 1/1", inOld, inNew)
	}
}

func TestCompareZeroOldIPC(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)}
	rep := Compare(old, new_, 0.02)
	if rep.Deltas[0].RelChange != nil {
		t.Fatalf("RelChange for zero baseline = %v, want nil", *rep.Deltas[0].RelChange)
	}
	if rep.Regressions != 0 {
		t.Fatal("zero baseline flagged as regression")
	}
	// A report with a zero-baseline cell must still marshal.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report with zero-baseline cell does not marshal: %v", err)
	}
	if strings.Contains(Compare(old, new_, 0.02).String(), "NaN") {
		t.Fatal("report renders NaN")
	}
}

func TestReportString(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)}
	out := Compare(old, new_, 0.02).String()
	for _, frag := range []string{"REGRESSION", "1 regressions", "2_MIX/stream/ICOUNT.1.8/1", "-33.33%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}
