package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func res(workload, engine, policy string, seed uint64, ipc float64) Result {
	return Result{Workload: workload, Engine: engine, Policy: policy, Seed: seed, IPC: ipc}
}

// mustCompare wraps Compare for the tests whose inputs are duplicate-free.
func mustCompare(t *testing.T, old, new []Result, tol float64) Report {
	t.Helper()
	rep, err := Compare(old, new, tol)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	return rep
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.00),
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 2.00),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.80), // -6.7%: regression at 2%
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 1.97), // -1.5%: inside tolerance
	}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", rep.Regressions)
	}
	if !rep.Deltas[0].Regression || rep.Deltas[1].Regression {
		t.Fatalf("wrong cell flagged: %+v", rep.Deltas)
	}
	if rc := rep.Deltas[0].RelChange; rc == nil || math.Abs(*rc-(-0.2/3.0)) > 1e-12 {
		t.Fatalf("RelChange = %v", rc)
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite a regression")
	}
}

func TestCompareImprovementNotFlagged(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.00)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.50)}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Regressions != 0 {
		t.Fatalf("improvement flagged as regression: %+v", rep.Deltas)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v on a clean report", rep.Err())
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.00)}
	// Exactly at the boundary: new == old*(1-tol) is NOT a regression
	// (strict less-than), so gates don't flap on exact-equal baselines.
	exact := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.98)}
	if rep := mustCompare(t, old, exact, 0.02); rep.Regressions != 0 {
		t.Fatal("boundary value flagged")
	}
	below := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.9799)}
	if rep := mustCompare(t, old, below, 0.02); rep.Regressions != 1 {
		t.Fatal("below-boundary value not flagged")
	}
	// Negative tolerance is clamped to exact matching.
	if rep := mustCompare(t, old, []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.999)}, -1); rep.Regressions != 1 {
		t.Fatal("negative tolerance did not clamp to 0")
	}
}

func TestCompareMissingCells(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.0),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
	}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Missing != 2 {
		t.Fatalf("Missing = %d, want 2", rep.Missing)
	}
	if rep.Regressions != 0 {
		t.Fatal("missing cells counted as regressions")
	}
	var inOld, inNew int
	for _, d := range rep.Deltas {
		switch d.MissingIn {
		case "old":
			inOld++
		case "new":
			inNew++
		}
	}
	if inOld != 1 || inNew != 1 {
		t.Fatalf("missing split old=%d new=%d, want 1/1", inOld, inNew)
	}
}

func TestCompareZeroOldIPC(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Deltas[0].RelChange != nil {
		t.Fatalf("RelChange for zero baseline = %v, want nil", *rep.Deltas[0].RelChange)
	}
	if rep.Regressions != 0 {
		t.Fatal("zero baseline flagged as regression")
	}
	// A report with a zero-baseline cell must still marshal.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report with zero-baseline cell does not marshal: %v", err)
	}
	if strings.Contains(mustCompare(t, old, new_, 0.02).String(), "NaN") {
		t.Fatal("report renders NaN")
	}
}

// Regression test for the error-masking bug: a Result with Error != ""
// carries IPC 0, and pre-fix Compare treated that 0 as a real value — an
// error on the old side let any new value pass the gate, and an error on
// the new side showed up as a generic REGRESSION with no failure message.
func TestCompareErrorCells(t *testing.T) {
	okCell := res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)
	errCell := okCell
	errCell.IPC = 0
	errCell.Error = "synthetic failure"

	// ok -> error must fail the gate and surface the message.
	rep := mustCompare(t, []Result{okCell}, []Result{errCell}, 0.02)
	if rep.Errored != 1 || !rep.Deltas[0].Errored {
		t.Fatalf("ok->error not counted: %+v", rep)
	}
	if rep.Deltas[0].NewError != "synthetic failure" {
		t.Fatalf("NewError = %q", rep.Deltas[0].NewError)
	}
	if rep.Deltas[0].Regression || rep.Regressions != 0 {
		t.Fatal("error cell double-counted as an IPC regression")
	}
	if rep.Deltas[0].RelChange != nil {
		t.Fatal("error cell got a RelChange from its IPC-0 marker")
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "errored") {
		t.Fatalf("Err() = %v, want errored verdict", err)
	}
	if s := rep.String(); !strings.Contains(s, "ERROR(new): synthetic failure") {
		t.Fatalf("report does not surface the new-side error:\n%s", s)
	}

	// error -> ok is a recovery, not a gate failure — and crucially the
	// old side's IPC 0 must not be compared against the new value.
	rep = mustCompare(t, []Result{errCell}, []Result{okCell}, 0.02)
	if rep.Errored != 0 || rep.Regressions != 0 {
		t.Fatalf("error->ok flagged: %+v", rep)
	}
	if rep.Deltas[0].OldError != "synthetic failure" {
		t.Fatalf("OldError = %q", rep.Deltas[0].OldError)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v for a recovery", rep.Err())
	}

	// error -> error stays visible but does not fail the gate.
	rep = mustCompare(t, []Result{errCell}, []Result{errCell}, 0.02)
	if rep.Errored != 0 || rep.Err() != nil {
		t.Fatalf("error->error failed the gate: %+v", rep)
	}
	if rep.Deltas[0].OldError == "" || rep.Deltas[0].NewError == "" {
		t.Fatal("error->error cell lost its messages")
	}
}

// Regression test for silent duplicate collapse: two entries for the same
// cell used to be merged last-one-wins by the keying maps.
func TestCompareDuplicateKeys(t *testing.T) {
	a := res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)
	b := a
	b.IPC = 2.0
	ok := []Result{res("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.0)}

	if _, err := Compare([]Result{a, b}, ok, 0.02); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate in old not rejected: %v", err)
	}
	if _, err := Compare(ok, []Result{a, b}, 0.02); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate in new not rejected: %v", err)
	}
}

func TestReadJSONRejectsDuplicateKeys(t *testing.T) {
	a := res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)
	b := a
	b.IPC = 2.0
	blob, err := MarshalJSONResults([]Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(strings.NewReader(string(blob))); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("ReadJSON accepted duplicate keys: %v", err)
	}
}

func TestReportString(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)}
	out := mustCompare(t, old, new_, 0.02).String()
	for _, frag := range []string{"REGRESSION", "1 regressions", "2_MIX/stream/ICOUNT.1.8/1", "-33.33%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}
