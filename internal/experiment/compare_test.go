package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func res(workload, engine, policy string, seed uint64, ipc float64) Result {
	return Result{Workload: workload, Engine: engine, Policy: policy, Seed: seed, IPC: ipc}
}

// mustCompare wraps Compare for the tests whose inputs are duplicate-free.
func mustCompare(t *testing.T, old, new []Result, tol float64) Report {
	t.Helper()
	rep, err := Compare(old, new, tol)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	return rep
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.00),
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 2.00),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.80), // -6.7%: regression at 2%
		res("2_MIX", "stream", "ICOUNT.2.8", 1, 1.97), // -1.5%: inside tolerance
	}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", rep.Regressions)
	}
	if !rep.Deltas[0].Regression || rep.Deltas[1].Regression {
		t.Fatalf("wrong cell flagged: %+v", rep.Deltas)
	}
	if rc := rep.Deltas[0].RelChange; rc == nil || math.Abs(*rc-(-0.2/3.0)) > 1e-12 {
		t.Fatalf("RelChange = %v", rc)
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite a regression")
	}
}

func TestCompareImprovementNotFlagged(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.00)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.50)}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Regressions != 0 {
		t.Fatalf("improvement flagged as regression: %+v", rep.Deltas)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v on a clean report", rep.Err())
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.00)}
	// Exactly at the boundary: new == old*(1-tol) is NOT a regression
	// (strict less-than), so gates don't flap on exact-equal baselines.
	exact := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.98)}
	if rep := mustCompare(t, old, exact, 0.02); rep.Regressions != 0 {
		t.Fatal("boundary value flagged")
	}
	below := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.9799)}
	if rep := mustCompare(t, old, below, 0.02); rep.Regressions != 1 {
		t.Fatal("below-boundary value not flagged")
	}
	// Negative tolerance is clamped to exact matching.
	if rep := mustCompare(t, old, []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0.999)}, -1); rep.Regressions != 1 {
		t.Fatal("negative tolerance did not clamp to 0")
	}
}

func TestCompareMissingCells(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.0),
	}
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
		res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.0),
	}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Missing != 2 {
		t.Fatalf("Missing = %d, want 2", rep.Missing)
	}
	if rep.Regressions != 0 {
		t.Fatal("missing cells counted as regressions")
	}
	var inOld, inNew int
	for _, d := range rep.Deltas {
		switch d.MissingIn {
		case "old":
			inOld++
		case "new":
			inNew++
		}
	}
	if inOld != 1 || inNew != 1 {
		t.Fatalf("missing split old=%d new=%d, want 1/1", inOld, inNew)
	}
}

func TestCompareZeroOldIPC(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)}
	rep := mustCompare(t, old, new_, 0.02)
	if rep.Deltas[0].RelChange != nil {
		t.Fatalf("RelChange for zero baseline = %v, want nil", *rep.Deltas[0].RelChange)
	}
	if rep.Regressions != 0 {
		t.Fatal("zero baseline flagged as regression")
	}
	// A report with a zero-baseline cell must still marshal.
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report with zero-baseline cell does not marshal: %v", err)
	}
	if strings.Contains(mustCompare(t, old, new_, 0.02).String(), "NaN") {
		t.Fatal("report renders NaN")
	}
}

// Regression test for the error-masking bug: a Result with Error != ""
// carries IPC 0, and pre-fix Compare treated that 0 as a real value — an
// error on the old side let any new value pass the gate, and an error on
// the new side showed up as a generic REGRESSION with no failure message.
func TestCompareErrorCells(t *testing.T) {
	okCell := res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)
	errCell := okCell
	errCell.IPC = 0
	errCell.Error = "synthetic failure"

	// ok -> error must fail the gate and surface the message.
	rep := mustCompare(t, []Result{okCell}, []Result{errCell}, 0.02)
	if rep.Errored != 1 || !rep.Deltas[0].Errored {
		t.Fatalf("ok->error not counted: %+v", rep)
	}
	if rep.Deltas[0].NewError != "synthetic failure" {
		t.Fatalf("NewError = %q", rep.Deltas[0].NewError)
	}
	if rep.Deltas[0].Regression || rep.Regressions != 0 {
		t.Fatal("error cell double-counted as an IPC regression")
	}
	if rep.Deltas[0].RelChange != nil {
		t.Fatal("error cell got a RelChange from its IPC-0 marker")
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "errored") {
		t.Fatalf("Err() = %v, want errored verdict", err)
	}
	if s := rep.String(); !strings.Contains(s, "ERROR(new): synthetic failure") {
		t.Fatalf("report does not surface the new-side error:\n%s", s)
	}

	// error -> ok is a recovery, not a gate failure — and crucially the
	// old side's IPC 0 must not be compared against the new value.
	rep = mustCompare(t, []Result{errCell}, []Result{okCell}, 0.02)
	if rep.Errored != 0 || rep.Regressions != 0 {
		t.Fatalf("error->ok flagged: %+v", rep)
	}
	if rep.Deltas[0].OldError != "synthetic failure" {
		t.Fatalf("OldError = %q", rep.Deltas[0].OldError)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v for a recovery", rep.Err())
	}

	// error -> error stays visible but does not fail the gate.
	rep = mustCompare(t, []Result{errCell}, []Result{errCell}, 0.02)
	if rep.Errored != 0 || rep.Err() != nil {
		t.Fatalf("error->error failed the gate: %+v", rep)
	}
	if rep.Deltas[0].OldError == "" || rep.Deltas[0].NewError == "" {
		t.Fatal("error->error cell lost its messages")
	}
}

// Regression test for silent duplicate collapse: two entries for the same
// cell used to be merged last-one-wins by the keying maps.
func TestCompareDuplicateKeys(t *testing.T) {
	a := res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)
	b := a
	b.IPC = 2.0
	ok := []Result{res("2_MIX", "gshare+BTB", "ICOUNT.1.8", 1, 1.0)}

	if _, err := Compare([]Result{a, b}, ok, 0.02); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate in old not rejected: %v", err)
	}
	if _, err := Compare(ok, []Result{a, b}, 0.02); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("duplicate in new not rejected: %v", err)
	}
}

func TestReadJSONRejectsDuplicateKeys(t *testing.T) {
	a := res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)
	b := a
	b.IPC = 2.0
	blob, err := MarshalJSONResults([]Result{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(strings.NewReader(string(blob))); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("ReadJSON accepted duplicate keys: %v", err)
	}
}

// seeded builds one cell-group's results across a seed list.
func seeded(workload, engine, policy string, ipcs ...float64) []Result {
	rs := make([]Result, len(ipcs))
	for i, ipc := range ipcs {
		rs[i] = res(workload, engine, policy, uint64(i+1), ipc)
	}
	return rs
}

// Two 3-seed runs of the same configuration whose means differ inside the
// seed noise must pass: the CI-overlap gate exists precisely so replication
// noise stops failing builds.
func TestCompareCIOverlapToleratesNoise(t *testing.T) {
	old := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90)  // mean 2.00, CI ±0.248
	new_ := seeded("2_MIX", "stream", "ICOUNT.1.8", 1.95, 2.05, 2.15) // mean 2.05, overlapping
	rep := mustCompare(t, old, new_, 0.001)
	if len(rep.Groups) != 1 {
		t.Fatalf("Groups = %+v, want 1 group", rep.Groups)
	}
	g := rep.Groups[0]
	if g.Key != "2_MIX/stream/ICOUNT.1.8" {
		t.Fatalf("group key = %q", g.Key)
	}
	if g.OldIPC.N != 3 || g.NewIPC.N != 3 {
		t.Fatalf("group Ns = %d/%d", g.OldIPC.N, g.NewIPC.N)
	}
	if g.Regression || rep.GroupRegressions != 0 {
		t.Fatalf("noise flagged as regression: %+v", g)
	}
	// The ok replications are absorbed into the group — no per-cell
	// deltas, no scalar regressions even at a tolerance the per-seed
	// noise would blow through.
	if len(rep.Deltas) != 0 || rep.Regressions != 0 || rep.Missing != 0 {
		t.Fatalf("per-cell leakage: %+v", rep)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

// An injected true IPC drop — new mean below the old CI with
// non-overlapping intervals — must fail the gate.
func TestCompareCIOverlapFlagsTrueDrop(t *testing.T) {
	old := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90)  // CI [1.752, 2.248]
	new_ := seeded("2_MIX", "stream", "ICOUNT.1.8", 1.00, 1.02, 0.98) // CI [0.950, 1.050]
	rep := mustCompare(t, old, new_, 0.001)
	if rep.GroupRegressions != 1 || !rep.Groups[0].Regression {
		t.Fatalf("true drop not flagged: %+v", rep.Groups)
	}
	if rc := rep.Groups[0].RelChange; rc == nil || math.Abs(*rc-(-0.5)) > 1e-9 {
		t.Fatalf("RelChange = %v, want -0.5", rc)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "CI overlap") {
		t.Fatalf("Err() = %v, want CI-overlap verdict", err)
	}
	if s := rep.String(); !strings.Contains(s, "REGRESSION") || !strings.Contains(s, "OLD.CI95") {
		t.Fatalf("report missing group table:\n%s", s)
	}

	// The same magnitude upward is an improvement, not a regression: the
	// gate is one-sided, like the scalar-tolerance gate.
	rep = mustCompare(t, new_, old, 0.001)
	if rep.GroupRegressions != 0 {
		t.Fatalf("improvement flagged: %+v", rep.Groups)
	}
}

// Zero-variance replications give point intervals: any true drop is
// resolvable, and identical results are never flagged.
func TestCompareCIOverlapZeroVariance(t *testing.T) {
	same := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.0, 2.0, 2.0)
	if rep := mustCompare(t, same, same, 0); rep.GroupRegressions != 0 || rep.Err() != nil {
		t.Fatalf("self-compare failed: %+v", rep)
	}
	lower := seeded("2_MIX", "stream", "ICOUNT.1.8", 1.999, 1.999, 1.999)
	if rep := mustCompare(t, same, lower, 0); rep.GroupRegressions != 1 {
		t.Fatalf("zero-variance drop not flagged: %+v", rep.Groups)
	}
}

// CI gating needs >= 2 ok replications on BOTH sides; otherwise the group
// keeps the scalar-tolerance per-cell semantics, including mixed files.
func TestCompareCIRequiresReplicationOnBothSides(t *testing.T) {
	multi := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90)
	single := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.0)}
	rep := mustCompare(t, multi, single, 0.02)
	if len(rep.Groups) != 0 {
		t.Fatalf("single-sided replication CI-gated: %+v", rep.Groups)
	}
	// Per-cell semantics: seed 1 compares (and regresses), seeds 2,3 are
	// missing in new.
	if rep.Regressions != 1 || rep.Missing != 2 {
		t.Fatalf("Regressions/Missing = %d/%d, want 1/2", rep.Regressions, rep.Missing)
	}
}

// The seed axis is a replication axis: the two sides need not share seed
// sets or sample sizes, and differing seeds are not "missing" cells.
func TestCompareCIDifferingSeedSets(t *testing.T) {
	old := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90)
	new_ := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 4, 2.01),
		res("2_MIX", "stream", "ICOUNT.1.8", 5, 2.05),
		res("2_MIX", "stream", "ICOUNT.1.8", 6, 1.99),
		res("2_MIX", "stream", "ICOUNT.1.8", 7, 2.03),
	}
	rep := mustCompare(t, old, new_, 0.001)
	if len(rep.Groups) != 1 || rep.Groups[0].OldIPC.N != 3 || rep.Groups[0].NewIPC.N != 4 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	if rep.Missing != 0 || len(rep.Deltas) != 0 {
		t.Fatalf("differing seed sets reported as missing: %+v", rep)
	}
	if rep.Err() != nil {
		t.Fatalf("Err() = %v", rep.Err())
	}
}

// Error cells inside a CI-gated group keep per-cell error semantics: an
// ok-to-error transition still fails the gate, and the errored cell's
// IPC-0 marker stays out of the mean.
func TestCompareCIGroupWithErrorCell(t *testing.T) {
	old := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90)
	new_ := seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10)
	bad := res("2_MIX", "stream", "ICOUNT.1.8", 3, 0)
	bad.Error = "synthetic failure"
	new_ = append(new_, bad)

	rep := mustCompare(t, old, new_, 0.001)
	if len(rep.Groups) != 1 || rep.Groups[0].NewIPC.N != 2 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	approxMean := rep.Groups[0].NewIPC.Mean
	if math.Abs(approxMean-2.05) > 1e-9 {
		t.Fatalf("errored cell leaked into the mean: %v", approxMean)
	}
	if rep.Errored != 1 || len(rep.Deltas) != 1 || !rep.Deltas[0].Errored {
		t.Fatalf("ok->error inside CI group not gated: %+v", rep)
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite a newly errored cell")
	}
}

// A multi-seed file mixing CI-gated and single-seed groups applies each
// group's semantics independently.
func TestCompareMixedGroupModes(t *testing.T) {
	old := append(seeded("2_MIX", "stream", "ICOUNT.1.8", 2.00, 2.10, 1.90),
		res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.50))
	new_ := append(seeded("2_MIX", "stream", "ICOUNT.1.8", 2.05, 1.95, 2.00),
		res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.40)) // -6.7% scalar regression
	rep := mustCompare(t, old, new_, 0.02)
	if len(rep.Groups) != 1 || rep.GroupRegressions != 0 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	if len(rep.Deltas) != 1 || !rep.Deltas[0].Regression || rep.Regressions != 1 {
		t.Fatalf("single-seed group lost scalar gating: %+v", rep.Deltas)
	}
}

// Regression test for the delta-ordering bug: sort.Strings on full keys
// put seed 10 before seed 2, diverging from SortResults' numeric order.
func TestCompareDeltaNumericSeedOrder(t *testing.T) {
	old := []Result{
		res("2_MIX", "stream", "ICOUNT.1.8", 10, 2.0),
		res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0),
		res("2_MIX", "stream", "ICOUNT.1.8", 2, 2.0),
	}
	// Single ok cell on the new side keeps the group out of CI gating, so
	// every cell produces a delta whose order we can check.
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)}
	rep := mustCompare(t, old, new_, 0.02)
	var keys []string
	for _, d := range rep.Deltas {
		keys = append(keys, d.Key)
	}
	want := []string{
		"2_MIX/stream/ICOUNT.1.8/1",
		"2_MIX/stream/ICOUNT.1.8/2",
		"2_MIX/stream/ICOUNT.1.8/10",
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("delta order = %v, want %v", keys, want)
		}
	}
}

// Regression test for the fabricated-zero bug: a missing cell's absent
// side used to render as IPC 0.000, indistinguishable from a measured
// zero-IPC cell.
func TestReportStringMissingCellRendersBlank(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 1.5)}
	new_ := []Result{res("4_MIX", "stream", "ICOUNT.1.8", 1, 1.5)}
	out := mustCompare(t, old, new_, 0.02).String()
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "missing in") && strings.Contains(ln, "0.000") {
			t.Fatalf("missing cell renders a fabricated 0.000:\n%s", out)
		}
	}
	// The present side's value still renders.
	if !strings.Contains(out, "1.500") {
		t.Fatalf("present side's IPC missing:\n%s", out)
	}
}

// Single-seed comparisons must be bit-for-bit what they were before the
// replication layer: no groups key in the JSON, and the exact legacy text.
func TestCompareSingleSeedUnchanged(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)}
	rep := mustCompare(t, old, new_, 0.02)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"groups", "group_regressions"} {
		if strings.Contains(string(blob), frag) {
			t.Fatalf("single-seed report JSON grew a %q key:\n%s", frag, blob)
		}
	}
	want := "CELL                       OLD.IPC  NEW.IPC  CHANGE   FLAG\n" +
		"2_MIX/stream/ICOUNT.1.8/1  3.000    2.000    -33.33%  REGRESSION\n" +
		"1 cells compared, 1 regressions (tolerance 2.0%), 0 newly errored, 0 missing\n"
	if got := rep.String(); got != want {
		t.Fatalf("single-seed report text changed:\n%q\nwant\n%q", got, want)
	}
}

func TestReportString(t *testing.T) {
	old := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 3.0)}
	new_ := []Result{res("2_MIX", "stream", "ICOUNT.1.8", 1, 2.0)}
	out := mustCompare(t, old, new_, 0.02).String()
	for _, frag := range []string{"REGRESSION", "1 regressions", "2_MIX/stream/ICOUNT.1.8/1", "-33.33%"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}
