package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"smtfetch"
	"smtfetch/internal/config"
)

// PerfBench runs a fixed grid of cells serially and measures simulator
// throughput, not simulated performance: kilo-cycles per wall second, MIPS
// (millions of simulated instructions per wall second), and heap allocation
// per simulated cycle via runtime.MemStats. The emitted JSON gives future
// PRs a perf trajectory to beat.
type PerfBench struct {
	// Workloads, Engines, Policies define the grid; empty axes take a
	// fixed default (2_MIX/4_MIX/8_MIX × all engines × {ICOUNT.1.8,
	// FLUSH.2.8}) so the numbers stay comparable across PRs. FLUSH rides
	// along because its flush/replay machinery is the most stateful
	// policy path and deserves its own trajectory.
	Workloads []string
	Engines   []config.Engine
	Policies  []config.FetchPolicy

	// WarmupInstrs/MeasureInstrs size each cell's phases; zero takes the
	// bench defaults (50k / 300k).
	WarmupInstrs  uint64
	MeasureInstrs uint64

	// OnCell, when non-nil, is called after each cell with progress.
	OnCell func(done, total int, c PerfCell)
}

// PerfCell is one measured cell of a perf-bench run.
type PerfCell struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Policy   string `json:"policy"`

	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	WallNS    int64  `json:"wall_ns"`

	// KiloCyclesPerSec is simulated kilo-cycles per wall-clock second.
	KiloCyclesPerSec float64 `json:"kilo_cycles_per_sec"`
	// MIPS is millions of committed instructions per wall-clock second.
	MIPS float64 `json:"mips"`
	// AllocsPerCycle / BytesPerCycle are heap allocations (objects and
	// bytes) per simulated cycle during measurement, from
	// runtime.MemStats.
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`

	// IPC is recorded so perf numbers always travel with the timing
	// behaviour they were measured on.
	IPC float64 `json:"ipc"`

	Error string `json:"error,omitempty"`
}

// PerfReport is the on-disk perf-bench schema.
type PerfReport struct {
	SchemaVersion int        `json:"schema_version"`
	GoVersion     string     `json:"go_version"`
	GOOS          string     `json:"goos"`
	GOARCH        string     `json:"goarch"`
	Timestamp     string     `json:"timestamp"`
	WarmupInstrs  uint64     `json:"warmup_instrs"`
	MeasureInstrs uint64     `json:"measure_instrs"`
	Cells         []PerfCell `json:"cells"`
}

// PerfSchemaVersion is the current perf-bench JSON schema version.
const PerfSchemaVersion = 1

// Run executes the perf bench. Cells run serially on one goroutine so the
// wall-clock and MemStats numbers are not polluted by sibling cells.
func (p *PerfBench) Run() (*PerfReport, error) {
	workloads := p.Workloads
	if len(workloads) == 0 {
		workloads = []string{"2_MIX", "4_MIX", "8_MIX"}
	}
	engines := p.Engines
	if len(engines) == 0 {
		engines = config.Engines()
	}
	policies := p.Policies
	if len(policies) == 0 {
		policies = []config.FetchPolicy{
			config.ICount18,
			{Policy: config.Flush, Threads: 2, Width: 8},
		}
	}
	warmup := p.WarmupInstrs
	if warmup == 0 {
		warmup = 50_000
	}
	measure := p.MeasureInstrs
	if measure == 0 {
		measure = 300_000
	}

	rep := &PerfReport{
		SchemaVersion: PerfSchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		WarmupInstrs:  warmup,
		MeasureInstrs: measure,
	}
	total := len(workloads) * len(engines) * len(policies)
	for _, w := range workloads {
		for _, e := range engines {
			for _, pol := range policies {
				c := p.runCell(w, e, pol, warmup, measure)
				rep.Cells = append(rep.Cells, c)
				if p.OnCell != nil {
					p.OnCell(len(rep.Cells), total, c)
				}
			}
		}
	}
	for _, c := range rep.Cells {
		if c.Error != "" {
			return rep, fmt.Errorf("experiment: perf cell %s/%s/%s: %s", c.Workload, c.Engine, c.Policy, c.Error)
		}
	}
	return rep, nil
}

func (p *PerfBench) runCell(w string, e config.Engine, pol config.FetchPolicy, warmup, measure uint64) PerfCell {
	c := PerfCell{Workload: w, Engine: e.String(), Policy: pol.String()}
	sim, err := smtfetch.New(smtfetch.Options{
		Workload: w,
		Engine:   e,
		Policy:   pol,
		Seed:     CellSeed(Cell{Workload: w, Engine: e, Policy: pol, Seed: 1}),
	})
	if err != nil {
		c.Error = err.Error()
		return c
	}
	core := sim.Core()
	// Warm the simulator (caches, predictors, free lists) outside the
	// measured window, then settle the heap so MemStats deltas reflect
	// steady-state allocation only.
	core.Run(warmup, 50_000_000)
	core.ResetStats()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	st := core.Run(measure, 50_000_000)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	c.Cycles = st.Cycles
	c.Committed = st.Committed
	c.WallNS = wall.Nanoseconds()
	if sec := wall.Seconds(); sec > 0 {
		c.KiloCyclesPerSec = float64(st.Cycles) / sec / 1e3
		c.MIPS = float64(st.Committed) / sec / 1e6
	}
	if st.Cycles > 0 {
		c.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(st.Cycles)
		c.BytesPerCycle = float64(after.TotalAlloc-before.TotalAlloc) / float64(st.Cycles)
	}
	c.IPC = st.IPC()
	return c
}

// WritePerfJSON writes the report as indented JSON.
func WritePerfJSON(w io.Writer, rep *PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PerfTable renders the report as an aligned text table.
func PerfTable(rep *PerfReport) string {
	rows := make([][]string, 0, len(rep.Cells)+1)
	rows = append(rows, []string{"WORKLOAD", "ENGINE", "POLICY", "KCYC/S", "MIPS", "ALLOC/CYC", "B/CYC", "IPC"})
	for _, c := range rep.Cells {
		if c.Error != "" {
			rows = append(rows, []string{c.Workload, c.Engine, c.Policy, "ERROR: " + c.Error, "", "", "", ""})
			continue
		}
		rows = append(rows, []string{
			c.Workload, c.Engine, c.Policy,
			fmt.Sprintf("%.0f", c.KiloCyclesPerSec),
			fmt.Sprintf("%.2f", c.MIPS),
			fmt.Sprintf("%.3f", c.AllocsPerCycle),
			fmt.Sprintf("%.1f", c.BytesPerCycle),
			fmt.Sprintf("%.3f", c.IPC),
		})
	}
	return renderAligned(rows)
}
