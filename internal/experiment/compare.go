package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is the comparison of one cell across two results files.
type Delta struct {
	Key string `json:"key"`

	OldIPC float64 `json:"old_ipc"`
	NewIPC float64 `json:"new_ipc"`
	// RelChange is (new-old)/old; nil when the old IPC is zero (a NaN
	// here would make the whole Report unmarshalable) or when either side
	// errored (an error cell's IPC 0 is a failure marker, not a value).
	RelChange *float64 `json:"rel_change,omitempty"`

	// Regression marks an IPC drop beyond the comparison tolerance.
	Regression bool `json:"regression"`
	// MissingIn is "old" or "new" when the cell exists on only one side.
	MissingIn string `json:"missing_in,omitempty"`

	// OldError / NewError carry the cell's failure message on each side.
	// A cell with a non-empty error never enters the IPC comparison: its
	// recorded IPC of 0 is a failure marker, and treating it as a value
	// would let an errored baseline wave any new number through the gate.
	OldError string `json:"old_error,omitempty"`
	NewError string `json:"new_error,omitempty"`
	// Errored marks an ok-to-error transition: the cell succeeded in old
	// and failed in new. It fails the gate exactly like a regression.
	Errored bool `json:"errored,omitempty"`
}

// GroupDelta is the comparison of one CI-gated cell-group — a (workload,
// engine, policy) configuration with at least two ok replications on each
// side. The seed axis is the replication axis, so the two sides need not
// share seed sets or sample sizes; the means and their 95% confidence
// intervals are what get compared.
type GroupDelta struct {
	// Key is the group identity: workload/engine/policy, no seed.
	Key string `json:"key"`

	OldIPC Summary `json:"old_ipc"`
	NewIPC Summary `json:"new_ipc"`

	// RelChange is the mean-to-mean relative change, (newMean-oldMean)/
	// oldMean; nil when the old mean is zero.
	RelChange *float64 `json:"rel_change,omitempty"`

	// Regression marks a statistically resolvable IPC drop: the new mean
	// lies below the old 95% CI's lower bound AND the two intervals do not
	// overlap. Overlapping intervals mean the difference is not
	// distinguishable from seed noise at this sample size, so the gate
	// stays green. The scalar tolerance plays no role here.
	Regression bool `json:"regression"`
}

// Report aggregates a comparison. It is the CI perf gate: a sweep is
// compared against the checked-in baseline and the build fails on
// Regressions > 0, GroupRegressions > 0, or Errored > 0.
type Report struct {
	Tolerance   float64 `json:"tolerance"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
	Missing     int     `json:"missing"`
	// Errored counts ok-to-error transitions (cells that succeeded in old
	// and failed in new); error-to-ok and error-to-error cells are visible
	// in their Deltas but do not fail the gate.
	Errored int `json:"errored"`

	// Groups holds the CI-gated cell-group comparisons; empty (and absent
	// from the JSON) when neither side has multi-seed replications, so
	// single-seed reports are unchanged from the scalar-tolerance era.
	Groups []GroupDelta `json:"groups,omitempty"`
	// GroupRegressions counts groups whose mean IPC dropped with
	// non-overlapping 95% confidence intervals.
	GroupRegressions int `json:"group_regressions,omitempty"`
}

// Err returns the gate verdict: non-nil when the report carries
// regressions (scalar or CI-gated) or ok-to-error cells.
func (rep Report) Err() error {
	if rep.Regressions == 0 && rep.Errored == 0 && rep.GroupRegressions == 0 {
		return nil
	}
	var parts []string
	if rep.Regressions > 0 {
		parts = append(parts, fmt.Sprintf("%d IPC regressions beyond %.1f%% tolerance", rep.Regressions, 100*rep.Tolerance))
	}
	if rep.GroupRegressions > 0 {
		parts = append(parts, fmt.Sprintf("%d mean-IPC regressions outside the 95%% CI overlap gate", rep.GroupRegressions))
	}
	if rep.Errored > 0 {
		parts = append(parts, fmt.Sprintf("%d cells newly errored", rep.Errored))
	}
	return fmt.Errorf("%s", strings.Join(parts, ", "))
}

// keyResults indexes results by cell key, rejecting duplicates: a file
// with two entries for the same cell is ambiguous (last-one-wins would
// silently drop data), matching the strictness Sweep.Validate applies to
// grids before they run.
func keyResults(side string, rs []Result) (map[string]Result, error) {
	byKey := make(map[string]Result, len(rs))
	for _, r := range rs {
		k := r.Key()
		if _, dup := byKey[k]; dup {
			return nil, fmt.Errorf("experiment: duplicate cell %s in %s results", k, side)
		}
		byKey[k] = r
	}
	return byKey, nil
}

// okReplications counts each cell-group's non-errored cells.
func okReplications(rs []Result) map[string]int {
	n := make(map[string]int)
	for _, r := range rs {
		if r.Error == "" {
			n[r.GroupKey()]++
		}
	}
	return n
}

// Compare matches two result sets and flags IPC regressions.
//
// Single-replication cells — any (workload, engine, policy) group where
// either side has fewer than two ok cells — are compared cell-by-cell by
// key, flagging drops larger than tol (a fraction: 0.02 tolerates a 2%
// drop). Cells present on only one side are reported as missing, never as
// regressions; cells that errored on either side skip the IPC comparison
// and are surfaced via the delta's OldError/NewError, with an ok-to-error
// transition counting in Report.Errored and failing Report.Err. This is
// the exact pre-replication behavior, so existing single-seed baselines
// keep gating bit-for-bit identically.
//
// Groups with at least two ok replications on both sides are CI-gated
// instead: each side's seeds aggregate to a mean and 95% confidence
// interval, and the group regresses only when the new mean falls below
// the old interval's lower bound with non-overlapping intervals — a drop
// the replications can actually distinguish from seed noise. Their ok
// cells produce no per-cell deltas (the seed sets need not even match);
// errored cells in such groups still get per-cell deltas and the usual
// ok-to-error gating. Duplicate cell keys on either side are an error.
func Compare(old, new []Result, tol float64) (Report, error) {
	if tol < 0 {
		tol = 0
	}
	oldByKey, err := keyResults("old", old)
	if err != nil {
		return Report{}, err
	}
	newByKey, err := keyResults("new", new)
	if err != nil {
		return Report{}, err
	}

	// A group is CI-gated when both sides carry real replication: at
	// least two ok cells each.
	okOld, okNew := okReplications(old), okReplications(new)
	ciGated := make(map[string]bool)
	for gk, n := range okOld {
		if n >= 2 && okNew[gk] >= 2 {
			ciGated[gk] = true
		}
	}

	// One representative result per unique cell key, in canonical
	// (workload, engine, policy, numeric seed) order — the same order
	// SortResults gives tables and JSON, so report rows match even on
	// multi-seed files where a lexical key sort would stray.
	reps := make([]Result, 0, len(oldByKey)+len(newByKey))
	reps = append(reps, old...)
	for _, r := range new {
		if _, dup := oldByKey[r.Key()]; !dup {
			reps = append(reps, r)
		}
	}
	sort.Slice(reps, func(i, j int) bool { return lessResult(reps[i], reps[j]) })

	rep := Report{Tolerance: tol}
	groupOrder := make([]string, 0, len(ciGated))
	groupVals := make(map[string]*[2][]float64)
	for _, rc := range reps {
		k := rc.Key()
		gk := rc.GroupKey()
		o, inOld := oldByKey[k]
		n, inNew := newByKey[k]
		if ciGated[gk] {
			// Ok cells feed their side's aggregate (in sorted order, so
			// the floating-point sums are deterministic) and produce no
			// per-cell delta: differing seed sets are just differing
			// sample sizes, not missing cells. Only error-bearing cells
			// fall through to per-cell reporting.
			gv, ok := groupVals[gk]
			if !ok {
				gv = &[2][]float64{}
				groupVals[gk] = gv
				groupOrder = append(groupOrder, gk)
			}
			if inOld && o.Error == "" {
				gv[0] = append(gv[0], o.IPC)
			}
			if inNew && n.Error == "" {
				gv[1] = append(gv[1], n.IPC)
			}
			oErr := inOld && o.Error != ""
			nErr := inNew && n.Error != ""
			if !oErr && !nErr {
				continue
			}
		}
		d := Delta{Key: k, OldIPC: o.IPC, NewIPC: n.IPC}
		switch {
		case !inOld:
			d.MissingIn = "old"
			rep.Missing++
		case !inNew:
			d.MissingIn = "new"
			rep.Missing++
		case o.Error != "" || n.Error != "":
			d.OldError = o.Error
			d.NewError = n.Error
			if o.Error == "" && n.Error != "" {
				d.Errored = true
				rep.Errored++
			}
		default:
			if o.IPC != 0 {
				rc := (n.IPC - o.IPC) / o.IPC
				d.RelChange = &rc
			}
			if n.IPC < o.IPC*(1-tol) {
				d.Regression = true
				rep.Regressions++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}

	for _, gk := range groupOrder {
		gv := groupVals[gk]
		gd := GroupDelta{Key: gk, OldIPC: summarize(gv[0]), NewIPC: summarize(gv[1])}
		if gd.OldIPC.Mean != 0 {
			rc := (gd.NewIPC.Mean - gd.OldIPC.Mean) / gd.OldIPC.Mean
			gd.RelChange = &rc
		}
		if gd.NewIPC.Mean < gd.OldIPC.CILow && gd.NewIPC.CIHigh < gd.OldIPC.CILow {
			gd.Regression = true
			rep.GroupRegressions++
		}
		rep.Groups = append(rep.Groups, gd)
	}
	return rep, nil
}

// ipcCell renders one side's IPC for the per-cell table; a side the cell
// is missing from renders blank — its zero-value Result carries a
// fabricated IPC of 0 that must not be readable as a measured value.
func ipcCell(d Delta, side string) string {
	if d.MissingIn == side {
		return ""
	}
	if side == "old" {
		return fmt.Sprintf("%.3f", d.OldIPC)
	}
	return fmt.Sprintf("%.3f", d.NewIPC)
}

// String renders the report: the CI-gated group table (when any groups
// exist) with per-side means and 95% CI half-widths, then the per-cell
// table, then a one-line verdict. Single-seed reports — no groups —
// render exactly as they did before the replication layer existed.
func (rep Report) String() string {
	var b strings.Builder
	if len(rep.Groups) > 0 {
		rows := [][]string{{"GROUP", "N", "OLD.IPC", "OLD.CI95", "NEW.IPC", "NEW.CI95", "CHANGE", "FLAG"}}
		for _, g := range rep.Groups {
			change := "n/a"
			if g.RelChange != nil {
				change = fmt.Sprintf("%+.2f%%", 100**g.RelChange)
			}
			flag := ""
			if g.Regression {
				flag = "REGRESSION"
			}
			rows = append(rows, []string{
				g.Key,
				fmt.Sprintf("%d/%d", g.OldIPC.N, g.NewIPC.N),
				fmt.Sprintf("%.3f", g.OldIPC.Mean),
				fmt.Sprintf("%.4f", g.OldIPC.CIHalfWidth()),
				fmt.Sprintf("%.3f", g.NewIPC.Mean),
				fmt.Sprintf("%.4f", g.NewIPC.CIHalfWidth()),
				change,
				flag,
			})
		}
		b.WriteString(renderAligned(rows))
		fmt.Fprintf(&b, "%d cell-groups gated on 95%% CI overlap, %d mean-IPC regressions\n",
			len(rep.Groups), rep.GroupRegressions)
		if len(rep.Deltas) == 0 {
			return b.String()
		}
		b.WriteByte('\n')
	}
	rows := [][]string{{"CELL", "OLD.IPC", "NEW.IPC", "CHANGE", "FLAG"}}
	for _, d := range rep.Deltas {
		change, flag := "", ""
		switch {
		case d.MissingIn != "":
			flag = "missing in " + d.MissingIn
		case d.Errored:
			change = "n/a"
			flag = "ERROR(new): " + d.NewError
		case d.OldError != "" && d.NewError != "":
			change = "n/a"
			flag = "error on both sides"
		case d.OldError != "":
			change = "n/a"
			flag = "error in old: " + d.OldError
		case d.RelChange == nil:
			change = "n/a"
		default:
			change = fmt.Sprintf("%+.2f%%", 100**d.RelChange)
			if d.Regression {
				flag = "REGRESSION"
			}
		}
		rows = append(rows, []string{
			d.Key,
			ipcCell(d, "old"),
			ipcCell(d, "new"),
			change,
			flag,
		})
	}
	b.WriteString(renderAligned(rows))
	fmt.Fprintf(&b, "%d cells compared, %d regressions (tolerance %.1f%%), %d newly errored, %d missing\n",
		len(rep.Deltas), rep.Regressions, 100*rep.Tolerance, rep.Errored, rep.Missing)
	return b.String()
}
