package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is the comparison of one cell across two results files.
type Delta struct {
	Key string `json:"key"`

	OldIPC float64 `json:"old_ipc"`
	NewIPC float64 `json:"new_ipc"`
	// RelChange is (new-old)/old; nil when the old IPC is zero (a NaN
	// here would make the whole Report unmarshalable) or when either side
	// errored (an error cell's IPC 0 is a failure marker, not a value).
	RelChange *float64 `json:"rel_change,omitempty"`

	// Regression marks an IPC drop beyond the comparison tolerance.
	Regression bool `json:"regression"`
	// MissingIn is "old" or "new" when the cell exists on only one side.
	MissingIn string `json:"missing_in,omitempty"`

	// OldError / NewError carry the cell's failure message on each side.
	// A cell with a non-empty error never enters the IPC comparison: its
	// recorded IPC of 0 is a failure marker, and treating it as a value
	// would let an errored baseline wave any new number through the gate.
	OldError string `json:"old_error,omitempty"`
	NewError string `json:"new_error,omitempty"`
	// Errored marks an ok-to-error transition: the cell succeeded in old
	// and failed in new. It fails the gate exactly like a regression.
	Errored bool `json:"errored,omitempty"`
}

// Report aggregates a comparison. It is the CI perf gate: a sweep is
// compared against the checked-in baseline and the build fails on
// Regressions > 0 or Errored > 0.
type Report struct {
	Tolerance   float64 `json:"tolerance"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
	Missing     int     `json:"missing"`
	// Errored counts ok-to-error transitions (cells that succeeded in old
	// and failed in new); error-to-ok and error-to-error cells are visible
	// in their Deltas but do not fail the gate.
	Errored int `json:"errored"`
}

// Err returns the gate verdict: non-nil when the report carries
// regressions or ok-to-error cells.
func (rep Report) Err() error {
	if rep.Regressions == 0 && rep.Errored == 0 {
		return nil
	}
	var parts []string
	if rep.Regressions > 0 {
		parts = append(parts, fmt.Sprintf("%d IPC regressions beyond %.1f%% tolerance", rep.Regressions, 100*rep.Tolerance))
	}
	if rep.Errored > 0 {
		parts = append(parts, fmt.Sprintf("%d cells newly errored", rep.Errored))
	}
	return fmt.Errorf("%s", strings.Join(parts, ", "))
}

// keyResults indexes results by cell key, rejecting duplicates: a file
// with two entries for the same cell is ambiguous (last-one-wins would
// silently drop data), matching the strictness Sweep.Validate applies to
// grids before they run.
func keyResults(side string, rs []Result) (map[string]Result, error) {
	byKey := make(map[string]Result, len(rs))
	for _, r := range rs {
		k := r.Key()
		if _, dup := byKey[k]; dup {
			return nil, fmt.Errorf("experiment: duplicate cell %s in %s results", k, side)
		}
		byKey[k] = r
	}
	return byKey, nil
}

// Compare matches cells of two result sets by key and flags IPC drops
// larger than tol (a fraction: 0.02 tolerates a 2% drop). Cells present on
// only one side are reported as missing, never as regressions. Cells that
// errored on either side skip the IPC comparison and are surfaced via the
// delta's OldError/NewError; an ok-to-error transition counts in
// Report.Errored and fails Report.Err. Duplicate cell keys on either side
// are an error.
func Compare(old, new []Result, tol float64) (Report, error) {
	if tol < 0 {
		tol = 0
	}
	oldByKey, err := keyResults("old", old)
	if err != nil {
		return Report{}, err
	}
	newByKey, err := keyResults("new", new)
	if err != nil {
		return Report{}, err
	}

	keys := make([]string, 0, len(oldByKey)+len(newByKey))
	for k := range oldByKey {
		keys = append(keys, k)
	}
	for k := range newByKey {
		if _, dup := oldByKey[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	rep := Report{Tolerance: tol}
	for _, k := range keys {
		o, inOld := oldByKey[k]
		n, inNew := newByKey[k]
		d := Delta{Key: k, OldIPC: o.IPC, NewIPC: n.IPC}
		switch {
		case !inOld:
			d.MissingIn = "old"
			rep.Missing++
		case !inNew:
			d.MissingIn = "new"
			rep.Missing++
		case o.Error != "" || n.Error != "":
			d.OldError = o.Error
			d.NewError = n.Error
			if o.Error == "" && n.Error != "" {
				d.Errored = true
				rep.Errored++
			}
		default:
			if o.IPC != 0 {
				rc := (n.IPC - o.IPC) / o.IPC
				d.RelChange = &rc
			}
			if n.IPC < o.IPC*(1-tol) {
				d.Regression = true
				rep.Regressions++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep, nil
}

// String renders the report as an aligned table plus a one-line verdict.
func (rep Report) String() string {
	rows := [][]string{{"CELL", "OLD.IPC", "NEW.IPC", "CHANGE", "FLAG"}}
	for _, d := range rep.Deltas {
		change, flag := "", ""
		switch {
		case d.MissingIn != "":
			flag = "missing in " + d.MissingIn
		case d.Errored:
			change = "n/a"
			flag = "ERROR(new): " + d.NewError
		case d.OldError != "" && d.NewError != "":
			change = "n/a"
			flag = "error on both sides"
		case d.OldError != "":
			change = "n/a"
			flag = "error in old: " + d.OldError
		case d.RelChange == nil:
			change = "n/a"
		default:
			change = fmt.Sprintf("%+.2f%%", 100**d.RelChange)
			if d.Regression {
				flag = "REGRESSION"
			}
		}
		rows = append(rows, []string{
			d.Key,
			fmt.Sprintf("%.3f", d.OldIPC),
			fmt.Sprintf("%.3f", d.NewIPC),
			change,
			flag,
		})
	}
	var b strings.Builder
	b.WriteString(renderAligned(rows))
	fmt.Fprintf(&b, "%d cells compared, %d regressions (tolerance %.1f%%), %d newly errored, %d missing\n",
		len(rep.Deltas), rep.Regressions, 100*rep.Tolerance, rep.Errored, rep.Missing)
	return b.String()
}
