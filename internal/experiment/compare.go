package experiment

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is the comparison of one cell across two results files.
type Delta struct {
	Key string `json:"key"`

	OldIPC float64 `json:"old_ipc"`
	NewIPC float64 `json:"new_ipc"`
	// RelChange is (new-old)/old; nil when the old IPC is zero (a NaN
	// here would make the whole Report unmarshalable).
	RelChange *float64 `json:"rel_change,omitempty"`

	// Regression marks an IPC drop beyond the comparison tolerance.
	Regression bool `json:"regression"`
	// MissingIn is "old" or "new" when the cell exists on only one side.
	MissingIn string `json:"missing_in,omitempty"`
}

// Report aggregates a comparison. It is the future perf gate: CI runs a
// sweep, compares against the checked-in baseline, and fails on
// Regressions > 0.
type Report struct {
	Tolerance   float64 `json:"tolerance"`
	Deltas      []Delta `json:"deltas"`
	Regressions int     `json:"regressions"`
	Missing     int     `json:"missing"`
}

// Compare matches cells of two result sets by key and flags IPC drops
// larger than tol (a fraction: 0.02 tolerates a 2% drop). Cells present on
// only one side are reported as missing, never as regressions.
func Compare(old, new []Result, tol float64) Report {
	if tol < 0 {
		tol = 0
	}
	oldByKey := make(map[string]Result, len(old))
	for _, r := range old {
		oldByKey[r.Key()] = r
	}
	newByKey := make(map[string]Result, len(new))
	for _, r := range new {
		newByKey[r.Key()] = r
	}

	keys := make([]string, 0, len(oldByKey)+len(newByKey))
	for k := range oldByKey {
		keys = append(keys, k)
	}
	for k := range newByKey {
		if _, dup := oldByKey[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	rep := Report{Tolerance: tol}
	for _, k := range keys {
		o, inOld := oldByKey[k]
		n, inNew := newByKey[k]
		d := Delta{Key: k, OldIPC: o.IPC, NewIPC: n.IPC}
		switch {
		case !inOld:
			d.MissingIn = "old"
			rep.Missing++
		case !inNew:
			d.MissingIn = "new"
			rep.Missing++
		default:
			if o.IPC != 0 {
				rc := (n.IPC - o.IPC) / o.IPC
				d.RelChange = &rc
			}
			if n.IPC < o.IPC*(1-tol) {
				d.Regression = true
				rep.Regressions++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	return rep
}

// String renders the report as an aligned table plus a one-line verdict.
func (rep Report) String() string {
	rows := [][]string{{"CELL", "OLD.IPC", "NEW.IPC", "CHANGE", "FLAG"}}
	for _, d := range rep.Deltas {
		change, flag := "", ""
		switch {
		case d.MissingIn != "":
			flag = "missing in " + d.MissingIn
		case d.RelChange == nil:
			change = "n/a"
		default:
			change = fmt.Sprintf("%+.2f%%", 100**d.RelChange)
			if d.Regression {
				flag = "REGRESSION"
			}
		}
		rows = append(rows, []string{
			d.Key,
			fmt.Sprintf("%.3f", d.OldIPC),
			fmt.Sprintf("%.3f", d.NewIPC),
			change,
			flag,
		})
	}
	var b strings.Builder
	b.WriteString(renderAligned(rows))
	fmt.Fprintf(&b, "%d cells compared, %d regressions (tolerance %.1f%%), %d missing\n",
		len(rep.Deltas), rep.Regressions, 100*rep.Tolerance, rep.Missing)
	return b.String()
}
