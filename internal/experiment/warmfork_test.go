package experiment

import (
	"bytes"
	"sync"
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/core"
)

// warmForkGrid is a small two-group grid: three policies share the 2.8
// shape (one warm group) and one uses 1.8 (a second group, since
// SetPolicy cannot change bandwidth). FLUSH is included deliberately —
// its replay machinery is the policy the canonical-ICOUNT warm-up
// protects against.
func warmForkGrid(mode string) *Sweep {
	return &Sweep{
		Workloads: []string{"2_MIX"},
		Engines:   []config.Engine{config.GShareBTB},
		Policies: []config.FetchPolicy{
			config.ICount28,
			config.RR28,
			{Policy: config.Flush, Threads: 2, Width: 8},
			config.ICount18,
		},
		WarmupInstrs:  15_000,
		WarmupCycles:  1_000,
		MeasureInstrs: 25_000,
		Jobs:          2,
		WarmFork:      mode,
	}
}

func TestWarmForkMatchesRerunByteForByte(t *testing.T) {
	fork, err := warmForkGrid(WarmForkFork).Run()
	if err != nil {
		t.Fatalf("fork sweep: %v", err)
	}
	rerun, err := warmForkGrid(WarmForkRerun).Run()
	if err != nil {
		t.Fatalf("rerun sweep: %v", err)
	}
	fb, err := MarshalJSONResults(fork)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MarshalJSONResults(rerun)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, rb) {
		t.Fatalf("snapshot-forked sweep differs from rerun reference:\nfork:\n%s\nrerun:\n%s", fb, rb)
	}
	for _, r := range fork {
		if r.IPC <= 0 {
			t.Fatalf("cell %s: non-positive IPC %v", r.Key(), r.IPC)
		}
	}
}

func TestWarmForkWithSamplingMatchesRerun(t *testing.T) {
	mk := func(mode string) *Sweep {
		sw := warmForkGrid(mode)
		sw.Sample = "detail:2000,skip:6000"
		return sw
	}
	fork, err := mk(WarmForkFork).Run()
	if err != nil {
		t.Fatalf("fork sweep: %v", err)
	}
	rerun, err := mk(WarmForkRerun).Run()
	if err != nil {
		t.Fatalf("rerun sweep: %v", err)
	}
	fb, _ := MarshalJSONResults(fork)
	rb, _ := MarshalJSONResults(rerun)
	if !bytes.Equal(fb, rb) {
		t.Fatalf("sampled fork sweep differs from rerun reference:\nfork:\n%s\nrerun:\n%s", fb, rb)
	}
	for _, r := range fork {
		if r.SampleIntervals < 2 {
			t.Fatalf("cell %s: SampleIntervals = %d, want >= 2", r.Key(), r.SampleIntervals)
		}
		if r.IPCCI95 <= 0 {
			t.Fatalf("cell %s: IPCCI95 = %v, want > 0", r.Key(), r.IPCCI95)
		}
	}
}

func TestWarmForkSnapshotSourceSeesEachKeyOnce(t *testing.T) {
	sw := warmForkGrid(WarmForkFork)
	var (
		mu     sync.Mutex
		calls  = map[string]int{}
		builds = map[string]int{}
	)
	sw.SnapshotSource = func(key string, build func() ([]byte, error)) ([]byte, error) {
		mu.Lock()
		calls[key]++
		mu.Unlock()
		blob, err := build()
		mu.Lock()
		builds[key]++
		mu.Unlock()
		return blob, err
	}
	if _, err := sw.Run(); err != nil {
		t.Fatalf("fork sweep: %v", err)
	}
	// Two T.W shapes => two warm groups => two keys, each consulted and
	// built exactly once despite four cells and two workers (the per-run
	// memo singleflights the pool).
	if len(calls) != 2 {
		t.Fatalf("SnapshotSource saw %d keys (%v), want 2", len(calls), calls)
	}
	for k, n := range calls {
		if n != 1 || builds[k] != 1 {
			t.Fatalf("key %s: %d calls, %d builds, want 1 each", k, n, builds[k])
		}
	}
}

func TestWarmKeyComponents(t *testing.T) {
	base := &Sweep{WarmupInstrs: 10_000, WarmupCycles: 500}
	cell := Cell{Workload: "2_MIX", Engine: config.GShareBTB, Policy: config.ICount28, Seed: 1}

	// Policy heuristics canonicalize away: every policy of one T.W shape
	// shares the group's warm checkpoint.
	flush := cell
	flush.Policy = config.FetchPolicy{Policy: config.Flush, Threads: 2, Width: 8}
	if base.WarmKey(cell) != base.WarmKey(flush) {
		t.Fatal("policy heuristic split the warm key")
	}

	// Everything that shapes warmed state must split it.
	diffs := map[string]func(){}
	shape := cell
	shape.Policy = config.ICount18
	diffs["T.W shape"] = func() {
		if base.WarmKey(cell) == base.WarmKey(shape) {
			t.Error("different T.W shapes share a warm key")
		}
	}
	engine := cell
	engine.Engine = config.StreamFetch
	diffs["engine"] = func() {
		if base.WarmKey(cell) == base.WarmKey(engine) {
			t.Error("different engines share a warm key")
		}
	}
	seed := cell
	seed.Seed = 2
	diffs["seed"] = func() {
		if base.WarmKey(cell) == base.WarmKey(seed) {
			t.Error("different seeds share a warm key")
		}
	}
	diffs["warmup instrs"] = func() {
		other := &Sweep{WarmupInstrs: 20_000, WarmupCycles: 500}
		if base.WarmKey(cell) == other.WarmKey(cell) {
			t.Error("different -warmup lengths share a warm key")
		}
	}
	// The satellite regression: -warmup-cycles is an explicit component of
	// the snapshot key, so changing it can never be served a checkpoint
	// warmed for a different cycle budget.
	diffs["warmup cycles"] = func() {
		other := &Sweep{WarmupInstrs: 10_000, WarmupCycles: 501}
		if base.WarmKey(cell) == other.WarmKey(cell) {
			t.Error("different -warmup-cycles share a warm key")
		}
	}
	for _, check := range diffs {
		check()
	}
}

func TestSweepRejectsBadSampleAndWarmFork(t *testing.T) {
	bad := &Sweep{Workloads: []string{"2_MIX"}, Sample: "detail:0,skip:100"}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero detail length accepted")
	}
	bad = &Sweep{Workloads: []string{"2_MIX"}, Sample: "nonsense"}
	if err := bad.Validate(); err == nil {
		t.Fatal("malformed sample spec accepted")
	}
	bad = &Sweep{Workloads: []string{"2_MIX"}, WarmFork: "sideways"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown warm-fork mode accepted")
	}
}

// The server's snapshot cache tier keys blobs by the string WarmKey
// produces, so the snapshot format version must be a live component of
// that string: after a format bump, a server restarted over an old cache
// file must miss rather than serve a stale blob to a decoder that cannot
// read it.
func TestWarmKeySnapshotVersionComponent(t *testing.T) {
	s := &Sweep{WarmupInstrs: 10_000, WarmupCycles: 500}
	cell := Cell{Workload: "2_MIX", Engine: config.GShareBTB, Policy: config.ICount28, Seed: 1}

	if s.WarmKey(cell) != s.warmKeyAt(core.SnapshotVersion, cell) {
		t.Fatal("WarmKey does not use the current core.SnapshotVersion")
	}
	if s.warmKeyAt(core.SnapshotVersion, cell) == s.warmKeyAt(core.SnapshotVersion+1, cell) {
		t.Fatal("a snapshot format bump does not change the warm key")
	}
}

// TestSnapshotSourceKeyedByWarmKey pins the contract the server's
// snapshot tier relies on: every key handed to SnapshotSource is exactly
// the group's WarmKey, so whatever WarmKey folds in (including the
// snapshot version, above) is folded into the server-side cache key too.
func TestSnapshotSourceKeyedByWarmKey(t *testing.T) {
	s := warmForkGrid(WarmForkFork)
	var mu sync.Mutex
	seen := make(map[string]bool)
	s.SnapshotSource = func(key string, build func() ([]byte, error)) ([]byte, error) {
		mu.Lock()
		seen[key] = true
		mu.Unlock()
		return build()
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("SnapshotSource never consulted")
	}
	for _, c := range s.Cells() {
		delete(seen, s.WarmKey(c))
	}
	for key := range seen {
		t.Errorf("SnapshotSource saw key %q that is no cell's WarmKey", key)
	}
}
