package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"smtfetch/internal/config"
	"smtfetch/internal/stats"
)

// Result is the outcome of one sweep cell. Engine and Policy are stored as
// their String() names so the JSON is self-describing and stable across
// refactors of the underlying enums.
type Result struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Policy   string `json:"policy"`
	Seed     uint64 `json:"seed"`

	IPC          float64 `json:"ipc"`
	IPFC         float64 `json:"ipfc"`
	CondAccuracy float64 `json:"cond_accuracy"`

	// SampleIntervals and IPCCI95 are set when the cell was measured with
	// SMARTS-style sampling (Sweep.Sample): the number of detail intervals
	// and the 95% confidence half-width of the sampled IPC estimate. Both
	// are zero (and omitted from JSON) for full-detail cells.
	SampleIntervals int     `json:"sample_intervals,omitempty"`
	IPCCI95         float64 `json:"ipc_ci95,omitempty"`

	// Stats carries the full counter snapshot; nil when the cell failed.
	Stats *stats.Snapshot `json:"stats,omitempty"`
	// Error is the cell's failure message, empty on success.
	Error string `json:"error,omitempty"`
}

// Cell reconstructs the result's grid cell. Engine/policy names written by
// this package always parse; hand-edited files may not, in which case the
// zero values are returned alongside the name mismatch being detectable via
// Key comparison.
func (r Result) Cell() Cell {
	e, _ := config.ParseEngine(r.Engine)
	p, _ := config.ParseFetchPolicy(r.Policy)
	return Cell{Workload: r.Workload, Engine: e, Policy: p, Seed: r.Seed}
}

// Key is the result's cell identity (see Cell.Key), built from the stored
// names so it works even for results read from files.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%s/%d", r.Workload, r.Engine, r.Policy, r.Seed)
}

// GroupKey is the result's cell-group identity: the cell key without the
// seed axis. Results sharing a GroupKey are replications of one
// configuration and aggregate together (see Aggregate).
func (r Result) GroupKey() string {
	return r.Workload + "/" + r.Engine + "/" + r.Policy
}

// lessResult is the canonical result ordering: workload, engine, policy,
// then numeric seed. SortResults and Compare's delta ordering both use it,
// so tables, JSON, and compare reports agree — including on multi-seed
// files, where a lexical sort of the full key would put seed 10 before 2.
func lessResult(a, b Result) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Engine != b.Engine {
		return a.Engine < b.Engine
	}
	if a.Policy != b.Policy {
		return a.Policy < b.Policy
	}
	return a.Seed < b.Seed
}

// SortResults orders results by cell key: workload, engine, policy, seed.
// Run output is always in this order, making sweep JSON deterministic.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return lessResult(rs[i], rs[j]) })
}

// lessCell applies the lessResult ordering to not-yet-executed cells,
// comparing the same (workload, engine name, policy name, seed) tuple a
// cell's Result will carry. SortCells therefore pre-orders a cell list so
// that results produced one-by-one in that order are already in
// SortResults order — the property the cluster coordinator's streamed
// merge depends on.
func lessCell(a, b Cell) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if ae, be := a.Engine.String(), b.Engine.String(); ae != be {
		return ae < be
	}
	if ap, bp := a.Policy.String(), b.Policy.String(); ap != bp {
		return ap < bp
	}
	return a.Seed < b.Seed
}

// SortCells orders cells canonically: the results of executing them in
// this order are in SortResults order.
func SortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool { return lessCell(cells[i], cells[j]) })
}

// resultsFile is the on-disk schema: a versioned envelope so future PRs can
// evolve the format without breaking compare.
type resultsFile struct {
	SchemaVersion int      `json:"schema_version"`
	Results       []Result `json:"results"`
}

// SchemaVersion is the current sweep-JSON schema version.
const SchemaVersion = 1

// WriteJSON writes results (sorted, indented, versioned) to w.
func WriteJSON(w io.Writer, rs []Result) error {
	sorted := make([]Result, len(rs))
	copy(sorted, rs)
	SortResults(sorted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultsFile{SchemaVersion: SchemaVersion, Results: sorted})
}

// MarshalJSONResults returns the canonical JSON bytes for results.
func MarshalJSONResults(rs []Result) ([]byte, error) {
	var b strings.Builder
	if err := WriteJSON(&b, rs); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// ReadJSON parses a results file written by WriteJSON. Duplicate cell keys
// are rejected: WriteJSON never produces them (Sweep.Validate bans
// duplicate cells), so a file containing two entries for one cell is
// corrupt — most likely a bad hand-merge — and silently keeping either
// entry would make compare verdicts depend on file order.
func ReadJSON(r io.Reader) ([]Result, error) {
	var f resultsFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("experiment: bad results file: %w", err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("experiment: results schema version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	seen := make(map[string]bool, len(f.Results))
	for _, r := range f.Results {
		k := r.Key()
		if seen[k] {
			return nil, fmt.Errorf("experiment: duplicate cell %s in results file", k)
		}
		seen[k] = true
	}
	return f.Results, nil
}

// ReadJSONFile reads a results file from disk.
func ReadJSONFile(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rs, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// Table renders results as an aligned text table, one row per cell.
func Table(rs []Result) string {
	rows := make([][]string, 0, len(rs)+1)
	rows = append(rows, []string{"WORKLOAD", "ENGINE", "POLICY", "SEED", "IPC", "IPFC", "BR.ACC", "I$MISS", "STATUS"})
	for _, r := range rs {
		status := "ok"
		if r.Error != "" {
			status = "ERROR: " + r.Error
		}
		icm := ""
		if r.Stats != nil {
			icm = fmt.Sprintf("%.4f", r.Stats.ICacheMissRate)
		}
		rows = append(rows, []string{
			r.Workload, r.Engine, r.Policy,
			fmt.Sprintf("%d", r.Seed),
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%.3f", r.IPFC),
			fmt.Sprintf("%.4f", r.CondAccuracy),
			icm,
			status,
		})
	}
	return renderAligned(rows)
}

// renderAligned left-justifies each column to its widest entry.
func renderAligned(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
