package experiment

import (
	"testing"

	"smtfetch/internal/config"
)

// TestCellSeedGolden pins the derived simulator seed for a fixed cell set.
// Every seeded result in every checked-in multi-seed baseline depends on
// CellSeed's exact output: a refactor of the key format, the hash, or the
// mixing function would silently shift every cell's effective seed and
// invalidate all replication statistics computed over old files. If this
// test fails, the change redefines every seeded measurement — regenerate
// every baseline and say so in the PR, or don't make the change.
func TestCellSeedGolden(t *testing.T) {
	golden := []struct {
		cell Cell
		want uint64
	}{
		{Cell{"2_MIX", config.GShareBTB, config.ICount18, 1}, 7272169326305879223},
		{Cell{"2_MIX", config.StreamFetch, config.ICount18, 1}, 2537599639652374077},
		{Cell{"2_MIX", config.StreamFetch, config.ICount18, 2}, 1624851763192549053},
		{Cell{"2_MIX", config.StreamFetch, config.ICount18, 3}, 6858767517816023038},
		{Cell{"4_MIX", config.GSkewFTB, config.ICount216, 10}, 12588616905583629144},
		{Cell{"8_MIX", config.StreamFetch, config.RR28, 7}, 15212648090796173859},
	}
	for _, g := range golden {
		if got := CellSeed(g.cell); got != g.want {
			t.Errorf("CellSeed(%s) = %d, want %d — seed derivation changed; every seeded baseline is now invalid",
				g.cell.Key(), got, g.want)
		}
	}
}
