package experiment

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/stats"
)

// streamResults is a mixed fixture: full-stats cells, an error cell (nil
// Stats), a sampled cell, and an error string with HTML-escapable
// characters — every shape a merged cluster document can contain.
func streamResults() []Result {
	full := &stats.Snapshot{
		Cycles: 5000, Fetched: 9000, Committed: 8000,
		IPC: 1.6, IPFC: 1.8, AvgFetchBlockLen: 3.5,
		CondBranches: 700, CondMispredicts: 70, CondAccuracy: 0.9,
		ICacheMissRate: 0.0125,
		PerThread: []stats.ThreadSnapshot{
			{Fetched: 4500, Committed: 4000, CondAccuracy: 0.91},
			{Fetched: 4500, Committed: 4000, CondAccuracy: 0.89},
		},
	}
	return []Result{
		{Workload: "2_MIX", Engine: "smt", Policy: "ICOUNT.1.8", Seed: 1, IPC: 1.6, IPFC: 1.8, CondAccuracy: 0.9, Stats: full},
		{Workload: "2_MIX", Engine: "smt", Policy: "ICOUNT.1.8", Seed: 7, IPC: 1.61, IPFC: 1.81, CondAccuracy: 0.9, Stats: full},
		{Workload: "2_MIX", Engine: "smt", Policy: "RR.1.8", Seed: 1, Error: "engine exploded: <oob> & \"panic\""},
		{Workload: "4_INT", Engine: "smt", Policy: "ICOUNT.1.8", Seed: 1, IPC: 2.0, IPFC: 2.2, CondAccuracy: 0.95,
			SampleIntervals: 12, IPCCI95: 0.03, Stats: full},
	}
}

// TestResultStreamMatchesWriteJSON pins the cluster's streamed-merge
// correctness oracle: writing results one at a time through ResultStream
// yields the exact bytes MarshalJSONResults produces for the same slice.
func TestResultStreamMatchesWriteJSON(t *testing.T) {
	rs := streamResults()
	SortResults(rs)
	want, err := MarshalJSONResults(rs)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	s := NewResultStream(&buf)
	for _, r := range rs {
		if err := s.Write(r); err != nil {
			t.Fatalf("Write(%s): %v", r.Key(), err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("streamed document differs from WriteJSON\ngot:\n%s\nwant:\n%s", got, want)
	}
	if s.Count() != len(rs) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(rs))
	}
}

func TestResultStreamEmpty(t *testing.T) {
	want, err := MarshalJSONResults([]Result{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := NewResultStream(&buf)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("empty stream = %q, want %q", buf.Bytes(), want)
	}
	// Close is idempotent; Write after Close is an error.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Write(Result{}); err == nil || !strings.Contains(err.Error(), "after Close") {
		t.Fatalf("Write after Close = %v, want write-after-close error", err)
	}
}

// TestResultStreamRejectsOutOfOrder: the stream refuses to emit a
// document that would not match a local sweep, rather than silently
// reordering or accepting.
func TestResultStreamRejectsOutOfOrder(t *testing.T) {
	rs := streamResults()
	SortResults(rs)
	var buf bytes.Buffer
	s := NewResultStream(&buf)
	if err := s.Write(rs[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(rs[0]); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order Write = %v, want out-of-order error", err)
	}
	// A duplicate key is also out of order (not strictly greater).
	var buf2 bytes.Buffer
	s2 := NewResultStream(&buf2)
	if err := s2.Write(rs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(rs[0]); err == nil {
		t.Fatal("duplicate Write succeeded, want error")
	}
}

// TestSortCellsAgreesWithSortResults: executing cells in SortCells order
// produces results already in SortResults order — the invariant the
// coordinator's streamed merge stands on.
func TestSortCellsAgreesWithSortResults(t *testing.T) {
	var cells []Cell
	engines := []config.Engine{config.GShareBTB, config.StreamFetch, config.GSkewFTB}
	pols := []config.FetchPolicy{config.ICount18, config.RR18, config.ICount28}
	for _, w := range []string{"2_MIX", "4_INT", "2_INT"} {
		for _, e := range engines {
			for _, p := range pols {
				for _, seed := range []uint64{2, 10, 1} {
					cells = append(cells, Cell{Workload: w, Engine: e, Policy: p, Seed: seed})
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })

	SortCells(cells)
	rs := make([]Result, len(cells))
	for i, c := range cells {
		rs[i] = Result{Workload: c.Workload, Engine: c.Engine.String(), Policy: c.Policy.String(), Seed: c.Seed}
	}
	sorted := make([]Result, len(rs))
	copy(sorted, rs)
	SortResults(sorted)
	for i := range rs {
		if rs[i].Key() != sorted[i].Key() {
			t.Fatalf("order diverges at %d: SortCells gave %s, SortResults wants %s", i, rs[i].Key(), sorted[i].Key())
		}
	}
}
