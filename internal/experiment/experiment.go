// Package experiment is the sweep harness over the simulator: it expands a
// cross-product of fetch engines × fetch policies × workloads × seeds into
// cells, runs them on a bounded pool of goroutines, and aggregates the
// per-cell results into deterministically ordered, machine-readable output.
//
// Determinism is a hard requirement: each cell's effective seed is derived
// from the cell's identity (not from execution order), and the aggregated
// results are sorted by cell key, so a sweep produces bit-identical JSON
// whether it runs on one worker or sixteen, full or filtered.
package experiment

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"smtfetch"
	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/rng"
)

// Cell is one point of the sweep grid.
type Cell struct {
	Workload string
	Engine   config.Engine
	Policy   config.FetchPolicy
	// Seed is the replication-axis value (the paper's runs are
	// single-seed; multiple seeds give confidence intervals). The seed the
	// simulator actually consumes is derived from it plus the cell
	// identity; see CellSeed.
	Seed uint64
}

// Key is the cell's stable identity string, used for sorting, seed
// derivation, and matching cells across results files.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/%s/%s/%d", c.Workload, c.Engine, c.Policy, c.Seed)
}

// CellSeed derives the simulator seed for a cell. It hashes the cell's
// identity and mixes it through SplitMix64, so the effective seed depends
// only on what the cell is — never on worker count, execution order, or
// which other cells the sweep happens to contain.
func CellSeed(c Cell) uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.Key()))
	st := h.Sum64()
	s := rng.SplitMix64(&st)
	if s == 0 {
		s = 1 // Options.Seed treats 0 as "use the package default"
	}
	return s
}

// Sweep describes an experiment grid. Zero-value axes default to the
// paper's full study: all three engines, the four ICOUNT.T.W policies, and
// every Table 2 workload, one seed.
type Sweep struct {
	// Engines, Policies, Workloads, Seeds are the grid axes. Empty axes
	// take the paper defaults (Seeds defaults to {1}).
	Engines   []config.Engine      //smtfetch:nonsemantic grid axis; each cell's identity enters the keys via Cell.Key
	Policies  []config.FetchPolicy //smtfetch:nonsemantic grid axis; each cell's identity enters the keys via Cell.Key
	Workloads []string             //smtfetch:nonsemantic grid axis; each cell's identity enters the keys via Cell.Key
	Seeds     []uint64             //smtfetch:nonsemantic grid axis; each cell's identity enters the keys via Cell.Key

	// Filter, when non-nil, keeps only cells it returns true for.
	Filter func(Cell) bool //smtfetch:nonsemantic selects which cells run, never changes a cell result

	// Jobs bounds the worker pool; <= 0 means runtime.NumCPU().
	Jobs int //smtfetch:nonsemantic worker-pool size, scheduling only

	// Simulation phase lengths; zero values take the smtfetch defaults
	// (200k warmup, 1M measure, 50M max cycles). WarmupCycles adds a
	// fixed cycle-based warm-up phase after the instruction-based one.
	WarmupInstrs  uint64
	WarmupCycles  uint64
	MeasureInstrs uint64
	MaxCycles     uint64

	// Machine overrides the Table 3 configuration when non-nil.
	Machine *config.Config

	// Sample enables SMARTS-style sampled measurement per cell, in
	// smtfetch's "detail:N,skip:M" notation; empty measures every
	// instruction in full detail.
	Sample string

	// WarmFork selects warm-state checkpoint sharing across the cells of a
	// warm-up group (same workload, engine, policy shape T.W, and seed):
	// "" runs every cell cold under its own policy (the historical
	// behavior), WarmForkFork warms once per group under the canonical
	// ICOUNT policy, checkpoints, and forks every cell from the
	// checkpoint, and WarmForkRerun re-simulates the identical canonical
	// warm-up for every cell — the slow reference path whose output
	// WarmForkFork must match byte-for-byte. See warmfork.go.
	WarmFork string

	// SnapshotSource, when non-nil, mediates warm-checkpoint reuse across
	// sweeps (the server's snapshot cache tier): it receives the group's
	// warm key and a builder, and returns a cached blob or the builder's
	// output. Within one sweep checkpoints are additionally memoized per
	// warm key, so the source sees each key at most once per run.
	SnapshotSource func(key string, build func() ([]byte, error)) ([]byte, error) //smtfetch:nonsemantic checkpoint transport; blob identity is the WarmKey itself

	// OnResult, when non-nil, is called after each cell finishes with the
	// completed count, the total, and the cell's result. Calls are
	// serialized but arrive in completion order, not cell order.
	OnResult func(done, total int, r Result) //smtfetch:nonsemantic progress callback

	// snap memoizes warm checkpoints for the worker pool; set up by
	// RunCells, shared by pointer so Sweep stays copyable.
	snap *snapMemo //smtfetch:nonsemantic per-run checkpoint memo, execution mechanics
}

// Cells expands the grid into its cell list in deterministic order
// (workload, then engine, then policy, then seed, each axis in the order
// given) after applying the filter.
func (s *Sweep) Cells() []Cell {
	engines := s.Engines
	if len(engines) == 0 {
		engines = config.Engines()
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = config.FetchPolicies()
	}
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = bench.WorkloadNames()
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	cells := make([]Cell, 0, len(workloads)*len(engines)*len(policies)*len(seeds))
	for _, w := range workloads {
		for _, e := range engines {
			for _, p := range policies {
				for _, sd := range seeds {
					c := Cell{Workload: w, Engine: e, Policy: p, Seed: sd}
					if s.Filter != nil && !s.Filter(c) {
						continue
					}
					cells = append(cells, c)
				}
			}
		}
	}
	return cells
}

// Validate checks the grid before any simulation starts: every workload
// must exist and every cell's machine configuration must validate.
func (s *Sweep) Validate() error {
	_, err := s.Prepare()
	return err
}

// Prepare expands the grid once and validates the resulting cells,
// returning them so callers can hand the same list to RunCells without
// re-expanding or re-validating. This is the single place grid validation
// happens; Validate and Run are built on it.
func (s *Sweep) Prepare() ([]Cell, error) {
	cells := s.Cells()
	if err := s.validateCells(cells); err != nil {
		return nil, err
	}
	return cells, nil
}

// validateCells checks an already-expanded cell list: non-empty, no
// duplicate keys, every workload known, every machine config valid.
func (s *Sweep) validateCells(cells []Cell) error {
	if len(cells) == 0 {
		return errors.New("experiment: sweep selects no cells")
	}
	if _, err := smtfetch.ParseSample(s.Sample); err != nil {
		return err
	}
	switch s.WarmFork {
	case WarmForkOff, WarmForkFork, WarmForkRerun:
	default:
		return fmt.Errorf("experiment: unknown warm-fork mode %q (want %q or %q)", s.WarmFork, WarmForkFork, WarmForkRerun)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			return fmt.Errorf("experiment: duplicate cell %s", k)
		}
		seen[k] = true
		if _, err := bench.WorkloadByName(c.Workload); err != nil {
			return err
		}
		mc := config.Default()
		if s.Machine != nil {
			mc = *s.Machine
		}
		mc.Engine = c.Engine
		mc.FetchPolicy = c.Policy
		if err := mc.Validate(); err != nil {
			return fmt.Errorf("experiment: cell %s: %w", k, err)
		}
	}
	return nil
}

// ResultSource supplies a completed Result for a cell without executing
// the simulator, returning false when it has none. RunCells consults it
// before ExecuteCell, which lets a cache (or a remote shard) short-circuit
// cell execution without forking the worker-pool logic.
type ResultSource func(Cell) (Result, bool)

// Run expands, validates, and executes the sweep on a bounded worker pool.
// The returned results are sorted by cell key. Cells that fail are reported
// both in their Result.Error field and in the aggregated error.
func (s *Sweep) Run() ([]Result, error) {
	cells, err := s.Prepare()
	if err != nil {
		return nil, err
	}
	return s.RunCells(cells, nil)
}

// RunCells executes an already-validated cell list (from Prepare) on the
// bounded worker pool. For each cell the source, when non-nil, is asked
// first; a (Result, true) answer is used verbatim and the simulator never
// runs. Results are sorted by cell key, and failed cells are reported both
// in their Result.Error field and in the aggregated error.
func (s *Sweep) RunCells(cells []Cell, src ResultSource) ([]Result, error) {
	if s.snap == nil {
		s.snap = newSnapMemo()
	}
	jobs := s.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(cells) {
		jobs = len(cells)
	}

	results := make([]Result, len(cells))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	work := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = s.resolveCell(cells[i], src)
				if s.OnResult != nil {
					mu.Lock()
					done++
					s.OnResult(done, len(cells), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()

	SortResults(results)
	var errs []error
	for i := range results {
		if results[i].Error != "" {
			errs = append(errs, fmt.Errorf("experiment: cell %s: %s", results[i].Key(), results[i].Error))
		}
	}
	return results, errors.Join(errs...)
}

// resolveCell answers one cell from the source when it can, else executes.
func (s *Sweep) resolveCell(c Cell, src ResultSource) Result {
	if src != nil {
		if r, ok := src(c); ok {
			return r
		}
	}
	return s.ExecuteCell(c)
}

// ExecuteCell runs one cell on the simulator, bypassing any result source.
// It is the execution half of the pluggable seam: a caching source calls it
// on a miss and stores what it returns. Execution goes through run.go's
// runner variable so tests can substitute a fake simulator.
func (s *Sweep) ExecuteCell(c Cell) Result {
	return runner(s, c)
}
