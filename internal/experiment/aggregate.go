package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Summary is the replication statistics of one metric across a group's
// seeds: sample size, mean, sample standard deviation, and the two-sided
// 95% confidence interval of the mean (Student t). With fewer than two
// samples the interval degenerates to the point estimate (Stddev 0,
// CILow == CIHigh == Mean): a single run carries no spread information,
// and callers that gate on intervals must not treat n=1 groups as having
// one — Compare falls back to scalar-tolerance semantics there.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
}

// CIHalfWidth is the half-width of the 95% confidence interval; zero for
// degenerate (n < 2 or zero-variance) summaries.
func (s Summary) CIHalfWidth() float64 {
	return (s.CIHigh - s.CILow) / 2
}

// tTable95 holds the two-sided 95% Student-t critical values indexed by
// degrees of freedom (index 0 unused).
var tTable95 = [...]float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom, stepping down to the normal 1.96 for large df.
func tCrit95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df < len(tTable95):
		return tTable95[df]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// summarize computes the replication statistics of one metric. The values
// are consumed in the caller's order; Aggregate and Compare always pass
// them in SortResults order, so the floating-point sums — and therefore
// the emitted JSON — do not depend on the input file's ordering.
func summarize(vals []float64) Summary {
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	s := Summary{N: n, Mean: mean, CILow: mean, CIHigh: mean}
	if n < 2 {
		return s
	}
	var sq float64
	for _, v := range vals {
		d := v - mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(n-1))
	h := tCrit95(n-1) * s.Stddev / math.Sqrt(float64(n))
	s.CILow, s.CIHigh = mean-h, mean+h
	return s
}

// Group is the aggregate of one (workload, engine, policy) cell-group
// across the seed axis: which seeds contributed, how many cells errored
// (excluded from the statistics), and the per-metric summaries.
type Group struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Policy   string `json:"policy"`
	// Seeds lists the replications that entered the statistics, in
	// ascending order; errored cells' seeds are not included.
	Seeds []uint64 `json:"seeds"`
	// Errors counts the group's failed cells, which carry no measured
	// values and are excluded from every Summary.
	Errors int `json:"errors,omitempty"`

	IPC          Summary `json:"ipc"`
	IPFC         Summary `json:"ipfc"`
	CondAccuracy Summary `json:"cond_accuracy"`
}

// Key is the group's identity string — a cell key without the seed axis.
func (g Group) Key() string {
	return g.Workload + "/" + g.Engine + "/" + g.Policy
}

// Aggregate groups results by (workload, engine, policy) across the seed
// axis and computes replication statistics for IPC, IPFC, and conditional
// branch accuracy. Error cells are counted per group but excluded from the
// statistics. The returned groups are sorted by (workload, engine,
// policy), and the computation is deterministic in the input's multiset of
// results — input order does not matter.
func Aggregate(rs []Result) []Group {
	sorted := make([]Result, len(rs))
	copy(sorted, rs)
	SortResults(sorted)

	type bucket struct {
		g              Group
		ipc, ipfc, acc []float64
	}
	var order []string
	buckets := make(map[string]*bucket)
	for _, r := range sorted {
		gk := r.GroupKey()
		b, ok := buckets[gk]
		if !ok {
			b = &bucket{g: Group{Workload: r.Workload, Engine: r.Engine, Policy: r.Policy}}
			buckets[gk] = b
			order = append(order, gk)
		}
		if r.Error != "" {
			b.g.Errors++
			continue
		}
		b.g.Seeds = append(b.g.Seeds, r.Seed)
		b.ipc = append(b.ipc, r.IPC)
		b.ipfc = append(b.ipfc, r.IPFC)
		b.acc = append(b.acc, r.CondAccuracy)
	}

	groups := make([]Group, 0, len(order))
	for _, gk := range order {
		b := buckets[gk]
		b.g.IPC = summarize(b.ipc)
		b.g.IPFC = summarize(b.ipfc)
		b.g.CondAccuracy = summarize(b.acc)
		groups = append(groups, b.g)
	}
	return groups
}

// aggregateFile is the on-disk schema for aggregated results: a versioned
// envelope, like resultsFile, so the format can evolve without breaking
// readers.
type aggregateFile struct {
	SchemaVersion int     `json:"aggregate_schema_version"`
	Groups        []Group `json:"groups"`
}

// AggregateSchemaVersion is the current aggregate-JSON schema version.
const AggregateSchemaVersion = 1

// WriteAggregateJSON writes groups (indented, versioned) to w.
func WriteAggregateJSON(w io.Writer, gs []Group) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(aggregateFile{SchemaVersion: AggregateSchemaVersion, Groups: gs})
}

// MarshalAggregateJSON returns the canonical JSON bytes for groups.
func MarshalAggregateJSON(gs []Group) ([]byte, error) {
	var b strings.Builder
	if err := WriteAggregateJSON(&b, gs); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// ReadAggregateJSON parses an aggregate file written by WriteAggregateJSON.
func ReadAggregateJSON(r io.Reader) ([]Group, error) {
	var f aggregateFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("experiment: bad aggregate file: %w", err)
	}
	if f.SchemaVersion != AggregateSchemaVersion {
		return nil, fmt.Errorf("experiment: aggregate schema version %d, want %d", f.SchemaVersion, AggregateSchemaVersion)
	}
	return f.Groups, nil
}

// ReadAggregateJSONFile reads an aggregate file from disk.
func ReadAggregateJSONFile(path string) ([]Group, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gs, err := ReadAggregateJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gs, nil
}

// AggregateTable renders groups as an aligned text table with error bars:
// one row per (workload, engine, policy) group, the IPC mean with its
// sample stddev and 95% CI half-width across seeds. Degenerate columns
// (n < 2) render "-" rather than a fabricated zero spread.
func AggregateTable(gs []Group) string {
	rows := make([][]string, 0, len(gs)+1)
	rows = append(rows, []string{"WORKLOAD", "ENGINE", "POLICY", "N", "IPC", "IPC.SD", "IPC.CI95", "IPFC", "BR.ACC", "ERRORS"})
	for _, g := range gs {
		ipc, sd, ci, ipfc, acc := "-", "-", "-", "-", "-"
		if g.IPC.N > 0 {
			ipc = fmt.Sprintf("%.3f", g.IPC.Mean)
			ipfc = fmt.Sprintf("%.3f", g.IPFC.Mean)
			acc = fmt.Sprintf("%.4f", g.CondAccuracy.Mean)
		}
		if g.IPC.N >= 2 {
			sd = fmt.Sprintf("%.4f", g.IPC.Stddev)
			ci = fmt.Sprintf("%.4f", g.IPC.CIHalfWidth())
		}
		rows = append(rows, []string{
			g.Workload, g.Engine, g.Policy,
			fmt.Sprintf("%d", g.IPC.N),
			ipc, sd, ci, ipfc, acc,
			fmt.Sprintf("%d", g.Errors),
		})
	}
	return renderAligned(rows)
}
