// Package prog implements the synthetic program model that substitutes for
// the paper's Alpha SPECint2000 traces. A Program is a static control-flow
// graph of basic blocks (the equivalent of SMTSIM's "basic block
// dictionary", which is what allows wrong-path execution); a Stream walks a
// Program dynamically, producing the committed-path instruction trace of one
// thread, and can be forked at an arbitrary address to produce wrong-path
// instructions.
//
// Each benchmark is described by a Profile whose parameters are calibrated
// against Table 1 of the paper (average basic-block sizes) and the
// qualitative ILP/MEM classification of Table 2.
package prog

// Profile parameterizes the synthetic model of one benchmark.
type Profile struct {
	// Name is the SPEC benchmark name (e.g. "gzip").
	Name string

	// AvgBBSize is the mean basic-block size in instructions (Table 1).
	// Block sizes are drawn from a shifted geometric distribution with
	// this mean.
	AvgBBSize float64

	// StaticBlocks is the number of basic blocks in the synthetic CFG; it
	// controls the instruction footprint (I-cache and predictor-table
	// pressure). gcc is large, gzip is small.
	StaticBlocks int

	// HotFraction is the fraction of blocks that form the hot region;
	// control transfers land in the hot region with HotWeight probability.
	// This produces the loopy, localized code layout of optimized (spike)
	// binaries.
	HotFraction float64
	// HotWeight is the probability a control transfer targets the hot
	// region.
	HotWeight float64
	// LocalityWindow is the mean forward/backward jump distance in blocks
	// for branch targets, giving spatial locality in the code.
	LocalityWindow int

	// Terminator mix (fractions of blocks ending in each kind; the
	// remainder are conditional branches). Returns are structural: every
	// function's last block returns, so the dynamic return rate follows
	// the call rate.
	JumpFrac, CallFrac, IndirectFrac float64

	// Conditional-branch behaviour mix (fractions of conditional
	// branches; remainder are biased branches).
	LoopFrac float64 // loop back-edges with a per-branch trip count
	CorrFrac float64 // history-correlated branches
	// RarelyTakenFrac is the fraction of biased branches that are almost
	// never taken (error checks); these are what the FTB spans and the
	// BTB does not.
	RarelyTakenFrac float64
	// HardFrac is the fraction of biased branches with a genuinely
	// data-dependent, near-50/50 direction; it sets the benchmark's
	// misprediction floor. Real branch populations are strongly bimodal,
	// so this is small (0.05-0.15).
	HardFrac float64
	// MeanTripCount is the mean loop trip count for loop branches.
	MeanTripCount int
	// BiasMean is the mean taken-probability of ordinary biased branches.
	BiasMean float64
	// Noise is the probability a correlated branch flips its outcome,
	// bounding achievable prediction accuracy.
	Noise float64

	// Instruction class mix for non-branch instructions (fractions;
	// remainder are single-cycle integer ALU ops).
	LoadFrac, StoreFrac, MulFrac, FPFrac float64

	// MeanDepDist is the mean register-dependence distance in dynamic
	// instructions. Larger means more ILP.
	MeanDepDist float64

	// Memory behaviour: the data working set is split into a hot region
	// (cache-resident) and a cold region; loads/stores pick the cold
	// region with ColdFrac probability. ChaseFrac of cold loads are
	// pointer-chasing (address-dependent on the previous load).
	HotBytes  int
	ColdBytes int
	ColdFrac  float64
	ChaseFrac float64
	// StrideFrac of memory references are streaming (sequential lines).
	StrideFrac float64

	// MemoryBound marks the benchmark as MEM-class (Table 2
	// classification); used only for reporting.
	MemoryBound bool
}

// Validate clamps and sanity-checks profile parameters, returning a usable
// copy. It keeps example code robust against hand-built profiles.
func (p Profile) Validate() Profile {
	clamp01 := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	if p.AvgBBSize < 2 {
		p.AvgBBSize = 2
	}
	if p.StaticBlocks < 16 {
		p.StaticBlocks = 16
	}
	if p.LocalityWindow < 1 {
		p.LocalityWindow = 1
	}
	if p.MeanTripCount < 2 {
		p.MeanTripCount = 2
	}
	if p.MeanDepDist < 1 {
		p.MeanDepDist = 1
	}
	if p.HotBytes < 4096 {
		p.HotBytes = 4096
	}
	if p.ColdBytes < 4096 {
		p.ColdBytes = 4096
	}
	if p.HotFraction <= 0 || p.HotFraction > 1 {
		p.HotFraction = 0.2
	}
	clamp01(&p.HotWeight)
	clamp01(&p.JumpFrac)
	clamp01(&p.CallFrac)
	clamp01(&p.IndirectFrac)
	clamp01(&p.LoopFrac)
	clamp01(&p.CorrFrac)
	clamp01(&p.RarelyTakenFrac)
	clamp01(&p.HardFrac)
	clamp01(&p.BiasMean)
	clamp01(&p.Noise)
	clamp01(&p.LoadFrac)
	clamp01(&p.StoreFrac)
	clamp01(&p.MulFrac)
	clamp01(&p.FPFrac)
	clamp01(&p.ColdFrac)
	clamp01(&p.ChaseFrac)
	clamp01(&p.StrideFrac)
	return p
}
