package prog

import (
	"fmt"
	"sort"

	"smtfetch/internal/isa"
	"smtfetch/internal/rng"
)

// CodeBase is the address of the first basic block of every Program.
const CodeBase isa.Addr = 0x0040_0000

// Data-region bases. Hot and cold data live in disjoint regions so the
// cache behaviour of the two classes never aliases by construction.
const (
	hotDataBase  = 0x1000_0000
	coldDataBase = 0x4000_0000
	stackBase    = 0x7fff_0000
)

// branchClass distinguishes the synthetic behaviours of conditional
// branches.
type branchClass uint8

const (
	// brBiased branches are taken with a fixed per-branch probability.
	brBiased branchClass = iota
	// brLoop branches are loop back-edges: taken tripCount-1 times, then
	// not taken once.
	brLoop
	// brCorrelated branches compute their outcome from the thread's
	// recent branch history (predictable by history-based predictors,
	// subject to table aliasing).
	brCorrelated
)

// memKind distinguishes address generators.
type memKind uint8

const (
	memStride memKind = iota
	memRandom
)

// memGen is the static description of one memory instruction's address
// stream. Per-stream dynamic state (stride cursors, chase pointers) lives in
// the Stream.
type memGen struct {
	kind   memKind
	base   uint64
	size   uint64 // bytes; power-of-two not required
	stride uint64
	cold   bool
	chase  bool // load address depends on the previous load (pointer chasing)
}

// staticInstr describes one static non-terminator instruction.
type staticInstr struct {
	class   isa.Class
	dep1    uint16
	dep2    uint16
	hasDest bool
	mem     *memGen
	id      int // global static-instruction id (indexes per-stream state)
}

// terminator describes the control transfer ending a block.
type terminator struct {
	kind isa.BranchKind
	// dep1 is the branch's own input-dependence distance (a compare
	// result it consumes); it determines how late the branch resolves.
	dep1 uint16
	// class/behaviour for conditional branches.
	class     branchClass
	pTaken    float64
	tripCount int
	histMask  uint64
	noise     float64
	// target is the static target block index (conditional taken-target,
	// jump/call target). Unused for returns.
	target int
	// indirectTargets/indirectWeights describe indirect-jump target sets.
	indirectTargets []int
	indirectWeights []float64
	id              int // global static-branch id
}

// Block is one static basic block.
type Block struct {
	index int
	addr  isa.Addr
	// body holds the non-terminator instructions; the terminator is the
	// last instruction of the block.
	body []staticInstr
	term terminator
	next int // fall-through successor (layout order)
}

// Addr returns the block's start address.
func (b *Block) Addr() isa.Addr { return b.addr }

// Len returns the block size in instructions, including the terminator.
//
//smtfetch:hotpath
func (b *Block) Len() int { return len(b.body) + 1 }

// TermPC returns the address of the block's terminating branch.
//
//smtfetch:hotpath
func (b *Block) TermPC() isa.Addr {
	return b.addr + isa.Addr(len(b.body)*isa.InstrSize)
}

// Program is a complete synthetic program: the static CFG plus everything a
// Stream needs to walk it.
type Program struct {
	profile Profile
	blocks  []*Block
	// starts[i] = blocks[i].addr, for address->block binary search.
	starts []isa.Addr
	// entries lists function-entry blocks (call targets); the first
	// hotEntries of them form the hot set.
	entries    []int
	hotEntries int
	// codeEnd is the first address past the last block.
	codeEnd isa.Addr

	numStaticInstr  int
	numStaticBranch int
}

// Profile returns the profile the program was built from.
func (p *Program) Profile() Profile { return p.profile }

// NumBlocks returns the static basic-block count.
func (p *Program) NumBlocks() int { return len(p.blocks) }

// CodeBytes returns the program's instruction footprint in bytes.
func (p *Program) CodeBytes() int { return int(p.codeEnd - CodeBase) }

// Entry returns the program's entry address.
func (p *Program) Entry() isa.Addr { return p.blocks[0].addr }

// AvgStaticBBSize returns the mean static basic-block size in instructions.
func (p *Program) AvgStaticBBSize() float64 {
	total := 0
	for _, b := range p.blocks {
		total += b.Len()
	}
	return float64(total) / float64(len(p.blocks))
}

// BlockAt returns the block containing addr and the instruction offset of
// addr within it. Addresses outside the program are wrapped into it (stale
// predictor targets must still land somewhere executable, exactly as a real
// wrong path lands in real code).
//
//smtfetch:hotpath
func (p *Program) BlockAt(addr isa.Addr) (*Block, int) {
	if addr < CodeBase || addr >= p.codeEnd {
		span := uint64(p.codeEnd - CodeBase)
		addr = CodeBase + isa.Addr(uint64(addr)%span)
	}
	addr &^= isa.InstrSize - 1
	// Find the last block whose start <= addr.
	//smtfetch:allowalloc non-escaping closure: sort.Search does not retain it (escape gate verifies)
	i := sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > addr }) - 1
	if i < 0 {
		i = 0
	}
	b := p.blocks[i]
	off := int((addr - b.addr) / isa.InstrSize)
	if off >= b.Len() {
		off = b.Len() - 1
	}
	return b, off
}

// Build constructs a deterministic synthetic program for the given profile
// and seed.
func Build(profile Profile, seed uint64) *Program {
	pf := profile.Validate()
	r := rng.New(seed ^ 0xC0DE_BA5E)
	p := &Program{profile: pf}

	n := pf.StaticBlocks
	p.blocks = make([]*Block, n)
	p.starts = make([]isa.Addr, n)

	// Pass 1: sizes and addresses.
	addr := CodeBase
	for i := 0; i < n; i++ {
		bodyLen := bodySize(r, pf.AvgBBSize)
		b := &Block{
			index: i,
			addr:  addr,
			body:  make([]staticInstr, bodyLen),
			next:  (i + 1) % n,
		}
		p.blocks[i] = b
		p.starts[i] = addr
		addr += isa.Addr(b.Len() * isa.InstrSize)
	}
	p.codeEnd = addr

	// Partition blocks into functions with a mean of ~12 blocks. Every
	// function's last block is a return, and all intra-function control
	// flow stays inside the function: forward edges for ordinary
	// branches, bounded backward edges only for loop back-edges. This
	// guarantees the dynamic walk always makes progress toward the
	// return, so calls and returns balance — the property that keeps the
	// synthetic walk from collapsing into a degenerate cycle.
	var funcOf []int // block -> function index
	funcOf = make([]int, n)
	var bounds [][2]int // function -> [first, last] block
	for i := 0; i < n; {
		size := 4 + r.Intn(17) // 4..20 blocks, mean 12
		if i+size > n {
			size = n - i
		}
		for j := i; j < i+size; j++ {
			funcOf[j] = len(bounds)
		}
		p.entries = append(p.entries, i)
		bounds = append(bounds, [2]int{i, i + size - 1})
		i += size
	}

	// Hot functions: calls prefer them, concentrating the dynamic
	// footprint the way optimized layouts do.
	hotFuncs := int(pf.HotFraction * float64(len(bounds)))
	if hotFuncs < 1 {
		hotFuncs = 1
	}
	p.hotEntries = hotFuncs

	// Pass 2: bodies and terminators.
	for i := 0; i < n; i++ {
		b := p.blocks[i]
		for j := range b.body {
			b.body[j] = p.buildInstr(r, pf)
			b.body[j].id = p.numStaticInstr
			p.numStaticInstr++
		}
		fn := funcOf[i]
		lo, hi := bounds[fn][0], bounds[fn][1]
		if i == hi {
			// Function end. The empty-call-stack fallback target is
			// chosen dynamically by the Stream (a fixed one would
			// collapse the walk into a short deterministic cycle).
			b.term = terminator{kind: isa.Return}
		} else {
			b.term = p.buildTerminator(r, pf, i, lo, hi, hotFuncs)
		}
		b.term.dep1 = depDist(r, 3)
		b.term.id = p.numStaticBranch
		p.numStaticBranch++
	}
	return p
}

// bodySize draws the non-terminator instruction count of a block so that
// the block size (body+1) has the profile's mean.
func bodySize(r *rng.Rand, mean float64) int {
	// Block size = 1 (terminator) + body. A geometric body with mean
	// mean-1 gives blocks with the right mean and a realistic long tail.
	body := r.Geometric(mean - 1)
	const maxBody = 63
	if body > maxBody {
		body = maxBody
	}
	return body
}

func (p *Program) buildInstr(r *rng.Rand, pf Profile) staticInstr {
	var in staticInstr
	in.hasDest = true
	x := r.Float64()
	switch {
	case x < pf.LoadFrac:
		in.class = isa.Load
		in.mem = p.buildMemGen(r, pf, true)
	case x < pf.LoadFrac+pf.StoreFrac:
		in.class = isa.Store
		in.hasDest = false
		in.mem = p.buildMemGen(r, pf, false)
	case x < pf.LoadFrac+pf.StoreFrac+pf.MulFrac:
		in.class = isa.IntMul
	case x < pf.LoadFrac+pf.StoreFrac+pf.MulFrac+pf.FPFrac:
		in.class = isa.FPOp
	default:
		in.class = isa.IntALU
	}
	in.dep1 = depDist(r, pf.MeanDepDist)
	if r.Bool(0.45) {
		in.dep2 = depDist(r, pf.MeanDepDist*1.5)
	}
	return in
}

// depDist draws a dependence distance; 0 (no dependence) appears for a
// small fraction of instructions (immediates, loads of globals).
func depDist(r *rng.Rand, mean float64) uint16 {
	if r.Bool(0.15) {
		return 0
	}
	d := r.Geometric(mean)
	if d > 48 {
		d = 48
	}
	return uint16(d)
}

func (p *Program) buildMemGen(r *rng.Rand, pf Profile, isLoad bool) *memGen {
	g := &memGen{}
	g.cold = r.Bool(pf.ColdFrac)
	var regionBase, regionSize uint64
	if g.cold {
		regionBase, regionSize = coldDataBase, uint64(pf.ColdBytes)
	} else {
		regionBase, regionSize = hotDataBase, uint64(pf.HotBytes)
	}
	if r.Bool(pf.StrideFrac) {
		g.kind = memStride
		g.stride = 8
		// Each streaming instruction walks its own sub-range.
		span := regionSize / 4
		if span < 4096 {
			span = 4096
		}
		if span > regionSize {
			span = regionSize
		}
		g.size = span
		g.base = regionBase + (uint64(r.Intn(int(regionSize/64))) * 64 % (regionSize - span + 1))
	} else {
		g.kind = memRandom
		g.base = regionBase
		g.size = regionSize
		if isLoad && g.cold {
			g.chase = r.Bool(pf.ChaseFrac)
		}
	}
	return g
}

// buildTerminator builds a non-return terminator for block i of the
// function spanning blocks [lo, hi].
func (p *Program) buildTerminator(r *rng.Rand, pf Profile, i, lo, hi, hotFuncs int) terminator {
	var t terminator
	x := r.Float64()
	switch {
	case x < pf.JumpFrac:
		t.kind = isa.Jump
		t.target = p.pickForward(r, pf, i, hi)
	case x < pf.JumpFrac+pf.CallFrac:
		t.kind = isa.Call
		t.target = p.pickCallee(r, pf, hotFuncs)
	case x < pf.JumpFrac+pf.CallFrac+pf.IndirectFrac:
		t.kind = isa.IndirectJump
		// Indirect jumps are usually near-monomorphic in practice
		// (virtual calls with one dominant receiver): the first target
		// gets most of the weight.
		k := 2 + r.Intn(7)
		t.indirectTargets = make([]int, k)
		t.indirectWeights = make([]float64, k)
		for j := 0; j < k; j++ {
			t.indirectTargets[j] = p.pickForward(r, pf, i, hi)
			if j == 0 {
				t.indirectWeights[j] = 8
			} else {
				t.indirectWeights[j] = 0.1 + 0.5*r.Float64()
			}
		}
	default:
		t.kind = isa.CondBranch
		p.buildCondBehaviour(r, pf, &t, i, lo, hi)
	}
	return t
}

func (p *Program) buildCondBehaviour(r *rng.Rand, pf Profile, t *terminator, i, lo, hi int) {
	y := r.Float64()
	switch {
	case y < pf.LoopFrac && i > lo:
		t.class = brLoop
		t.tripCount = 2 + r.Geometric(float64(pf.MeanTripCount-1))
		t.target = p.pickBackward(r, pf, i, lo)
	case y < pf.LoopFrac+pf.CorrFrac:
		t.class = brCorrelated
		// Outcome = parity of 2..4 recent branch outcomes.
		bits := 2 + r.Intn(3)
		for b := 0; b < bits; b++ {
			t.histMask |= 1 << uint(1+r.Intn(12))
		}
		t.noise = pf.Noise
		t.target = p.pickForward(r, pf, i, hi)
	default:
		t.class = brBiased
		// Branch direction populations are strongly bimodal: most
		// branches go one way nearly always; a small HardFrac are
		// genuinely data-dependent. BiasMean sets the taken share of
		// the strongly-biased population (layout-optimized code is
		// mostly not-taken).
		z := r.Float64()
		strongTaken := (1 - pf.RarelyTakenFrac - pf.HardFrac) * pf.BiasMean
		switch {
		case z < pf.RarelyTakenFrac:
			// Error checks: almost never taken.
			t.pTaken = 0.002 + 0.02*r.Float64()
		case z < pf.RarelyTakenFrac+pf.HardFrac:
			// Data-dependent: near 50/50, the misprediction floor.
			t.pTaken = 0.25 + 0.5*r.Float64()
		case z < pf.RarelyTakenFrac+pf.HardFrac+strongTaken:
			t.pTaken = 0.95 + 0.045*r.Float64()
		default:
			t.pTaken = 0.005 + 0.045*r.Float64()
		}
		t.target = p.pickForward(r, pf, i, hi)
	}
}

// pickForward chooses a target strictly after block i, within the function
// (at most the return block hi). Forward-only edges guarantee intra-function
// progress; hops are short (skip a block or two, like an if/else) so the
// walk traverses most of a function before returning.
func (p *Program) pickForward(r *rng.Rand, pf Profile, i, hi int) int {
	j := i + 1 + r.Geometric(1.4)
	if j > hi {
		j = hi
	}
	return j
}

// pickBackward chooses a loop head in [lo, i-1].
func (p *Program) pickBackward(r *rng.Rand, pf Profile, i, lo int) int {
	d := 1 + r.Geometric(2.5)
	j := i - d
	if j < lo {
		j = lo
	}
	return j
}

// pickCallee chooses a call target: a hot-function entry with HotWeight
// probability, any function otherwise.
func (p *Program) pickCallee(r *rng.Rand, pf Profile, hotFuncs int) int {
	if r.Bool(pf.HotWeight) {
		return p.entries[r.Intn(hotFuncs)]
	}
	return p.entries[r.Intn(len(p.entries))]
}

// String summarizes the program.
func (p *Program) String() string {
	return fmt.Sprintf("prog %s: %d blocks, %d instrs, %.1fKB code, avg BB %.2f",
		p.profile.Name, len(p.blocks), p.numStaticInstr+p.numStaticBranch,
		float64(p.CodeBytes())/1024, p.AvgStaticBBSize())
}

// BranchClassAt returns a diagnostic label for the branch at pc ("loop",
// "corr", "biased", "jump", ...), used by tests and cmd/progstat.
func (p *Program) BranchClassAt(pc isa.Addr) string {
	b, off := p.BlockAt(pc)
	if off != len(b.body) {
		return "notbranch"
	}
	t := &b.term
	if t.kind != isa.CondBranch {
		return t.kind.String()
	}
	switch t.class {
	case brLoop:
		return "loop"
	case brCorrelated:
		return "corr"
	default:
		switch {
		case t.pTaken < 0.03:
			return "rare"
		case t.pTaken >= 0.25 && t.pTaken <= 0.75:
			return "hard"
		case t.pTaken > 0.75:
			return "strongT"
		default:
			return "weakNT"
		}
	}
}
