package prog

import (
	"smtfetch/internal/isa"
	"smtfetch/internal/rng"
)

// Stream walks a Program dynamically, producing one thread's instruction
// trace. The committed path of a thread is one Stream; wrong paths are
// separate Streams forked at the mispredicted target (the Program's static
// CFG plays the role of SMTSIM's basic-block dictionary).
//
// Streams expose a lookahead interface: Peek(k) returns the k-th upcoming
// instruction without consuming it, Advance(n) consumes n instructions.
// Redirect(pc) repositions the stream (used on wrong paths, where the
// front-end steers the walk along the predicted path).
type Stream struct {
	prog *Program //smtfetch:transient static program; decode re-resolves the block pointer through it
	r    *rng.Rand

	blk *Block
	off int

	// Dynamic per-static-object state.
	loopCounts map[int]int
	strideOffs map[int]uint64
	callStack  []isa.Addr
	// hist is the truth outcome history of conditional branches, consumed
	// by correlated branch behaviours.
	hist uint64
	// sinceLoad counts instructions since the last load, for
	// pointer-chase dependence distances.
	sinceLoad int

	// buf is the lookahead buffer; buf[head:] are pending instructions.
	buf  []isa.Instruction
	head int

	// Generated counts instructions produced since creation.
	Generated uint64
	// TakenBranches / Branches count dynamic control-flow statistics.
	Branches      uint64
	TakenBranches uint64
}

// maxCallStack bounds the modelled call depth; deeper calls drop the oldest
// frame, like a real RAS would wrap.
const maxCallStack = 256

// NewStream returns a Stream positioned at the program entry.
func (p *Program) NewStream(seed uint64) *Stream {
	return p.newStream(seed, p.Entry())
}

// NewStreamAt returns a Stream positioned at pc, used for wrong-path
// generation. Its dynamic state (loop counters, call stack, history) starts
// empty: a wrong path has no meaningful architectural state.
func (p *Program) NewStreamAt(seed uint64, pc isa.Addr) *Stream {
	return p.newStream(seed, pc)
}

func (p *Program) newStream(seed uint64, pc isa.Addr) *Stream {
	s := &Stream{
		prog:       p,
		r:          rng.New(seed ^ 0x5EED_57EA),
		loopCounts: make(map[int]int),
		strideOffs: make(map[int]uint64),
	}
	s.blk, s.off = p.BlockAt(pc)
	return s
}

// Peek returns the k-th upcoming instruction (k=0 is next). The returned
// pointer is valid until the next Advance/Redirect.
//
//smtfetch:hotpath
func (s *Stream) Peek(k int) *isa.Instruction {
	for len(s.buf)-s.head <= k {
		//smtfetch:allowalloc lookahead buffer is compacted at 4096: capacity converges to the compaction bound
		s.buf = append(s.buf, s.gen())
	}
	return &s.buf[s.head+k]
}

// PC returns the address of the next instruction.
//
//smtfetch:hotpath
func (s *Stream) PC() isa.Addr { return s.Peek(0).PC }

// Advance consumes n instructions.
//
//smtfetch:hotpath
func (s *Stream) Advance(n int) {
	for len(s.buf)-s.head < n {
		//smtfetch:allowalloc lookahead buffer is compacted at 4096: capacity converges to the compaction bound
		s.buf = append(s.buf, s.gen())
	}
	s.head += n
	// Compact the buffer occasionally to bound growth.
	if s.head >= 4096 {
		//smtfetch:allowalloc lookahead buffer is compacted at 4096: capacity converges to the compaction bound
		s.buf = append(s.buf[:0], s.buf[s.head:]...)
		s.head = 0
	}
}

// Redirect repositions the stream at pc, discarding buffered lookahead.
// Wrong-path streams are redirected to follow the predicted path after
// every predicted branch.
//
//smtfetch:hotpath
func (s *Stream) Redirect(pc isa.Addr) {
	s.buf = s.buf[:0]
	s.head = 0
	s.blk, s.off = s.prog.BlockAt(pc)
}

// gen materializes the next instruction at the walk position and advances
// the position.
//
//smtfetch:hotpath
func (s *Stream) gen() isa.Instruction {
	b := s.blk
	s.Generated++
	s.sinceLoad++
	if s.off < len(b.body) {
		si := &b.body[s.off]
		in := isa.Instruction{
			PC:      b.addr + isa.Addr(s.off*isa.InstrSize),
			PathSeq: s.Generated,
			Class:   si.class,
			Dep1:    si.dep1,
			Dep2:    si.dep2,
			HasDest: si.hasDest,
		}
		if si.mem != nil {
			in.EffAddr = s.memAddr(si)
			if si.mem.chase && s.sinceLoad < 48 {
				// Pointer chase: address depends on the previous load.
				in.Dep1 = uint16(s.sinceLoad)
			}
		}
		if si.class == isa.Load {
			s.sinceLoad = 0
		}
		s.off++
		return in
	}

	// Terminator.
	t := &b.term
	pc := b.TermPC()
	in := isa.Instruction{
		PC:          pc,
		PathSeq:     s.Generated,
		Class:       isa.Branch,
		BrKind:      t.kind,
		Dep1:        t.dep1,
		FallThrough: pc + isa.InstrSize,
	}
	s.Branches++
	var nextBlk *Block
	switch t.kind {
	case isa.CondBranch:
		in.Taken = s.condOutcome(t)
		s.hist = s.hist<<1 | boolBit(in.Taken)
		if in.Taken {
			nextBlk = s.prog.blocks[t.target]
			in.Target = nextBlk.addr
		} else {
			nextBlk = s.prog.blocks[b.next]
		}
	case isa.Jump:
		in.Taken = true
		nextBlk = s.prog.blocks[t.target]
		in.Target = nextBlk.addr
	case isa.Call:
		in.Taken = true
		in.HasDest = true // writes the return-address register
		nextBlk = s.prog.blocks[t.target]
		in.Target = nextBlk.addr
		ra := in.FallThrough
		if len(s.callStack) >= maxCallStack {
			copy(s.callStack, s.callStack[1:])
			s.callStack = s.callStack[:len(s.callStack)-1]
		}
		//smtfetch:allowalloc callStack is capped at maxCallStack by the shift above; capacity converges to the cap
		s.callStack = append(s.callStack, ra)
	case isa.Return:
		in.Taken = true
		var ra isa.Addr
		if n := len(s.callStack); n > 0 {
			ra = s.callStack[n-1]
			s.callStack = s.callStack[:n-1]
		} else {
			// Empty call stack: the walk restarts in a random hot
			// function (the synthetic equivalent of the benchmark's
			// main loop dispatching new work).
			e := s.prog.entries[s.r.Intn(s.prog.hotEntries)]
			ra = s.prog.blocks[e].addr
		}
		in.Target = ra
		nb, _ := s.prog.BlockAt(ra)
		nextBlk = nb
		// Reposition precisely (the return address may be mid-block
		// only when the fallback target was used; BlockAt handles it).
		s.blk = nextBlk
		s.off = int((ra - nextBlk.addr) / isa.InstrSize)
		if s.off >= nextBlk.Len() {
			s.off = 0
		}
		if in.Taken {
			s.TakenBranches++
		}
		return in
	case isa.IndirectJump:
		in.Taken = true
		i := s.r.Pick(t.indirectWeights)
		nextBlk = s.prog.blocks[t.indirectTargets[i]]
		in.Target = nextBlk.addr
	}
	if in.Taken {
		s.TakenBranches++
	}
	s.blk = nextBlk
	s.off = 0
	return in
}

//smtfetch:hotpath
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// condOutcome evaluates a conditional branch's synthetic behaviour.
//
//smtfetch:hotpath
func (s *Stream) condOutcome(t *terminator) bool {
	switch t.class {
	case brLoop:
		c := s.loopCounts[t.id]
		taken := c < t.tripCount-1
		if taken {
			//smtfetch:allowalloc loopCounts is keyed by static branch id: bounded by the program's static footprint
			s.loopCounts[t.id] = c + 1
		} else {
			//smtfetch:allowalloc loopCounts is keyed by static branch id: bounded by the program's static footprint
			s.loopCounts[t.id] = 0
		}
		return taken
	case brCorrelated:
		out := popcount(s.hist&t.histMask)&1 == 1
		if s.r.Bool(t.noise) {
			out = !out
		}
		return out
	default: // brBiased
		return s.r.Bool(t.pTaken)
	}
}

//smtfetch:hotpath
func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// memAddr computes the next effective address for a static memory
// instruction.
//
//smtfetch:hotpath
func (s *Stream) memAddr(si *staticInstr) isa.Addr {
	g := si.mem
	switch g.kind {
	case memStride:
		off := s.strideOffs[si.id]
		//smtfetch:allowalloc strideOffs is keyed by static instruction id: bounded by the program's static footprint
		s.strideOffs[si.id] = off + g.stride
		return isa.Addr(g.base + off%g.size)
	default: // memRandom
		return isa.Addr(g.base + uint64(s.r.Int63n(int64(g.size)))&^7)
	}
}
