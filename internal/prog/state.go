package prog

// Warm-state snapshot encoders for Stream: the Program (static CFG) is
// rebuilt from the profile and seed by the caller; only the dynamic walk
// state is serialized. Dynamic maps are serialized as sorted key/value
// pairs so the byte stream is independent of Go's map iteration order.
//
// Cold-path code, outside the cycle loop.

import (
	"sort"

	"smtfetch/internal/isa"
	"smtfetch/internal/snap"
)

func encodeIntMap(w *snap.Writer, m map[int]int) {
	keys := make([]int, 0, len(m))
	//smtfetch:commutative keys are collected and sorted before encoding
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.Int(m[k])
	}
}

func encodeU64Map(w *snap.Writer, m map[int]uint64) {
	keys := make([]int, 0, len(m))
	//smtfetch:commutative keys are collected and sorted before encoding
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k)
		w.U64(m[k])
	}
}

// EncodeState serializes the stream's dynamic walk state. The lookahead
// buffer is written with the consumed prefix dropped (head normalized to
// zero), which is behaviourally identical and keeps the artifact compact.
func (s *Stream) EncodeState(w *snap.Writer) {
	st := s.r.State()
	for _, v := range st {
		w.U64(v)
	}
	w.Int(s.blk.index)
	w.Int(s.off)
	encodeIntMap(w, s.loopCounts)
	encodeU64Map(w, s.strideOffs)
	w.U64(uint64(len(s.callStack)))
	for _, a := range s.callStack {
		w.U64(uint64(a))
	}
	w.U64(s.hist)
	w.Int(s.sinceLoad)
	pending := s.buf[s.head:]
	w.U64(uint64(len(pending)))
	for i := range pending {
		pending[i].EncodeState(w)
	}
	w.U64(s.Generated)
	w.U64(s.Branches)
	w.U64(s.TakenBranches)
}

// DecodeState restores the stream's dynamic walk state. The receiver must
// have been built over the identical Program.
func (s *Stream) DecodeState(r *snap.Reader) {
	var st [4]uint64
	for i := range st {
		st[i] = r.U64()
	}
	s.r.SetState(st)
	bi := r.Int()
	if r.Err() != nil {
		return
	}
	if bi < 0 || bi >= len(s.prog.blocks) {
		r.Fail("prog: block index %d out of range (%d blocks)", bi, len(s.prog.blocks))
		return
	}
	s.blk = s.prog.blocks[bi]
	s.off = r.Int()
	n := r.Len()
	clear(s.loopCounts)
	for i := 0; i < n; i++ {
		k := r.Int()
		s.loopCounts[k] = r.Int()
	}
	n = r.Len()
	clear(s.strideOffs)
	for i := 0; i < n; i++ {
		k := r.Int()
		s.strideOffs[k] = r.U64()
	}
	n = r.Len()
	if r.Err() != nil {
		return
	}
	s.callStack = s.callStack[:0]
	for i := 0; i < n; i++ {
		s.callStack = append(s.callStack, isa.Addr(r.U64()))
	}
	s.hist = r.U64()
	s.sinceLoad = r.Int()
	n = r.Len()
	if r.Err() != nil {
		return
	}
	s.buf = s.buf[:0]
	s.head = 0
	for i := 0; i < n; i++ {
		var in isa.Instruction
		in.DecodeState(r)
		s.buf = append(s.buf, in)
	}
	s.Generated = r.U64()
	s.Branches = r.U64()
	s.TakenBranches = r.U64()
}
