// Package bpred implements the branch-prediction structures used by the
// three fetch engines: gshare and gskew direction predictors, the branch
// target buffer (BTB), the fetch target buffer (FTB), per-thread return
// address stacks, and the two-level stream predictor with DOLC path
// indexing.
//
// All predictors separate prediction (speculative, at the front-end) from
// update (at commit), so wrong-path execution never trains the tables;
// speculative history is managed by the caller via checkpoints.
package bpred

import "smtfetch/internal/isa"

// counter is a 2-bit saturating counter; values 0..3, taken when >= 2.
type counter uint8

//smtfetch:hotpath
func (c counter) taken() bool { return c >= 2 }

//smtfetch:hotpath
func (c counter) inc() counter {
	if c < 3 {
		return c + 1
	}
	return c
}

//smtfetch:hotpath
func (c counter) dec() counter {
	if c > 0 {
		return c - 1
	}
	return c
}

// DirPredictor predicts conditional-branch directions from (PC, global
// history) pairs. It is a conformance contract for tests and external
// callers only: the fetch engines hold the concrete predictor types
// (*GShare, *GSkew) and call Predict/Update statically, so the per-branch
// hot path never pays interface dispatch.
type DirPredictor interface {
	// Predict returns the predicted direction for the branch at pc with
	// global history hist.
	Predict(pc isa.Addr, hist uint64) bool
	// Update trains the predictor with the resolved direction, using the
	// history the prediction was made with.
	Update(pc isa.Addr, hist uint64, taken bool)
}

// GShare is McFarling's gshare: a single table of 2-bit counters indexed by
// PC XOR global history. With one 64K-entry table and 16 bits of history it
// matches the paper's Table 3 budget.
type GShare struct {
	table    []counter
	mask     uint64 //smtfetch:transient derived index mask, fixed at construction
	histMask uint64 //smtfetch:transient derived history mask, fixed at construction
}

// NewGShare returns a gshare predictor with the given table size (a power
// of two) and history length in bits. Counters start weakly taken-biased
// off (01), the conventional initialization.
func NewGShare(entries, historyBits int) *GShare {
	g := &GShare{
		table:    make([]counter, entries),
		mask:     uint64(entries - 1),
		histMask: (1 << uint(historyBits)) - 1,
	}
	for i := range g.table {
		g.table[i] = 1
	}
	return g
}

//smtfetch:hotpath
func (g *GShare) index(pc isa.Addr, hist uint64) uint64 {
	return ((uint64(pc) >> 2) ^ (hist & g.histMask)) & g.mask
}

// Predict implements DirPredictor.
//
//smtfetch:hotpath
func (g *GShare) Predict(pc isa.Addr, hist uint64) bool {
	return g.table[g.index(pc, hist)].taken()
}

// Update implements DirPredictor.
//
//smtfetch:hotpath
func (g *GShare) Update(pc isa.Addr, hist uint64, taken bool) {
	i := g.index(pc, hist)
	if taken {
		g.table[i] = g.table[i].inc()
	} else {
		g.table[i] = g.table[i].dec()
	}
}

// GSkew is the skewed predictor of Michaud, Seznec and Uhlig: three banks of
// 2-bit counters indexed by three different hash functions of (PC, history);
// the prediction is the majority vote. Skewing de-correlates conflict
// aliasing across banks, which is exactly the advantage over gshare that
// the paper exploits.
type GSkew struct {
	banks    [3][]counter
	mask     uint64 //smtfetch:transient derived index mask, fixed at construction
	histMask uint64 //smtfetch:transient derived history mask, fixed at construction
}

// NewGSkew returns a gskew predictor with three banks of `entries` counters
// each (Table 3: 3 x 32K, 15-bit history).
func NewGSkew(entries, historyBits int) *GSkew {
	g := &GSkew{
		mask:     uint64(entries - 1),
		histMask: (1 << uint(historyBits)) - 1,
	}
	for b := range g.banks {
		g.banks[b] = make([]counter, entries)
		for i := range g.banks[b] {
			g.banks[b][i] = 1
		}
	}
	return g
}

// The skewing functions play the role of the H/H^-1 construction of the
// original paper: each bank sees a differently-mixed combination of PC and
// history, so two (PC, history) pairs that collide in one bank very likely
// differ in the other two. Bank 0 uses the plain gshare index; the other
// banks apply distinct bijective multiplicative mixes before truncation.
// indices computes all three bank indices in one straight-line pass — the
// shared gshare term is hashed once and no per-bank branch is taken, which
// keeps the per-prediction path flat and inlinable.
//
//smtfetch:hotpath
func (g *GSkew) indices(pc isa.Addr, hist uint64) (uint64, uint64, uint64) {
	x := (uint64(pc) >> 2) ^ (hist & g.histMask)
	x1 := x * 0x9e3779b97f4a7c15 // odd => bijective on 64 bits
	x1 ^= x1 >> 29
	x2 := x * 0xc2b2ae3d27d4eb4f
	x2 ^= x2 >> 31
	return x & g.mask, x1 & g.mask, x2 & g.mask
}

// Predict implements DirPredictor (majority of the three banks).
//
//smtfetch:hotpath
func (g *GSkew) Predict(pc isa.Addr, hist uint64) bool {
	i0, i1, i2 := g.indices(pc, hist)
	votes := 0
	if g.banks[0][i0].taken() {
		votes++
	}
	if g.banks[1][i1].taken() {
		votes++
	}
	if g.banks[2][i2].taken() {
		votes++
	}
	return votes >= 2
}

// Update implements DirPredictor. All banks are trained (total update
// policy; the partial-update variant changes little at these sizes).
//
//smtfetch:hotpath
func (g *GSkew) Update(pc isa.Addr, hist uint64, taken bool) {
	i0, i1, i2 := g.indices(pc, hist)
	if taken {
		g.banks[0][i0] = g.banks[0][i0].inc()
		g.banks[1][i1] = g.banks[1][i1].inc()
		g.banks[2][i2] = g.banks[2][i2].inc()
	} else {
		g.banks[0][i0] = g.banks[0][i0].dec()
		g.banks[1][i1] = g.banks[1][i1].dec()
		g.banks[2][i2] = g.banks[2][i2].dec()
	}
}

// Bimodal is a PC-indexed table of 2-bit counters, used by tests as a
// baseline and by the stream predictor's hysteresis.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with `entries` counters.
func NewBimodal(entries int) *Bimodal {
	b := &Bimodal{table: make([]counter, entries), mask: uint64(entries - 1)}
	for i := range b.table {
		b.table[i] = 1
	}
	return b
}

// Predict implements DirPredictor (history is ignored).
//
//smtfetch:hotpath
func (b *Bimodal) Predict(pc isa.Addr, _ uint64) bool {
	return b.table[(uint64(pc)>>2)&b.mask].taken()
}

// Update implements DirPredictor.
//
//smtfetch:hotpath
func (b *Bimodal) Update(pc isa.Addr, _ uint64, taken bool) {
	i := (uint64(pc) >> 2) & b.mask
	if taken {
		b.table[i] = b.table[i].inc()
	} else {
		b.table[i] = b.table[i].dec()
	}
}
