package bpred

// Checkpoint (warm-state snapshot) encoders and decoders. Geometry
// (table sizes, associativity, masks) is rebuilt from the configuration by
// the caller; only dynamic contents are serialized. Decoders validate the
// dynamic state against the receiver's geometry so a snapshot taken under
// a different configuration fails loudly instead of corrupting tables.
//
// All of this is cold-path code: it runs once per warm-up group, never
// inside the cycle loop.

import (
	"smtfetch/internal/isa"
	"smtfetch/internal/snap"
)

func encodeCounters(w *snap.Writer, cs []counter) {
	w.U64(uint64(len(cs)))
	for _, c := range cs {
		w.U8(uint8(c))
	}
}

func decodeCounters(r *snap.Reader, cs []counter) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != len(cs) {
		r.Fail("bpred: counter table length %d, snapshot has %d", len(cs), n)
		return
	}
	for i := range cs {
		cs[i] = counter(r.U8())
	}
}

// EncodeState serializes the gshare counter table.
func (g *GShare) EncodeState(w *snap.Writer) { encodeCounters(w, g.table) }

// DecodeState restores the gshare counter table.
func (g *GShare) DecodeState(r *snap.Reader) { decodeCounters(r, g.table) }

// EncodeState serializes the three gskew banks.
func (g *GSkew) EncodeState(w *snap.Writer) {
	for b := range g.banks {
		encodeCounters(w, g.banks[b])
	}
}

// DecodeState restores the three gskew banks.
func (g *GSkew) DecodeState(r *snap.Reader) {
	for b := range g.banks {
		decodeCounters(r, g.banks[b])
	}
}

// EncodeState serializes the BTB contents and hit statistics.
func (b *BTB) EncodeState(w *snap.Writer) {
	w.U64(uint64(len(b.tags)))
	for i := range b.tags {
		w.U64(b.tags[i])
		w.Bool(b.valid[i])
		w.U8(uint8(b.data[i].Kind))
		w.U64(uint64(b.data[i].Target))
		w.U64(b.lru[i])
	}
	w.U64(b.stamp)
	w.U64(b.Lookups)
	w.U64(b.Hits)
}

// DecodeState restores the BTB contents and hit statistics.
func (b *BTB) DecodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != len(b.tags) {
		r.Fail("bpred: BTB size %d, snapshot has %d", len(b.tags), n)
		return
	}
	for i := range b.tags {
		b.tags[i] = r.U64()
		b.valid[i] = r.Bool()
		b.data[i].Kind = isa.BranchKind(r.U8())
		b.data[i].Target = isa.Addr(r.U64())
		b.lru[i] = r.U64()
	}
	b.stamp = r.U64()
	b.Lookups = r.U64()
	b.Hits = r.U64()
}

// EncodeState serializes the FTB contents and hit statistics.
func (f *FTB) EncodeState(w *snap.Writer) {
	w.U64(uint64(len(f.tags)))
	for i := range f.tags {
		w.U64(f.tags[i])
		w.Bool(f.valid[i])
		w.Int(f.data[i].Instrs)
		w.U8(uint8(f.data[i].Kind))
		w.U64(uint64(f.data[i].Target))
		w.U8(f.data[i].fallthroughs)
		w.U64(f.lru[i])
	}
	w.U64(f.stamp)
	w.U64(f.Lookups)
	w.U64(f.Hits)
}

// DecodeState restores the FTB contents and hit statistics.
func (f *FTB) DecodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != len(f.tags) {
		r.Fail("bpred: FTB size %d, snapshot has %d", len(f.tags), n)
		return
	}
	for i := range f.tags {
		f.tags[i] = r.U64()
		f.valid[i] = r.Bool()
		f.data[i].Instrs = r.Int()
		f.data[i].Kind = isa.BranchKind(r.U8())
		f.data[i].Target = isa.Addr(r.U64())
		f.data[i].fallthroughs = r.U8()
		f.lru[i] = r.U64()
	}
	f.stamp = r.U64()
	f.Lookups = r.U64()
	f.Hits = r.U64()
}

// EncodeState serializes the RAS entries and stack position.
func (r *RAS) EncodeState(w *snap.Writer) {
	w.U64(uint64(len(r.entries)))
	for _, e := range r.entries {
		w.U64(uint64(e))
	}
	w.Int(r.top)
	w.Int(r.depth)
}

// DecodeState restores the RAS entries and stack position.
func (r *RAS) DecodeState(rd *snap.Reader) {
	n := rd.Len()
	if rd.Err() != nil {
		return
	}
	if n != len(r.entries) {
		rd.Fail("bpred: RAS size %d, snapshot has %d", len(r.entries), n)
		return
	}
	for i := range r.entries {
		r.entries[i] = isa.Addr(rd.U64())
	}
	r.top = rd.Int()
	r.depth = rd.Int()
}

// EncodeValue serializes a RAS checkpoint value (embedded in FTQ branch
// records, whose fields are unexported outside this package).
func (cp RASCheckpoint) EncodeValue(w *snap.Writer) {
	w.Int(cp.top)
	w.Int(cp.depth)
	w.U64(uint64(cp.val))
}

// DecodeRASCheckpoint reads a checkpoint written with EncodeValue.
func DecodeRASCheckpoint(r *snap.Reader) RASCheckpoint {
	var cp RASCheckpoint
	cp.top = r.Int()
	cp.depth = r.Int()
	cp.val = isa.Addr(r.U64())
	return cp
}

// EncodeValue serializes a path history value.
func (p PathHistory) EncodeValue(w *snap.Writer) {
	for _, v := range p.ring {
		w.U32(v)
	}
	w.U8(p.pos)
}

// DecodePathHistory reads a path history written with EncodeValue.
func DecodePathHistory(r *snap.Reader) PathHistory {
	var p PathHistory
	for i := range p.ring {
		p.ring[i] = r.U32()
	}
	p.pos = r.U8()
	return p
}

func (t *streamTable) encodeState(w *snap.Writer) {
	w.U64(uint64(len(t.tags)))
	for i := range t.tags {
		w.U64(t.tags[i])
		w.Bool(t.valid[i])
		w.Int(t.data[i].pred.Length)
		w.U64(uint64(t.data[i].pred.Next))
		w.Bool(t.data[i].pred.EndsInReturn)
		w.Bool(t.data[i].pred.EndsInCall)
		w.U8(uint8(t.data[i].conf))
		w.U64(t.lru[i])
	}
	w.U64(t.stamp)
}

func (t *streamTable) decodeState(r *snap.Reader) {
	n := r.Len()
	if r.Err() != nil {
		return
	}
	if n != len(t.tags) {
		r.Fail("bpred: stream table size %d, snapshot has %d", len(t.tags), n)
		return
	}
	for i := range t.tags {
		t.tags[i] = r.U64()
		t.valid[i] = r.Bool()
		t.data[i].pred.Length = r.Int()
		t.data[i].pred.Next = isa.Addr(r.U64())
		t.data[i].pred.EndsInReturn = r.Bool()
		t.data[i].pred.EndsInCall = r.Bool()
		t.data[i].conf = counter(r.U8())
		t.lru[i] = r.U64()
	}
	t.stamp = r.U64()
}

// EncodeState serializes both stream-table levels and the lookup
// statistics.
func (s *StreamPredictor) EncodeState(w *snap.Writer) {
	s.l1.encodeState(w)
	s.l2.encodeState(w)
	w.U64(s.Lookups)
	w.U64(s.L2Hits)
	w.U64(s.L1Hits)
}

// DecodeState restores both stream-table levels and the lookup
// statistics.
func (s *StreamPredictor) DecodeState(r *snap.Reader) {
	s.l1.decodeState(r)
	s.l2.decodeState(r)
	s.Lookups = r.U64()
	s.L2Hits = r.U64()
	s.L1Hits = r.U64()
}
