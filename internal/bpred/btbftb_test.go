package bpred

import (
	"testing"

	"smtfetch/internal/isa"
)

func TestBTBInsertThenHit(t *testing.T) {
	b := NewBTB(64, 4)
	const pc isa.Addr = 0x1000
	if _, ok := b.Lookup(pc); ok {
		t.Fatal("empty BTB reported a hit")
	}
	want := BTBEntry{Kind: isa.CondBranch, Target: 0x2000}
	b.Insert(pc, want)
	got, ok := b.Lookup(pc)
	if !ok || got != want {
		t.Fatalf("Lookup = %+v,%v, want %+v,true", got, ok, want)
	}
	// Updating in place must not allocate a second way.
	want.Target = 0x3000
	b.Insert(pc, want)
	if got, ok := b.Lookup(pc); !ok || got.Target != 0x3000 {
		t.Fatalf("after update Lookup = %+v,%v, want target 0x3000", got, ok)
	}
	if b.Lookups != 3 || b.Hits != 2 {
		t.Fatalf("Lookups/Hits = %d/%d, want 3/2", b.Lookups, b.Hits)
	}
}

func TestBTBEvictsLRUWithinSet(t *testing.T) {
	// 4 sets x 2 ways; PCs are word-addressed, so pc>>2 selects the set.
	b := NewBTB(8, 2)
	set := func(i int) isa.Addr { return isa.Addr(i * 4 * 4) } // same set 0
	b.Insert(set(1), BTBEntry{Target: 0x10})
	b.Insert(set(2), BTBEntry{Target: 0x20})
	b.Lookup(set(1)) // refresh 1 so 2 becomes LRU
	b.Insert(set(3), BTBEntry{Target: 0x30})
	if _, ok := b.Lookup(set(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := b.Lookup(set(1)); !ok {
		t.Fatal("MRU entry was evicted")
	}
	if _, ok := b.Lookup(set(3)); !ok {
		t.Fatal("newly inserted entry missing")
	}
}

func TestFTBTrainThenHit(t *testing.T) {
	f := NewFTB(64, 4)
	const start isa.Addr = 0x4000
	if _, ok := f.Lookup(start); ok {
		t.Fatal("empty FTB reported a hit")
	}
	f.Train(start, 12, isa.CondBranch, 0x5000)
	e, ok := f.Lookup(start)
	if !ok {
		t.Fatal("trained block missing")
	}
	if e.Instrs != 12 || e.Kind != isa.CondBranch || e.Target != 0x5000 {
		t.Fatalf("entry = %+v, want {12 CondBranch 0x5000}", e)
	}
}

func TestFTBTrainClampsLength(t *testing.T) {
	f := NewFTB(64, 4)
	f.Train(0x100, 0, isa.CondBranch, 0x200)
	if e, _ := f.Lookup(0x100); e.Instrs != 1 {
		t.Fatalf("zero-length block stored as %d instrs, want clamp to 1", e.Instrs)
	}
	f.Train(0x300, MaxFTBBlock+100, isa.CondBranch, 0x400)
	if e, _ := f.Lookup(0x300); e.Instrs != MaxFTBBlock {
		t.Fatalf("oversized block stored as %d instrs, want clamp to %d", e.Instrs, MaxFTBBlock)
	}
}

func TestFTBFallthroughInvalidation(t *testing.T) {
	f := NewFTB(64, 4)
	const start isa.Addr = 0x4000
	f.Train(start, 8, isa.CondBranch, 0x5000)
	// ftbMaxFallthroughs-1 not-taken outcomes keep the entry alive...
	for i := 0; i < ftbMaxFallthroughs-1; i++ {
		if f.Fallthrough(start) {
			t.Fatalf("entry invalidated after only %d fallthroughs", i+1)
		}
	}
	// ...a taken outcome resets the hysteresis...
	f.TakenReset(start)
	for i := 0; i < ftbMaxFallthroughs-1; i++ {
		if f.Fallthrough(start) {
			t.Fatal("TakenReset did not clear the fallthrough count")
		}
	}
	// ...and saturating it drops the entry.
	if !f.Fallthrough(start) {
		t.Fatal("saturating fallthroughs did not invalidate")
	}
	if _, ok := f.Lookup(start); ok {
		t.Fatal("invalidated entry still hits")
	}
	// Fallthrough on a missing block is a no-op.
	if f.Fallthrough(0xDEAD0) {
		t.Fatal("Fallthrough on missing entry reported invalidation")
	}
}
