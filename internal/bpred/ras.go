package bpred

import "smtfetch/internal/isa"

// RAS is a circular return address stack. Table 3 replicates a 64-entry RAS
// per thread. Speculative pushes/pops are repaired after a squash with the
// standard top-of-stack checkpoint: restoring the top index plus the entry
// it points at fixes the common corruption patterns.
type RAS struct {
	entries []isa.Addr
	top     int // index of the current top element; -1 when empty
	depth   int // number of live entries (saturates at capacity)
}

// NewRAS returns an empty RAS with n entries.
func NewRAS(n int) *RAS {
	return &RAS{entries: make([]isa.Addr, n), top: -1}
}

// Push records a return address on a call.
//
//smtfetch:hotpath
func (r *RAS) Push(a isa.Addr) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = a
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts a return target. Popping an empty RAS returns 0 and false.
//
//smtfetch:hotpath
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.depth == 0 {
		return 0, false
	}
	a := r.entries[r.top]
	r.top--
	if r.top < 0 {
		r.top += len(r.entries)
	}
	r.depth--
	return a, true
}

// Top returns the current top without popping.
func (r *RAS) Top() (isa.Addr, bool) {
	if r.depth == 0 {
		return 0, false
	}
	return r.entries[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Checkpoint captures the repair state: top index, depth, and the value on
// top.
type RASCheckpoint struct {
	top   int
	depth int
	val   isa.Addr
}

// Checkpoint captures the current repair state.
//
//smtfetch:hotpath
func (r *RAS) Checkpoint() RASCheckpoint {
	cp := RASCheckpoint{top: r.top, depth: r.depth}
	if r.depth > 0 {
		cp.val = r.entries[r.top]
	}
	return cp
}

// Restore rewinds the RAS to a checkpoint.
//
//smtfetch:hotpath
func (r *RAS) Restore(cp RASCheckpoint) {
	r.top = cp.top
	r.depth = cp.depth
	if cp.depth > 0 && cp.top >= 0 {
		r.entries[cp.top] = cp.val
	}
}
