package bpred

import "smtfetch/internal/isa"

// MaxStreamLen caps the stream length a predictor entry may describe
// (streams longer than the fetch width are delivered over several cycles).
const MaxStreamLen = 64

// StreamPrediction is the stream predictor's output: fetch Length
// instructions starting at the requested address, then continue at Next.
type StreamPrediction struct {
	// Length is the stream length in instructions, terminating branch
	// included.
	Length int
	// Next is the predicted next-stream start (the terminating taken
	// branch's target).
	Next isa.Addr
	// EndsInReturn marks streams terminated by a return; the next-stream
	// address should come from the RAS instead of Next.
	EndsInReturn bool
	// EndsInCall marks streams terminated by a call (the front-end must
	// push the return address).
	EndsInCall bool
}

type streamEntry struct {
	pred StreamPrediction
	conf counter
}

// streamTable is one set-associative stream table.
type streamTable struct {
	assoc int //smtfetch:transient geometry, fixed at construction
	sets  int //smtfetch:transient geometry, fixed at construction
	tags  []uint64
	valid []bool
	data  []streamEntry
	lru   []uint64
	stamp uint64
}

func newStreamTable(entries, assoc int) *streamTable {
	sets := entries / assoc
	n := sets * assoc
	return &streamTable{
		assoc: assoc,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		data:  make([]streamEntry, n),
		lru:   make([]uint64, n),
	}
}

//smtfetch:hotpath
func (t *streamTable) set(key uint64) int { return int(key % uint64(t.sets)) }

//smtfetch:hotpath
func (t *streamTable) tagOf(key uint64) uint64 { return key / uint64(t.sets) }

//smtfetch:hotpath
func (t *streamTable) find(key uint64) int {
	base := t.set(key) * t.assoc
	tag := t.tagOf(key)
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if t.valid[i] && t.tags[i] == tag {
			return i
		}
	}
	return -1
}

//smtfetch:hotpath
func (t *streamTable) lookup(key uint64) (StreamPrediction, bool) {
	if i := t.find(key); i >= 0 {
		t.stamp++
		t.lru[i] = t.stamp
		return t.data[i].pred, true
	}
	return StreamPrediction{}, false
}

// train updates the entry for key toward pred with 2-bit hysteresis:
// a matching outcome strengthens confidence; a mismatch weakens it and
// replaces the payload only when confidence is exhausted. This keeps a
// stable stream from being destroyed by one aberrant iteration.
//
//smtfetch:hotpath
func (t *streamTable) train(key uint64, pred StreamPrediction) {
	if i := t.find(key); i >= 0 {
		e := &t.data[i]
		if e.pred == pred {
			e.conf = e.conf.inc()
		} else {
			if e.conf > 0 {
				e.conf = e.conf.dec()
			} else {
				e.pred = pred
				e.conf = 1
			}
		}
		t.stamp++
		t.lru[i] = t.stamp
		return
	}
	base := t.set(key) * t.assoc
	victim := base
	for w := 0; w < t.assoc; w++ {
		i := base + w
		if !t.valid[i] {
			victim = i
			break
		}
		if t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.valid[victim] = true
	t.tags[victim] = t.tagOf(key)
	t.data[victim] = streamEntry{pred: pred, conf: 1}
	t.stamp++
	t.lru[victim] = t.stamp
}

// PathHistory is the DOLC path history: the targets of the last Depth
// taken branches. It is small enough to checkpoint by value.
type PathHistory struct {
	ring [16]uint32
	pos  uint8
}

// Push records a new taken-branch target.
//
//smtfetch:hotpath
func (p *PathHistory) Push(target isa.Addr) {
	p.pos = (p.pos + 1) % uint8(len(p.ring))
	p.ring[p.pos] = uint32(uint64(target) >> 2)
}

// DOLC describes the Depth-Older-Last-Current index construction of the
// stream predictor (Table 3: 16-2-4-10).
type DOLC struct {
	Depth, Older, Last, Current int
}

// Hash folds the path history and the current stream start into an index
// key: Current bits from the start address, Last bits from the most recent
// target, and Older bits from each of the Depth-1 older targets, XOR-folded
// with rotation.
//
//smtfetch:hotpath
func (d DOLC) Hash(p *PathHistory, current isa.Addr) uint64 {
	key := (uint64(current) >> 2) & ((1 << uint(d.Current)) - 1)
	shift := uint(d.Current)
	last := uint64(p.ring[p.pos]) & ((1 << uint(d.Last)) - 1)
	key ^= last << shift
	shift += uint(d.Last)
	olderMask := uint64(1)<<uint(d.Older) - 1
	n := d.Depth - 1
	if n > len(p.ring)-1 {
		n = len(p.ring) - 1
	}
	for i := 1; i <= n; i++ {
		idx := (int(p.pos) - i + len(p.ring)*2) % len(p.ring)
		v := uint64(p.ring[idx]) & olderMask
		key ^= v << (shift % 48)
		shift += uint(d.Older)
	}
	// Final avalanche so high-order contributions reach the set index.
	key ^= key >> 17
	key *= 0x9e3779b97f4a7c15
	return key >> 13
}

// StreamPredictor is the two-level stream predictor of Ramirez et al.: a
// first-level table indexed by stream start only, and a second-level table
// indexed by the DOLC hash of (path history, start). The second level
// disambiguates streams whose length depends on the path that reached them.
type StreamPredictor struct {
	l1   *streamTable
	l2   *streamTable
	dolc DOLC //smtfetch:transient hash geometry, fixed at construction

	Lookups uint64
	L2Hits  uint64
	L1Hits  uint64
}

// NewStreamPredictor returns a stream predictor with Table 3 geometry.
func NewStreamPredictor(l1Entries, l1Assoc, l2Entries, l2Assoc int, dolc DOLC) *StreamPredictor {
	return &StreamPredictor{
		l1:   newStreamTable(l1Entries, l1Assoc),
		l2:   newStreamTable(l2Entries, l2Assoc),
		dolc: dolc,
	}
}

// Predict returns the stream starting at start given the path history.
//
//smtfetch:hotpath
func (s *StreamPredictor) Predict(start isa.Addr, path *PathHistory) (StreamPrediction, bool) {
	s.Lookups++
	if pred, ok := s.l2.lookup(s.dolc.Hash(path, start)); ok {
		s.L2Hits++
		return pred, true
	}
	if pred, ok := s.l1.lookup(uint64(start) >> 2); ok {
		s.L1Hits++
		return pred, true
	}
	return StreamPrediction{}, false
}

// Train records the resolved stream (start, path) -> pred in both levels.
// Called at commit when the stream's terminating taken branch retires.
//
//smtfetch:hotpath
func (s *StreamPredictor) Train(start isa.Addr, path *PathHistory, pred StreamPrediction) {
	if pred.Length < 1 {
		pred.Length = 1
	}
	if pred.Length > MaxStreamLen {
		pred.Length = MaxStreamLen
	}
	s.l2.train(s.dolc.Hash(path, start), pred)
	s.l1.train(uint64(start)>>2, pred)
}

// HitRate returns the fraction of lookups served by either level.
func (s *StreamPredictor) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.L1Hits+s.L2Hits) / float64(s.Lookups)
}
