package bpred

import "smtfetch/internal/isa"

// FTBEntry describes a fetch block: from the start address to the first
// branch past the start that has been observed taken ("ever-taken").
// Branches inside the block that have never been taken are simply not
// represented — this is what makes FTB fetch blocks larger than BTB basic
// blocks (Reinman, Calder, Austin).
type FTBEntry struct {
	// Instrs is the block length in instructions, terminator included.
	Instrs int
	// Kind is the terminating branch's kind.
	Kind isa.BranchKind
	// Target is the terminating branch's taken target.
	Target isa.Addr
	// fallthroughs counts consecutive not-taken outcomes of the
	// terminating branch; when it saturates the entry is invalidated so
	// the block can re-form spanning the now-cold branch.
	fallthroughs uint8
}

// ftbMaxFallthroughs is the invalidation threshold for cold terminators.
const ftbMaxFallthroughs = 8

// MaxFTBBlock caps the fetch-block length an FTB entry may describe.
const MaxFTBBlock = 64

// FTB is a set-associative fetch target buffer keyed by the fetch block's
// start address (Table 3: 2K entries, 4-way — same budget as the BTB).
type FTB struct {
	assoc int //smtfetch:transient geometry, fixed at construction
	sets  int //smtfetch:transient geometry, fixed at construction
	tags  []uint64
	valid []bool
	data  []FTBEntry
	lru   []uint64
	stamp uint64

	Lookups uint64
	Hits    uint64
}

// NewFTB returns an empty FTB.
func NewFTB(entries, assoc int) *FTB {
	sets := entries / assoc
	n := sets * assoc
	return &FTB{
		assoc: assoc,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		data:  make([]FTBEntry, n),
		lru:   make([]uint64, n),
	}
}

//smtfetch:hotpath
func (f *FTB) set(pc isa.Addr) int { return int((uint64(pc) >> 2) % uint64(f.sets)) }

//smtfetch:hotpath
func (f *FTB) tag(pc isa.Addr) uint64 { return uint64(pc) >> 2 / uint64(f.sets) }

//smtfetch:hotpath
func (f *FTB) find(pc isa.Addr) int {
	base := f.set(pc) * f.assoc
	tag := f.tag(pc)
	for w := 0; w < f.assoc; w++ {
		i := base + w
		if f.valid[i] && f.tags[i] == tag {
			return i
		}
	}
	return -1
}

// Lookup probes the FTB for a fetch block starting at pc.
//
//smtfetch:hotpath
func (f *FTB) Lookup(pc isa.Addr) (FTBEntry, bool) {
	f.Lookups++
	if i := f.find(pc); i >= 0 {
		f.stamp++
		f.lru[i] = f.stamp
		f.Hits++
		return f.data[i], true
	}
	return FTBEntry{}, false
}

// Train installs or updates the fetch block starting at start, terminated
// by a taken branch `instrs` instructions in, of the given kind and target.
// Called at commit when a taken branch resolves.
//
//smtfetch:hotpath
func (f *FTB) Train(start isa.Addr, instrs int, kind isa.BranchKind, target isa.Addr) {
	if instrs < 1 {
		instrs = 1
	}
	if instrs > MaxFTBBlock {
		instrs = MaxFTBBlock
	}
	e := FTBEntry{Instrs: instrs, Kind: kind, Target: target}
	if i := f.find(start); i >= 0 {
		f.data[i] = e
		f.stamp++
		f.lru[i] = f.stamp
		return
	}
	base := f.set(start) * f.assoc
	victim := base
	for w := 0; w < f.assoc; w++ {
		i := base + w
		if !f.valid[i] {
			victim = i
			break
		}
		if f.lru[i] < f.lru[victim] {
			victim = i
		}
	}
	f.valid[victim] = true
	f.tags[victim] = f.tag(start)
	f.data[victim] = e
	f.stamp++
	f.lru[victim] = f.stamp
}

// Fallthrough records that the terminating branch of the block at start
// resolved not-taken. After ftbMaxFallthroughs consecutive not-taken
// outcomes the entry is dropped, letting the block re-form past the cold
// branch. It reports whether the entry was invalidated.
//
//smtfetch:hotpath
func (f *FTB) Fallthrough(start isa.Addr) bool {
	i := f.find(start)
	if i < 0 {
		return false
	}
	f.data[i].fallthroughs++
	if f.data[i].fallthroughs >= ftbMaxFallthroughs {
		f.valid[i] = false
		return true
	}
	return false
}

// TakenReset clears the fall-through hysteresis after a taken outcome.
//
//smtfetch:hotpath
func (f *FTB) TakenReset(start isa.Addr) {
	if i := f.find(start); i >= 0 {
		f.data[i].fallthroughs = 0
	}
}

// HitRate returns hits/lookups.
func (f *FTB) HitRate() float64 {
	if f.Lookups == 0 {
		return 0
	}
	return float64(f.Hits) / float64(f.Lookups)
}
