package bpred

import (
	"testing"

	"smtfetch/internal/isa"
)

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty RAS reported ok")
	}
	if _, ok := r.Top(); ok {
		t.Fatal("Top on empty RAS reported ok")
	}
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300)
	if d := r.Depth(); d != 3 {
		t.Fatalf("Depth = %d, want 3", d)
	}
	if a, ok := r.Top(); !ok || a != 0x300 {
		t.Fatalf("Top = %#x,%v, want 0x300,true", a, ok)
	}
	for _, want := range []isa.Addr{0x300, 0x200, 0x100} {
		a, ok := r.Pop()
		if !ok || a != want {
			t.Fatalf("Pop = %#x,%v, want %#x,true", a, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop after draining reported ok")
	}
}

func TestRASOverflowWraparound(t *testing.T) {
	const n = 4
	r := NewRAS(n)
	// Push 2n entries: the first n are overwritten, depth saturates at n.
	for i := 1; i <= 2*n; i++ {
		r.Push(isa.Addr(i * 0x10))
	}
	if d := r.Depth(); d != n {
		t.Fatalf("Depth after overflow = %d, want %d", d, n)
	}
	// The survivors are the newest n, popped newest-first.
	for i := 2 * n; i > n; i-- {
		a, ok := r.Pop()
		if !ok || a != isa.Addr(i*0x10) {
			t.Fatalf("Pop = %#x,%v, want %#x,true", a, ok, isa.Addr(i*0x10))
		}
	}
	// The stack is now logically empty even though the buffer wrapped.
	if d := r.Depth(); d != 0 {
		t.Fatalf("Depth after draining survivors = %d, want 0", d)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop past the overwritten region reported ok")
	}
	// And it keeps working after the wraparound.
	r.Push(0x999)
	if a, ok := r.Pop(); !ok || a != 0x999 {
		t.Fatalf("Pop after rewrap = %#x,%v, want 0x999,true", a, ok)
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	cp := r.Checkpoint()

	// Speculative pop then push corrupts the top; Restore must repair it.
	r.Pop()
	r.Push(0xBAD)
	r.Push(0xBAD2)
	r.Restore(cp)

	if d := r.Depth(); d != 2 {
		t.Fatalf("Depth after restore = %d, want 2", d)
	}
	if a, ok := r.Pop(); !ok || a != 0x200 {
		t.Fatalf("Pop after restore = %#x,%v, want 0x200,true", a, ok)
	}
	if a, ok := r.Pop(); !ok || a != 0x100 {
		t.Fatalf("second Pop after restore = %#x,%v, want 0x100,true", a, ok)
	}
}

func TestRASCheckpointEmpty(t *testing.T) {
	r := NewRAS(4)
	cp := r.Checkpoint()
	r.Push(0x40)
	r.Restore(cp)
	if d := r.Depth(); d != 0 {
		t.Fatalf("Depth after restoring empty checkpoint = %d, want 0", d)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop after restoring empty checkpoint reported ok")
	}
}
