package bpred

import "smtfetch/internal/isa"

// BTBEntry is one branch target buffer entry: the branch's kind and its
// last-seen taken target.
type BTBEntry struct {
	Kind   isa.BranchKind
	Target isa.Addr
}

// BTB is a set-associative branch target buffer keyed by branch PC
// (Table 3: 2K entries, 4-way). A classical BTB stores *every* branch it
// has seen; fetch blocks formed with a BTB therefore end at the first
// branch, taken or not — one basic block per prediction.
type BTB struct {
	assoc int //smtfetch:transient geometry, fixed at construction
	sets  int //smtfetch:transient geometry, fixed at construction
	tags  []uint64
	valid []bool
	data  []BTBEntry
	lru   []uint64
	stamp uint64

	Lookups uint64
	Hits    uint64
}

// NewBTB returns an empty BTB with the given total entry count and
// associativity.
func NewBTB(entries, assoc int) *BTB {
	sets := entries / assoc
	n := sets * assoc
	return &BTB{
		assoc: assoc,
		sets:  sets,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		data:  make([]BTBEntry, n),
		lru:   make([]uint64, n),
	}
}

//smtfetch:hotpath
func (b *BTB) set(pc isa.Addr) int { return int((uint64(pc) >> 2) % uint64(b.sets)) }

//smtfetch:hotpath
func (b *BTB) tag(pc isa.Addr) uint64 {
	return uint64(pc) >> 2 / uint64(b.sets)
}

// Lookup probes the BTB for the branch at pc.
//
//smtfetch:hotpath
func (b *BTB) Lookup(pc isa.Addr) (BTBEntry, bool) {
	b.Lookups++
	base := b.set(pc) * b.assoc
	tag := b.tag(pc)
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == tag {
			b.stamp++
			b.lru[i] = b.stamp
			b.Hits++
			return b.data[i], true
		}
	}
	return BTBEntry{}, false
}

// Insert installs or updates the entry for the branch at pc.
//
//smtfetch:hotpath
func (b *BTB) Insert(pc isa.Addr, e BTBEntry) {
	base := b.set(pc) * b.assoc
	tag := b.tag(pc)
	victim := base
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.valid[i] && b.tags[i] == tag {
			b.data[i] = e
			b.stamp++
			b.lru[i] = b.stamp
			return
		}
		if !b.valid[i] {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.valid[victim] = true
	b.tags[victim] = tag
	b.data[victim] = e
	b.stamp++
	b.lru[victim] = b.stamp
}

// HitRate returns hits/lookups.
func (b *BTB) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}
