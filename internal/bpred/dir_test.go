package bpred

import (
	"testing"

	"smtfetch/internal/isa"
)

// trainRoundTrip drives a predictor through a train-then-predict cycle on a
// strongly biased branch and checks it learns both directions.
func trainRoundTrip(t *testing.T, p DirPredictor) {
	t.Helper()
	const pc isa.Addr = 0x4440
	const hist = 0x5a5a

	// Weakly-initialized counters need two updates to cross the threshold.
	for i := 0; i < 4; i++ {
		p.Update(pc, hist, true)
	}
	if !p.Predict(pc, hist) {
		t.Fatal("predicts not-taken after taken training")
	}
	for i := 0; i < 4; i++ {
		p.Update(pc, hist, false)
	}
	if p.Predict(pc, hist) {
		t.Fatal("predicts taken after not-taken retraining")
	}
}

func TestGShareRoundTrip(t *testing.T) { trainRoundTrip(t, NewGShare(1024, 10)) }
func TestGSkewRoundTrip(t *testing.T)  { trainRoundTrip(t, NewGSkew(1024, 10)) }
func TestBimodalRound(t *testing.T)    { trainRoundTrip(t, NewBimodal(1024)) }

func TestGShareHistoryDisambiguates(t *testing.T) {
	g := NewGShare(1<<16, 16)
	const pc isa.Addr = 0x8000
	// Same PC, two histories, opposite outcomes: gshare must keep them in
	// separate counters (that is the whole point of XOR indexing).
	for i := 0; i < 4; i++ {
		g.Update(pc, 0x0001, true)
		g.Update(pc, 0x0002, false)
	}
	if !g.Predict(pc, 0x0001) {
		t.Fatal("history 0x0001 lost its taken training")
	}
	if g.Predict(pc, 0x0002) {
		t.Fatal("history 0x0002 lost its not-taken training")
	}
}

func TestGSkewMajorityVote(t *testing.T) {
	g := NewGSkew(1024, 10)
	const pc isa.Addr = 0x1230
	const hist = 0x3c
	// Saturate taken, then a single not-taken update must not flip the
	// majority (each bank goes 3 -> 2, still taken).
	for i := 0; i < 8; i++ {
		g.Update(pc, hist, true)
	}
	g.Update(pc, hist, false)
	if !g.Predict(pc, hist) {
		t.Fatal("one not-taken update flipped a saturated gskew majority")
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.inc()
	}
	if c != 3 {
		t.Fatalf("inc saturation: got %d, want 3", c)
	}
	if !c.taken() {
		t.Fatal("saturated-up counter not taken")
	}
	for i := 0; i < 10; i++ {
		c = c.dec()
	}
	if c != 0 {
		t.Fatalf("dec saturation: got %d, want 0", c)
	}
	if c.taken() {
		t.Fatal("saturated-down counter still taken")
	}
}
