package ftq

import (
	"testing"

	"smtfetch/internal/isa"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestPoolLifecycle walks one request through the full reference-count
// protocol: Get -> Retain -> Release -> Release -> back on the free list ->
// reused by the next Get with a bumped epoch and reset state.
func TestPoolLifecycle(t *testing.T) {
	p := NewPool()
	r := p.Get(3)
	if !r.Live() || r.Refs() != 1 || r.Thread != 3 {
		t.Fatalf("fresh request: live=%v refs=%d thread=%d", r.Live(), r.Refs(), r.Thread)
	}
	if p.Allocated() != 1 || p.FreeLen() != 0 {
		t.Fatalf("pool after Get: allocated=%d free=%d", p.Allocated(), p.FreeLen())
	}
	e1 := r.Epoch()

	in := isa.Instruction{PC: 0x100, Class: isa.Branch, BrKind: isa.CondBranch}
	r.Append(&in)
	bi := r.AddBranch(0)
	bi.GHR = 42
	r.Consumed = 1

	r.Retain()
	if r.Refs() != 2 {
		t.Fatalf("refs after Retain = %d, want 2", r.Refs())
	}
	r.Release()
	if r.Refs() != 1 || !r.Live() {
		t.Fatal("request freed while a reference remained")
	}
	r.Release()
	if r.Live() || p.FreeLen() != 1 {
		t.Fatalf("last Release did not pool the request: live=%v free=%d", r.Live(), p.FreeLen())
	}

	r2 := p.Get(5)
	if r2 != r {
		t.Fatal("pool did not reuse the freed request")
	}
	if p.Allocated() != 1 {
		t.Fatalf("reuse allocated a new request: allocated=%d", p.Allocated())
	}
	if r2.Epoch() == e1 {
		t.Fatal("epoch not bumped on reuse")
	}
	if r2.Len() != 0 || r2.Consumed != 0 || r2.Thread != 5 || r2.Branch(0) != nil {
		t.Fatalf("reused request not reset: len=%d consumed=%d thread=%d", r2.Len(), r2.Consumed, r2.Thread)
	}
}

// TestPoolIdentityValidation: every illegal transition on the free list
// must panic — that is the aliasing defence.
func TestPoolIdentityValidation(t *testing.T) {
	p := NewPool()
	r := p.Get(0)
	r.Release()
	mustPanic(t, "Release on pooled request", r.Release)
	mustPanic(t, "Retain on pooled request", r.Retain)

	r = p.Get(0)
	r.Release()
	// Corrupt the free list with a live request: Get must refuse it.
	r2 := p.Get(0)
	p.free = append(p.free, r2)
	mustPanic(t, "Get of live request", func() { p.Get(0) })
}

// TestQueueDetectsRecycledRequest simulates the pool-aliasing bug the
// epoch check exists for: a queued request released behind the queue's
// back, recycled by the pool, and then observed by the fetch stage.
func TestQueueDetectsRecycledRequest(t *testing.T) {
	p := NewPool()
	q := New(2)
	r := p.Get(0)
	in := isa.Instruction{PC: 0x40}
	r.Append(&in)
	if !q.Push(r) {
		t.Fatal("push failed")
	}
	r.Release()    // BUG (simulated): releasing the queue's reference
	r2 := p.Get(0) // pool hands the queued request to a new block
	if r2 != r {
		t.Fatal("expected the pool to recycle the released request")
	}
	mustPanic(t, "Head on recycled request", func() { q.Head() })
}

// TestQueueRing exercises wrap-around and Clear against a model slice.
func TestQueueRing(t *testing.T) {
	p := NewPool()
	q := New(3)
	if q.Cap() != 3 || q.Len() != 0 || q.Full() {
		t.Fatalf("empty queue: cap=%d len=%d full=%v", q.Cap(), q.Len(), q.Full())
	}
	in := isa.Instruction{PC: 0x10}
	push := func() *Request {
		r := p.Get(0)
		r.Append(&in)
		if !q.Push(r) {
			t.Fatal("push on non-full queue failed")
		}
		return r
	}
	for round := 0; round < 7; round++ { // 7 rounds of push/push/pop wrap the ring
		a, b := push(), push()
		if q.Head() != a {
			t.Fatal("FIFO order violated")
		}
		q.PopHead()
		if a.Live() { // the queue held the only reference
			t.Fatal("PopHead did not release")
		}
		if q.Head() != b {
			t.Fatal("FIFO order violated after pop")
		}
		q.PopHead()
	}
	a, b, c := push(), push(), push()
	_ = a
	_ = b
	_ = c
	if !q.Full() || q.Push(p.Get(0)) {
		t.Fatal("queue should be full and refuse a fourth request")
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatal("Clear left requests queued")
	}
	if a.Live() || b.Live() || c.Live() {
		t.Fatal("Clear did not release the queued requests")
	}
}

// TestRequestBranchStorage checks the inline branch index: metadata
// attaches to the right instruction, other slots stay nil, and both
// overflow conditions panic.
func TestRequestBranchStorage(t *testing.T) {
	p := NewPool()
	r := p.Get(0)
	for i := 0; i < 4; i++ {
		in := isa.Instruction{PC: isa.Addr(0x1000 + 4*i)}
		r.Append(&in)
	}
	bi := r.AddBranch(2)
	bi.PredTaken = true
	bi.BlockInstrs = 3
	for i := 0; i < 4; i++ {
		got := r.Branch(i)
		if i == 2 {
			if got == nil || !got.PredTaken || got.BlockInstrs != 3 {
				t.Fatalf("Branch(2) = %+v", got)
			}
		} else if got != nil {
			t.Fatalf("Branch(%d) unexpectedly non-nil", i)
		}
	}
	mustPanic(t, "double AddBranch on one instruction", func() { r.AddBranch(2) })

	if r.NextPC() != 0x1000 || r.Remaining() != 4 {
		t.Fatalf("NextPC=%#x Remaining=%d", r.NextPC(), r.Remaining())
	}
	r.Consumed = 3
	if r.NextPC() != 0x100c || r.Remaining() != 1 {
		t.Fatalf("after consume: NextPC=%#x Remaining=%d", r.NextPC(), r.Remaining())
	}

	full := p.Get(0)
	for i := 0; i < MaxInstrs; i++ {
		in := isa.Instruction{PC: isa.Addr(4 * i)}
		full.Append(&in)
	}
	mustPanic(t, "Append beyond MaxInstrs", func() { full.Append(&isa.Instruction{}) })
}
