// Package ftq implements the fetch target queue of the decoupled front-end
// and the fetch-request descriptors that flow through it. The prediction
// stage pushes one fetch block per cycle into the selected thread's FTQ;
// the fetch stage drains FTQs to drive I-cache accesses (Reinman et al.,
// adopted for SMT by the paper).
//
// Requests are pooled: the prediction stage acquires one from a per-thread
// Pool, fills its fixed-capacity backing arrays in place, and pushes it into
// the FTQ. Nothing about a request is heap-allocated per block, so the
// prediction stage is allocation-free in steady state.
//
// # Lifetime rules
//
// A Request is reference-counted. Pool.Get returns it with one reference
// (the creator's), which Queue.Push takes over. From then on:
//
//   - the FTQ holds one reference until the request is fully consumed
//     (Queue.PopHead) or squashed away (Queue.Clear on recovery);
//   - every in-flight uop that carries a pointer to one of the request's
//     inline BranchInfo records holds one reference (Retain at fetch,
//     Release when the uop commits or is squashed).
//
// When the last reference drops, the request returns to its pool's free
// list automatically. Identity is validated on every transition: acquiring
// a live request, releasing a pooled one, or observing a queued request
// whose epoch changed (it was recycled behind the queue's back) all panic,
// mirroring the identity-validated uop free list in internal/core.
package ftq

import (
	"fmt"

	"smtfetch/internal/bpred"
	"smtfetch/internal/isa"
)

// MaxInstrs bounds any fetch block's length in instructions and sizes the
// request's inline instruction array (the stream predictor forms the
// longest blocks).
const MaxInstrs = bpred.MaxStreamLen

// maxBranches sizes the inline per-request BranchInfo storage. Every engine
// ends a block at the first instruction that carries prediction metadata,
// so one slot suffices; the second is slack for future engines that span
// predicted-not-taken branches with explicit metadata.
const maxBranches = 2

// ResolveStage says where a branch's (mis)prediction is detected.
type ResolveStage uint8

const (
	// ResolveNone marks correctly-predicted branches.
	ResolveNone ResolveStage = iota
	// ResolveDecode marks misfetches: the target structure missed but
	// decode can compute the correct target (direct jumps/calls).
	ResolveDecode
	// ResolveExecute marks true mispredictions: wrong conditional
	// direction, wrong indirect target, wrong return address.
	ResolveExecute
)

// BranchInfo carries per-branch prediction metadata from the prediction
// stage to resolution (decode/execute) and training (commit). It is stored
// inline in the owning Request; pointers to it stay valid for as long as
// the holder keeps a reference on the request.
type BranchInfo struct {
	// PredTaken / PredTarget are the front-end's prediction.
	PredTaken  bool
	PredTarget isa.Addr
	// Resolve says where a wrong prediction is detected; ResolveNone for
	// correct predictions.
	Resolve ResolveStage

	// GHR is the global history the direction prediction used (training
	// key, and restored on recovery).
	GHR uint64
	// RASCp / PathCp checkpoint the RAS and path history just before this
	// branch's speculative update, for recovery.
	RASCp  bpred.RASCheckpoint
	PathCp bpred.PathHistory
	// BlockStart is the fetch block's start address (FTB/stream training
	// key).
	BlockStart isa.Addr
	// BlockInstrs is the branch's position in its fetch block, in
	// instructions, terminator included (FTB/stream training payload).
	BlockInstrs int
	// StreamPredicted marks blocks the stream predictor supplied (vs the
	// sequential fallback); used for stream accuracy accounting.
	StreamPredicted bool
	// UsedRAS marks return predictions taken from the RAS.
	UsedRAS bool
}

// Request is one fetch block: a unit of prediction holding the actual
// instructions on the (possibly wrong) predicted path. The fetch stage may
// take several cycles to drain one request if the block is longer than the
// fetch width. Instructions and branch metadata live in fixed-capacity
// inline arrays; see the package comment for the pooling lifetime rules.
type Request struct {
	Thread int
	Start  isa.Addr
	// WrongPath marks blocks generated while the thread was known (to the
	// simulator, not the hardware) to be on a wrong path.
	WrongPath bool
	// Consumed counts instructions already delivered to the fetch buffer.
	Consumed int

	n      int
	instrs [MaxInstrs]isa.Instruction
	// brIdx[i] is 1+the index into branches of instruction i's metadata,
	// or 0 when instruction i carries none.
	brIdx    [MaxInstrs]uint8
	nbr      int
	branches [maxBranches]BranchInfo

	pool   *Pool  //smtfetch:transient owning pool, bound at acquisition
	refs   int32  //smtfetch:transient refcount rebuilt by Retain during restore re-linking
	pooled bool   //smtfetch:transient pool-membership flag managed by acquire/release
	epoch  uint64 //smtfetch:transient recycling stamp; a restored request is a fresh acquisition
}

// Len returns the number of instructions in the block.
//
//smtfetch:hotpath
func (r *Request) Len() int { return r.n }

// Instr returns the i-th instruction of the block.
//
//smtfetch:hotpath
func (r *Request) Instr(i int) *isa.Instruction { return &r.instrs[i] }

// Branch returns instruction i's prediction metadata, or nil when it
// carries none (or i is out of range — reset is O(1), so stale index
// slots beyond Len are never valid). The pointer stays valid while the
// caller holds a reference on the request.
//
//smtfetch:hotpath
func (r *Request) Branch(i int) *BranchInfo {
	if i < r.n {
		if k := r.brIdx[i]; k != 0 {
			return &r.branches[k-1]
		}
	}
	return nil
}

// Append copies in into the block and returns the stored copy.
//
//smtfetch:hotpath
func (r *Request) Append(in *isa.Instruction) *isa.Instruction {
	if r.n >= MaxInstrs {
		panic("ftq: fetch block overflows MaxInstrs")
	}
	p := &r.instrs[r.n]
	*p = *in
	r.brIdx[r.n] = 0
	r.n++
	return p
}

// AddBranch attaches a zeroed BranchInfo to instruction i and returns it
// for the caller to fill in place.
//
//smtfetch:hotpath
func (r *Request) AddBranch(i int) *BranchInfo {
	if r.brIdx[i] != 0 {
		panic("ftq: instruction already carries branch metadata")
	}
	if r.nbr >= maxBranches {
		panic("ftq: request overflows inline branch storage")
	}
	bi := &r.branches[r.nbr]
	*bi = BranchInfo{}
	r.nbr++
	r.brIdx[i] = uint8(r.nbr)
	return bi
}

// Remaining returns the number of instructions not yet delivered.
//
//smtfetch:hotpath
func (r *Request) Remaining() int { return r.n - r.Consumed }

// NextPC returns the address of the next undelivered instruction.
//
//smtfetch:hotpath
func (r *Request) NextPC() isa.Addr {
	return r.instrs[r.Consumed].PC
}

// Live reports whether the request is checked out of its pool.
func (r *Request) Live() bool { return !r.pooled }

// Refs returns the current reference count (invariant checks in tests).
func (r *Request) Refs() int { return int(r.refs) }

// Epoch returns the request's reuse generation: it increments every time
// the request leaves the pool, so a holder can detect recycling.
func (r *Request) Epoch() uint64 { return r.epoch }

// Retain adds a reference. Only live requests may be retained.
//
//smtfetch:hotpath
func (r *Request) Retain() {
	if r.pooled {
		panic("ftq: Retain on a pooled request")
	}
	r.refs++
}

// Release drops a reference; the last one returns the request to its pool.
//
//smtfetch:hotpath
func (r *Request) Release() {
	if r.pooled {
		panic("ftq: Release on a pooled request (double free)")
	}
	if r.refs <= 0 {
		panic("ftq: Release without matching reference")
	}
	r.refs--
	if r.refs == 0 {
		r.pooled = true
		//smtfetch:allowalloc pool free-list capacity converges to the allocated request population
		r.pool.free = append(r.pool.free, r)
	}
}

// Pool is a free list of Requests, one per thread front-end. It grows on
// demand and never shrinks: the steady-state working set (FTQ capacity plus
// requests pinned by in-flight branch uops) is reached within the warm-up
// phase, after which Get never allocates.
type Pool struct {
	free []*Request
	// slab is the current allocation block: requests are created
	// slabSize at a time so working-set growth (rare bursts when the
	// back-end backs up) costs one heap allocation per slab, not per
	// request.
	slab []Request
	// allocated counts requests ever created by Get; once the working set
	// is warm it must stop growing (leak detector for tests).
	allocated int
}

// slabSize is the pool's allocation granularity in requests.
const slabSize = 16

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a reset, live request with one reference, owned by thread.
//
//smtfetch:hotpath
func (p *Pool) Get(thread int) *Request {
	var r *Request
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if !r.pooled {
			panic("ftq: live request found on the free list")
		}
	} else {
		if len(p.slab) == 0 {
			//smtfetch:allowalloc slab growth: one heap allocation per slabSize requests, only while the working set still grows
			p.slab = make([]Request, slabSize)
		}
		r = &p.slab[0]
		p.slab = p.slab[1:]
		r.pool = p
		r.pooled = true
		p.allocated++
	}
	r.pooled = false
	r.epoch++
	r.refs = 1
	r.Thread = thread
	r.Start = 0
	r.WrongPath = false
	r.Consumed = 0
	r.n = 0
	r.nbr = 0
	return r
}

// FreeLen returns the number of pooled requests.
func (p *Pool) FreeLen() int { return len(p.free) }

// Allocated returns the number of requests ever created by Get.
func (p *Pool) Allocated() int { return p.allocated }

// ForEachFree visits every pooled request (invariant checks in tests).
func (p *Pool) ForEachFree(fn func(*Request)) {
	for _, r := range p.free {
		fn(r)
	}
}

// Queue is one thread's fetch target queue: a bounded FIFO of requests,
// backed by a fixed ring so pushes and pops never allocate. The queue owns
// one reference on every request it holds and records the request's epoch
// at push time; a queued request whose epoch changed was recycled while
// queued (a pool-aliasing bug), and Head/PopHead panic on it.
type Queue struct {
	reqs   []*Request
	epochs []uint64 //smtfetch:transient aliasing-guard stamps re-recorded at push during decode
	head   int
	n      int
}

// New returns an empty FTQ with the given capacity (Table 3: 4 entries).
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{reqs: make([]*Request, capacity), epochs: make([]uint64, capacity)}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.reqs) }

// Len returns the number of queued requests.
//
//smtfetch:hotpath
func (q *Queue) Len() int { return q.n }

// Full reports whether the queue is at capacity.
//
//smtfetch:hotpath
func (q *Queue) Full() bool { return q.n >= len(q.reqs) }

// Push appends a request, taking over the caller's reference; it reports
// false (and leaves the reference with the caller) if the queue is full.
//
//smtfetch:hotpath
func (q *Queue) Push(r *Request) bool {
	if q.Full() {
		return false
	}
	i := (q.head + q.n) % len(q.reqs)
	q.reqs[i] = r
	q.epochs[i] = r.epoch
	q.n++
	return true
}

// Head returns the oldest request, or nil when empty.
//
//smtfetch:hotpath
func (q *Queue) Head() *Request {
	if q.n == 0 {
		return nil
	}
	r := q.reqs[q.head]
	if r.epoch != q.epochs[q.head] || r.pooled {
		panic(fmt.Sprintf("ftq: queued request recycled while queued (epoch %d, queued at %d)", r.epoch, q.epochs[q.head]))
	}
	return r
}

// PopHead removes the oldest request (after the fetch stage fully consumed
// it) and drops the queue's reference on it.
//
//smtfetch:hotpath
func (q *Queue) PopHead() {
	if q.n == 0 {
		return
	}
	r := q.Head()
	q.reqs[q.head] = nil
	q.head = (q.head + 1) % len(q.reqs)
	q.n--
	r.Release()
}

// Clear empties the queue (front-end squash), releasing every request.
//
//smtfetch:hotpath
func (q *Queue) Clear() {
	for q.n > 0 {
		q.PopHead()
	}
	q.head = 0
}

// Each visits the queued requests oldest-first (invariant checks in tests).
func (q *Queue) Each(fn func(*Request)) {
	for i := 0; i < q.n; i++ {
		fn(q.reqs[(q.head+i)%len(q.reqs)])
	}
}
