// Package ftq implements the fetch target queue of the decoupled front-end
// and the fetch-request descriptors that flow through it. The prediction
// stage pushes one fetch block per cycle into the selected thread's FTQ;
// the fetch stage drains FTQs to drive I-cache accesses (Reinman et al.,
// adopted for SMT by the paper).
package ftq

import (
	"smtfetch/internal/bpred"
	"smtfetch/internal/isa"
)

// ResolveStage says where a branch's (mis)prediction is detected.
type ResolveStage uint8

const (
	// ResolveNone marks correctly-predicted branches.
	ResolveNone ResolveStage = iota
	// ResolveDecode marks misfetches: the target structure missed but
	// decode can compute the correct target (direct jumps/calls).
	ResolveDecode
	// ResolveExecute marks true mispredictions: wrong conditional
	// direction, wrong indirect target, wrong return address.
	ResolveExecute
)

// BranchInfo carries per-branch prediction metadata from the prediction
// stage to resolution (decode/execute) and training (commit).
type BranchInfo struct {
	// PredTaken / PredTarget are the front-end's prediction.
	PredTaken  bool
	PredTarget isa.Addr
	// Resolve says where a wrong prediction is detected; ResolveNone for
	// correct predictions.
	Resolve ResolveStage

	// GHR is the global history the direction prediction used (training
	// key, and restored on recovery).
	GHR uint64
	// RASCp / PathCp checkpoint the RAS and path history just before this
	// branch's speculative update, for recovery.
	RASCp  bpred.RASCheckpoint
	PathCp bpred.PathHistory
	// BlockStart is the fetch block's start address (FTB/stream training
	// key).
	BlockStart isa.Addr
	// BlockInstrs is the branch's position in its fetch block, in
	// instructions, terminator included (FTB/stream training payload).
	BlockInstrs int
	// StreamPredicted marks blocks the stream predictor supplied (vs the
	// sequential fallback); used for stream accuracy accounting.
	StreamPredicted bool
	// UsedRAS marks return predictions taken from the RAS.
	UsedRAS bool
}

// Request is one fetch block: a unit of prediction holding the actual
// instructions on the (possibly wrong) predicted path. The fetch stage may
// take several cycles to drain one request if the block is longer than the
// fetch width.
type Request struct {
	Thread int
	Start  isa.Addr
	// Instrs is the block content; Branch[i] is non-nil for control
	// instructions carrying prediction metadata.
	Instrs []isa.Instruction
	Branch []*BranchInfo
	// WrongPath marks blocks generated while the thread was known (to the
	// simulator, not the hardware) to be on a wrong path.
	WrongPath bool
	// Consumed counts instructions already delivered to the fetch buffer.
	Consumed int
}

// Remaining returns the number of instructions not yet delivered.
func (r *Request) Remaining() int { return len(r.Instrs) - r.Consumed }

// NextPC returns the address of the next undelivered instruction.
func (r *Request) NextPC() isa.Addr {
	return r.Instrs[r.Consumed].PC
}

// Queue is one thread's fetch target queue: a bounded FIFO of requests.
type Queue struct {
	cap  int
	reqs []*Request
}

// New returns an empty FTQ with the given capacity (Table 3: 4 entries).
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{cap: capacity}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.reqs) }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return len(q.reqs) >= q.cap }

// Push appends a request; it reports false if the queue is full.
func (q *Queue) Push(r *Request) bool {
	if q.Full() {
		return false
	}
	q.reqs = append(q.reqs, r)
	return true
}

// Head returns the oldest request, or nil when empty.
func (q *Queue) Head() *Request {
	if len(q.reqs) == 0 {
		return nil
	}
	return q.reqs[0]
}

// PopHead removes the oldest request (after the fetch stage fully consumed
// it).
func (q *Queue) PopHead() {
	if len(q.reqs) > 0 {
		q.reqs = q.reqs[1:]
	}
}

// Clear empties the queue (front-end squash).
func (q *Queue) Clear() { q.reqs = q.reqs[:0] }
