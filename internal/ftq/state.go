package ftq

// Warm-state snapshot support. Requests are serialized by content only;
// pool bookkeeping (refs, epoch, free list) is never written. On restore
// the core acquires fresh requests from the per-thread pools (Pool.Get),
// decodes content into them, and re-establishes reference counts through
// the ordinary Retain/Release protocol, so the pool's identity-validated
// lifetime invariants hold by construction after a round trip.
//
// Cold-path code, outside the cycle loop.

import (
	"smtfetch/internal/bpred"
	"smtfetch/internal/isa"
	"smtfetch/internal/snap"
)

func encodeBranchInfo(w *snap.Writer, bi *BranchInfo) {
	w.Bool(bi.PredTaken)
	w.U64(uint64(bi.PredTarget))
	w.U8(uint8(bi.Resolve))
	w.U64(bi.GHR)
	bi.RASCp.EncodeValue(w)
	bi.PathCp.EncodeValue(w)
	w.U64(uint64(bi.BlockStart))
	w.Int(bi.BlockInstrs)
	w.Bool(bi.StreamPredicted)
	w.Bool(bi.UsedRAS)
}

func decodeBranchInfo(r *snap.Reader, bi *BranchInfo) {
	bi.PredTaken = r.Bool()
	bi.PredTarget = isa.Addr(r.U64())
	bi.Resolve = ResolveStage(r.U8())
	bi.GHR = r.U64()
	bi.RASCp = bpred.DecodeRASCheckpoint(r)
	bi.PathCp = bpred.DecodePathHistory(r)
	bi.BlockStart = isa.Addr(r.U64())
	bi.BlockInstrs = r.Int()
	bi.StreamPredicted = r.Bool()
	bi.UsedRAS = r.Bool()
}

// EncodeState serializes the request's content (instructions, branch
// metadata, consumption cursor). Pool bookkeeping is excluded.
func (r *Request) EncodeState(w *snap.Writer) {
	w.Int(r.Thread)
	w.U64(uint64(r.Start))
	w.Bool(r.WrongPath)
	w.Int(r.Consumed)
	w.Int(r.n)
	for i := 0; i < r.n; i++ {
		r.instrs[i].EncodeState(w)
		w.U8(r.brIdx[i])
	}
	w.Int(r.nbr)
	for i := 0; i < r.nbr; i++ {
		encodeBranchInfo(w, &r.branches[i])
	}
}

// DecodeState restores content written with EncodeState into a request
// freshly acquired from a pool (Pool.Get).
func (r *Request) DecodeState(rd *snap.Reader) {
	r.Thread = rd.Int()
	r.Start = isa.Addr(rd.U64())
	r.WrongPath = rd.Bool()
	r.Consumed = rd.Int()
	n := rd.Int()
	if rd.Err() != nil {
		return
	}
	if n < 0 || n > MaxInstrs {
		rd.Fail("ftq: request length %d out of range", n)
		return
	}
	r.n = n
	for i := 0; i < r.n; i++ {
		r.instrs[i].DecodeState(rd)
		r.brIdx[i] = rd.U8()
	}
	nbr := rd.Int()
	if rd.Err() != nil {
		return
	}
	if nbr < 0 || nbr > maxBranches {
		rd.Fail("ftq: branch count %d out of range", nbr)
		return
	}
	r.nbr = nbr
	for i := 0; i < r.nbr; i++ {
		decodeBranchInfo(rd, &r.branches[i])
	}
}

// BranchSlot returns the instruction index whose metadata record is bi, or
// -1 when bi does not belong to this request. Snapshot encoding uses it to
// re-link uop BranchInfo pointers by (request, instruction) index.
func (r *Request) BranchSlot(bi *BranchInfo) int {
	for i := 0; i < r.n; i++ {
		if r.Branch(i) == bi {
			return i
		}
	}
	return -1
}

// EncodeState serializes the queue as request indices oldest-first; index
// maps each queued request to its position in the snapshot's request
// table.
func (q *Queue) EncodeState(w *snap.Writer, index func(*Request) int) {
	w.Int(q.n)
	q.Each(func(r *Request) { w.Int(index(r)) })
}

// DecodeState restores the queue from indices written with EncodeState,
// pushing the requests returned by lookup (taking over one reference
// each, exactly as the prediction stage's Push does). The receiver must be
// empty.
func (q *Queue) DecodeState(rd *snap.Reader, lookup func(int) *Request) {
	n := rd.Int()
	if rd.Err() != nil {
		return
	}
	if n < 0 || n > q.Cap() {
		rd.Fail("ftq: queue length %d exceeds capacity %d", n, q.Cap())
		return
	}
	for i := 0; i < n; i++ {
		idx := rd.Int()
		if rd.Err() != nil {
			return
		}
		r := lookup(idx)
		if r == nil {
			rd.Fail("ftq: queue references unknown request %d", idx)
			return
		}
		if !q.Push(r) {
			rd.Fail("ftq: queue overflow during restore")
			return
		}
	}
}
