package stats

// Warm-state snapshot encoders. Every counter is serialized so that a
// restored simulator's statistics continue bit-exactly from the warm-up
// totals; callers that want a clean measurement window reset after
// restore instead.
//
// Cold-path code, outside the cycle loop.

import "smtfetch/internal/snap"

// EncodeState serializes all counters.
func (s *Stats) EncodeState(w *snap.Writer) {
	w.U64(s.Cycles)
	w.U64(s.FetchCycles)
	w.U64(s.Fetched)
	w.U64s(s.FetchHist)
	w.U64(s.Committed)
	w.U64(s.Squashed)
	w.U64(s.Flushes)
	w.U64(s.FlushedUOps)
	w.U64(s.Replayed)
	w.Int(len(s.PerThread))
	for i := range s.PerThread {
		ts := &s.PerThread[i]
		w.U64(ts.Fetched)
		w.U64(ts.Committed)
		w.U64(ts.Squashed)
		w.U64(ts.CondBranches)
		w.U64(ts.CondMispredicts)
		w.U64(ts.ICacheMissStall)
	}
	w.U64(s.CondBranches)
	w.U64(s.CondMispredicts)
	w.U64(s.TargetMisfetches)
	w.U64(s.StreamPredictions)
	w.U64(s.StreamMisses)
	w.U64(s.RASPops)
	w.U64(s.RASMispredicts)
	w.U64(s.FetchBlockLenSum)
	w.U64(s.FetchBlocks)
	w.U64(s.ICacheAccesses)
	w.U64(s.ICacheMisses)
	w.U64(s.DCacheAccesses)
	w.U64(s.DCacheMisses)
	w.U64(s.L2Accesses)
	w.U64(s.L2Misses)
	w.U64(s.ITLBMisses)
	w.U64(s.DTLBMisses)
	w.U64(s.StallROBFull)
	w.U64(s.StallIQFull)
	w.U64(s.StallRegsFull)
	w.U64(s.FetchBufStalls)
}

// DecodeState restores counters written with EncodeState. The receiver
// must be sized for the same thread count and fetch width.
func (s *Stats) DecodeState(r *snap.Reader) {
	s.Cycles = r.U64()
	s.FetchCycles = r.U64()
	s.Fetched = r.U64()
	hist := r.U64s()
	if r.Err() != nil {
		return
	}
	if len(hist) != len(s.FetchHist) {
		r.Fail("stats: snapshot fetch histogram has %d buckets, receiver has %d", len(hist), len(s.FetchHist))
		return
	}
	copy(s.FetchHist, hist)
	s.Committed = r.U64()
	s.Squashed = r.U64()
	s.Flushes = r.U64()
	s.FlushedUOps = r.U64()
	s.Replayed = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(s.PerThread) {
		r.Fail("stats: snapshot has %d threads, receiver has %d", n, len(s.PerThread))
		return
	}
	for i := range s.PerThread {
		ts := &s.PerThread[i]
		ts.Fetched = r.U64()
		ts.Committed = r.U64()
		ts.Squashed = r.U64()
		ts.CondBranches = r.U64()
		ts.CondMispredicts = r.U64()
		ts.ICacheMissStall = r.U64()
	}
	s.CondBranches = r.U64()
	s.CondMispredicts = r.U64()
	s.TargetMisfetches = r.U64()
	s.StreamPredictions = r.U64()
	s.StreamMisses = r.U64()
	s.RASPops = r.U64()
	s.RASMispredicts = r.U64()
	s.FetchBlockLenSum = r.U64()
	s.FetchBlocks = r.U64()
	s.ICacheAccesses = r.U64()
	s.ICacheMisses = r.U64()
	s.DCacheAccesses = r.U64()
	s.DCacheMisses = r.U64()
	s.L2Accesses = r.U64()
	s.L2Misses = r.U64()
	s.ITLBMisses = r.U64()
	s.DTLBMisses = r.U64()
	s.StallROBFull = r.U64()
	s.StallIQFull = r.U64()
	s.StallRegsFull = r.U64()
	s.FetchBufStalls = r.U64()
}
