// Package stats collects simulation statistics: fetch and commit
// throughput, per-thread breakdowns, branch predictor accuracy, cache
// behaviour, and the fetch-width distribution histograms the paper quotes
// in the text of Sections 3.1 and 3.2.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats accumulates counters over a simulation run.
type Stats struct {
	Cycles uint64

	// FetchCycles counts cycles in which the fetch unit delivered at
	// least one instruction ("fetch requests" in the paper's IPFC).
	FetchCycles uint64
	// Fetched counts instructions delivered by the fetch unit
	// (wrong-path included; this is fetch throughput, not goodput).
	Fetched uint64
	// FetchHist[n] counts fetch cycles that delivered exactly n
	// instructions; index 0 counts active-but-empty fetch cycles (all
	// selected threads stalled on I-cache misses or empty FTQs while work
	// remained).
	FetchHist []uint64

	// Committed counts architecturally retired instructions.
	Committed uint64
	// Squashed counts instructions removed by misprediction recovery.
	Squashed uint64
	// Flushes counts FLUSH-policy events (one per long-latency load that
	// triggered a thread flush); FlushedUOps counts the uops those events
	// removed from the pipeline, and Replayed counts redeliveries of
	// flushed uops into the fetch buffer after the load returned. All
	// three stay zero under every other policy.
	Flushes     uint64
	FlushedUOps uint64
	Replayed    uint64

	PerThread []ThreadStats

	// Branch predictor behaviour (committed-path branches only).
	CondBranches    uint64
	CondMispredicts uint64
	// TargetMisfetches counts BTB/FTB/stream target-structure misses that
	// caused a front-end redirect at decode.
	TargetMisfetches uint64
	// StreamPredictions / StreamMisses describe the stream predictor's
	// next-stream accuracy (stream engine only).
	StreamPredictions uint64
	StreamMisses      uint64
	// RASPops / RASMispredicts count return-address-stack behaviour.
	RASPops        uint64
	RASMispredicts uint64

	// FetchBlockLenSum / FetchBlocks give the average fetch-block length
	// produced by the prediction stage.
	FetchBlockLenSum uint64
	FetchBlocks      uint64

	// Cache behaviour.
	ICacheAccesses uint64
	ICacheMisses   uint64
	DCacheAccesses uint64
	DCacheMisses   uint64
	L2Accesses     uint64
	L2Misses       uint64
	ITLBMisses     uint64
	DTLBMisses     uint64

	// Resource pressure: cycles in which rename stalled for lack of each
	// shared resource (diagnoses the Fig. 7 clogging effect).
	StallROBFull   uint64
	StallIQFull    uint64
	StallRegsFull  uint64
	FetchBufStalls uint64
}

// ThreadStats is the per-thread slice of the counters.
type ThreadStats struct {
	Fetched         uint64
	Committed       uint64
	Squashed        uint64
	CondBranches    uint64
	CondMispredicts uint64
	ICacheMissStall uint64 // cycles the thread was blocked on an I-cache miss
}

// New returns a Stats sized for nthreads and the given maximum per-cycle
// fetch width.
func New(nthreads, maxWidth int) *Stats {
	return &Stats{
		FetchHist: make([]uint64, maxWidth+1),
		PerThread: make([]ThreadStats, nthreads),
	}
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// IPFC returns instructions per fetch cycle: the average number of
// instructions the fetch unit provided on every cycle it was active.
func (s *Stats) IPFC() float64 {
	if s.FetchCycles == 0 {
		return 0
	}
	return float64(s.Fetched) / float64(s.FetchCycles)
}

// CondAccuracy returns the committed-path conditional branch prediction
// accuracy in [0,1].
func (s *Stats) CondAccuracy() float64 {
	if s.CondBranches == 0 {
		return 1
	}
	return 1 - float64(s.CondMispredicts)/float64(s.CondBranches)
}

// AvgFetchBlockLen returns the mean fetch-block length produced by the
// prediction stage.
func (s *Stats) AvgFetchBlockLen() float64 {
	if s.FetchBlocks == 0 {
		return 0
	}
	return float64(s.FetchBlockLenSum) / float64(s.FetchBlocks)
}

// FracFetchCyclesAtLeast returns the fraction of fetch cycles that supplied
// at least n instructions. This reproduces the paper's in-text claims such
// as "gshare+BTB provides more than 4 instructions only 60% of the fetch
// cycles".
func (s *Stats) FracFetchCyclesAtLeast(n int) float64 {
	if s.FetchCycles == 0 {
		return 0
	}
	var c uint64
	for i := n; i < len(s.FetchHist); i++ {
		c += s.FetchHist[i]
	}
	return float64(c) / float64(s.FetchCycles)
}

// ICacheMissRate returns I-cache misses per access.
func (s *Stats) ICacheMissRate() float64 { return rate(s.ICacheMisses, s.ICacheAccesses) }

// DCacheMissRate returns D-cache misses per access.
func (s *Stats) DCacheMissRate() float64 { return rate(s.DCacheMisses, s.DCacheAccesses) }

// L2MissRate returns L2 misses per access.
func (s *Stats) L2MissRate() float64 { return rate(s.L2Misses, s.L2Accesses) }

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Snapshot is a flat, JSON-serializable summary of a run: the raw counters
// an experiment result needs, plus the derived rates the paper quotes.
// Experiment sweep output embeds one Snapshot per cell.
type Snapshot struct {
	Cycles      uint64 `json:"cycles"`
	FetchCycles uint64 `json:"fetch_cycles"`
	Fetched     uint64 `json:"fetched"`
	Committed   uint64 `json:"committed"`
	Squashed    uint64 `json:"squashed"`
	// The FLUSH-policy counters are omitted when zero so every other
	// policy's JSON stays byte-identical to pre-FLUSH baselines.
	Flushes     uint64 `json:"flushes,omitempty"`
	FlushedUOps uint64 `json:"flushed_uops,omitempty"`
	Replayed    uint64 `json:"replayed,omitempty"`

	IPC              float64 `json:"ipc"`
	IPFC             float64 `json:"ipfc"`
	AvgFetchBlockLen float64 `json:"avg_fetch_block_len"`

	CondBranches      uint64  `json:"cond_branches"`
	CondMispredicts   uint64  `json:"cond_mispredicts"`
	CondAccuracy      float64 `json:"cond_accuracy"`
	TargetMisfetches  uint64  `json:"target_misfetches"`
	StreamPredictions uint64  `json:"stream_predictions,omitempty"`
	StreamMisses      uint64  `json:"stream_misses,omitempty"`
	RASPops           uint64  `json:"ras_pops"`
	RASMispredicts    uint64  `json:"ras_mispredicts"`

	ICacheMissRate float64 `json:"icache_miss_rate"`
	DCacheMissRate float64 `json:"dcache_miss_rate"`
	L2MissRate     float64 `json:"l2_miss_rate"`
	ITLBMisses     uint64  `json:"itlb_misses"`
	DTLBMisses     uint64  `json:"dtlb_misses"`

	StallROBFull   uint64 `json:"stall_rob_full"`
	StallIQFull    uint64 `json:"stall_iq_full"`
	StallRegsFull  uint64 `json:"stall_regs_full"`
	FetchBufStalls uint64 `json:"fetch_buf_stalls"`

	PerThread []ThreadSnapshot `json:"per_thread"`
}

// ThreadSnapshot is the per-thread slice of a Snapshot.
type ThreadSnapshot struct {
	Fetched         uint64  `json:"fetched"`
	Committed       uint64  `json:"committed"`
	Squashed        uint64  `json:"squashed"`
	CondBranches    uint64  `json:"cond_branches"`
	CondMispredicts uint64  `json:"cond_mispredicts"`
	CondAccuracy    float64 `json:"cond_accuracy"`
}

// Snapshot freezes the current counters into a serializable value.
func (s *Stats) Snapshot() Snapshot {
	snap := Snapshot{
		Cycles:      s.Cycles,
		FetchCycles: s.FetchCycles,
		Fetched:     s.Fetched,
		Committed:   s.Committed,
		Squashed:    s.Squashed,
		Flushes:     s.Flushes,
		FlushedUOps: s.FlushedUOps,
		Replayed:    s.Replayed,

		IPC:              s.IPC(),
		IPFC:             s.IPFC(),
		AvgFetchBlockLen: s.AvgFetchBlockLen(),

		CondBranches:      s.CondBranches,
		CondMispredicts:   s.CondMispredicts,
		CondAccuracy:      s.CondAccuracy(),
		TargetMisfetches:  s.TargetMisfetches,
		StreamPredictions: s.StreamPredictions,
		StreamMisses:      s.StreamMisses,
		RASPops:           s.RASPops,
		RASMispredicts:    s.RASMispredicts,

		ICacheMissRate: s.ICacheMissRate(),
		DCacheMissRate: s.DCacheMissRate(),
		L2MissRate:     s.L2MissRate(),
		ITLBMisses:     s.ITLBMisses,
		DTLBMisses:     s.DTLBMisses,

		StallROBFull:   s.StallROBFull,
		StallIQFull:    s.StallIQFull,
		StallRegsFull:  s.StallRegsFull,
		FetchBufStalls: s.FetchBufStalls,

		PerThread: make([]ThreadSnapshot, len(s.PerThread)),
	}
	for i := range s.PerThread {
		t := &s.PerThread[i]
		snap.PerThread[i] = ThreadSnapshot{
			Fetched:         t.Fetched,
			Committed:       t.Committed,
			Squashed:        t.Squashed,
			CondBranches:    t.CondBranches,
			CondMispredicts: t.CondMispredicts,
			CondAccuracy:    1 - rate(t.CondMispredicts, t.CondBranches),
		}
	}
	return snap
}

// String renders a human-readable multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d committed=%d IPC=%.3f IPFC=%.3f\n",
		s.Cycles, s.Committed, s.IPC(), s.IPFC())
	fmt.Fprintf(&b, "fetched=%d squashed=%d avgFetchBlock=%.2f\n",
		s.Fetched, s.Squashed, s.AvgFetchBlockLen())
	fmt.Fprintf(&b, "condBr=%d mispred=%d acc=%.4f misfetch=%d\n",
		s.CondBranches, s.CondMispredicts, s.CondAccuracy(), s.TargetMisfetches)
	fmt.Fprintf(&b, "icache miss=%.4f dcache miss=%.4f l2 miss=%.4f\n",
		s.ICacheMissRate(), s.DCacheMissRate(), s.L2MissRate())
	fmt.Fprintf(&b, "stalls: rob=%d iq=%d regs=%d fetchbuf=%d\n",
		s.StallROBFull, s.StallIQFull, s.StallRegsFull, s.FetchBufStalls)
	for i := range s.PerThread {
		t := &s.PerThread[i]
		fmt.Fprintf(&b, "  T%d: committed=%d fetched=%d squashed=%d acc=%.4f\n",
			i, t.Committed, t.Fetched, t.Squashed,
			1-rate(t.CondMispredicts, t.CondBranches))
	}
	return b.String()
}

// Histogram is a small utility for distribution summaries used by the
// program-model tests and cmd/progstat.
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
	h.sum += float64(v)
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the mean observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (in [0,1])
// of the observations are <= v. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.counts))
	//smtfetch:commutative keys are collected and sorted before use; iteration order cannot reach the result
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	need := uint64(math.Ceil(p * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var acc uint64
	for _, k := range keys {
		acc += h.counts[k]
		if acc >= need {
			return k
		}
	}
	return keys[len(keys)-1]
}
