package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func sampleStats() *Stats {
	s := New(2, 8)
	s.Cycles = 1000
	s.FetchCycles = 800
	s.Fetched = 4000
	s.Committed = 2500
	s.Squashed = 900
	s.CondBranches = 400
	s.CondMispredicts = 40
	s.TargetMisfetches = 7
	s.RASPops = 55
	s.RASMispredicts = 5
	s.FetchBlockLenSum = 3200
	s.FetchBlocks = 400
	s.ICacheAccesses = 1000
	s.ICacheMisses = 20
	s.DCacheAccesses = 600
	s.DCacheMisses = 120
	s.L2Accesses = 140
	s.L2Misses = 70
	s.ITLBMisses = 3
	s.DTLBMisses = 11
	s.StallROBFull = 13
	s.StallIQFull = 17
	s.StallRegsFull = 19
	s.FetchBufStalls = 23
	s.PerThread[0] = ThreadStats{Fetched: 2100, Committed: 1300, Squashed: 500, CondBranches: 250, CondMispredicts: 25}
	s.PerThread[1] = ThreadStats{Fetched: 1900, Committed: 1200, Squashed: 400, CondBranches: 150, CondMispredicts: 15}
	return s
}

func TestDerivedRates(t *testing.T) {
	s := sampleStats()
	if got := s.IPC(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := s.IPFC(); math.Abs(got-5.0) > 1e-12 {
		t.Errorf("IPFC = %v, want 5.0", got)
	}
	if got := s.CondAccuracy(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("CondAccuracy = %v, want 0.9", got)
	}
	if got := s.AvgFetchBlockLen(); math.Abs(got-8.0) > 1e-12 {
		t.Errorf("AvgFetchBlockLen = %v, want 8.0", got)
	}
	empty := New(1, 8)
	if empty.IPC() != 0 || empty.IPFC() != 0 || empty.CondAccuracy() != 1 {
		t.Error("zero-run derived rates wrong")
	}
}

func TestSnapshotMatchesCounters(t *testing.T) {
	s := sampleStats()
	snap := s.Snapshot()
	if snap.Cycles != s.Cycles || snap.Committed != s.Committed || snap.Fetched != s.Fetched {
		t.Fatalf("snapshot raw counters diverge: %+v", snap)
	}
	if snap.IPC != s.IPC() || snap.IPFC != s.IPFC() || snap.CondAccuracy != s.CondAccuracy() {
		t.Fatalf("snapshot derived rates diverge: %+v", snap)
	}
	if snap.ICacheMissRate != s.ICacheMissRate() || snap.L2MissRate != s.L2MissRate() {
		t.Fatalf("snapshot cache rates diverge: %+v", snap)
	}
	if len(snap.PerThread) != 2 {
		t.Fatalf("PerThread len = %d, want 2", len(snap.PerThread))
	}
	if snap.PerThread[0].Committed != 1300 || snap.PerThread[1].CondAccuracy != 0.9 {
		t.Fatalf("per-thread snapshot wrong: %+v", snap.PerThread)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	snap := sampleStats().Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("JSON round trip changed the snapshot:\n%+v\n%+v", snap, back)
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	s := sampleStats()
	snap := s.Snapshot()
	s.Committed += 1000
	s.PerThread[0].Committed += 1000
	if snap.Committed != 2500 || snap.PerThread[0].Committed != 1300 {
		t.Fatal("snapshot aliases live counters")
	}
}

func TestFracFetchCyclesAtLeast(t *testing.T) {
	s := New(1, 8)
	s.FetchCycles = 10
	s.FetchHist[0] = 2
	s.FetchHist[4] = 3
	s.FetchHist[8] = 5
	if got := s.FracFetchCyclesAtLeast(4); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("FracFetchCyclesAtLeast(4) = %v, want 0.8", got)
	}
	if got := s.FracFetchCyclesAtLeast(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FracFetchCyclesAtLeast(5) = %v, want 0.5", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3, 10} {
		h.Add(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	if got := h.Mean(); math.Abs(got-24.0/7) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, 24.0/7)
	}
	if got := h.Percentile(0.5); got != 3 {
		t.Fatalf("P50 = %d, want 3", got)
	}
	if got := h.Percentile(1.0); got != 10 {
		t.Fatalf("P100 = %d, want 10", got)
	}
}
