// Package snap implements the tiny binary codec used by warm-state
// checkpoints. It is deliberately minimal: a little-endian, in-memory,
// append-only Writer and a sticky-error Reader, with no reflection and no
// I/O. Every simulator component that participates in Snapshot/Restore
// encodes its dynamic state through these two types, so the byte layout
// of a checkpoint is exactly the concatenation of the components'
// hand-written encoders — deterministic by construction.
//
// Snapshot encoding is cold-path code: it runs once per warm-up group,
// never inside the cycle loop, so allocation here is fine.
package snap

import "fmt"

// Writer accumulates a snapshot byte stream.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated stream. The slice aliases the writer's
// buffer; callers must not append to the writer afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = append(w.buf, byte(v), byte(v>>8)) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Int appends an int as a sign-extended uint64.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes8 appends a length-prefixed byte slice.
func (w *Writer) Bytes8(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// U64s appends a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Bools appends a length-prefixed []bool.
func (w *Writer) Bools(vs []bool) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.Bool(v)
	}
}

// Reader decodes a snapshot byte stream produced by Writer. Errors are
// sticky: after the first decode failure every subsequent call returns
// zero values, so callers can decode a whole structure and check Err once.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Rest returns the number of unread bytes.
func (r *Reader) Rest() int { return len(r.data) - r.off }

// Fail records an external decode error (e.g. a semantic validation
// failure) so the sticky-error contract covers it too.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.err = fmt.Errorf("snap: truncated stream: need %d bytes at offset %d, have %d", n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Int reads an int written with Writer.Int.
func (r *Reader) Int() int { return int(int64(r.U64())) }

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes8 reads a length-prefixed byte slice (copied out of the stream).
func (r *Reader) Bytes8() []byte {
	n := r.len()
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.len()
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// U64s reads a length-prefixed []uint64.
func (r *Reader) U64s() []uint64 {
	n := r.len()
	if r.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// Bools reads a length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.len()
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}

// Len reads a length prefix, validating it against the remaining input so
// corrupt streams fail fast instead of allocating absurd buffers.
func (r *Reader) Len() int { return r.len() }

func (r *Reader) len() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)-r.off)+1<<20 {
		r.err = fmt.Errorf("snap: implausible length %d at offset %d (stream has %d bytes left)", n, r.off, len(r.data)-r.off)
		return 0
	}
	return int(n)
}
