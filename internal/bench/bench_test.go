package bench

import (
	"sort"
	"testing"
)

func TestWorkloadEnumeration(t *testing.T) {
	ws := Workloads()
	names := WorkloadNames()
	if len(ws) != len(names) {
		t.Fatalf("Workloads/WorkloadNames disagree: %d vs %d", len(ws), len(names))
	}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Errorf("order mismatch at %d: %q vs %q", i, w.Name, names[i])
		}
		if got, err := WorkloadByName(w.Name); err != nil || got.Name != w.Name {
			t.Errorf("WorkloadByName(%q) = %+v, %v", w.Name, got, err)
		}
		if w.Threads() != len(w.Benchmarks) {
			t.Errorf("%s: Threads() = %d, benchmarks %d", w.Name, w.Threads(), len(w.Benchmarks))
		}
		for _, b := range w.Benchmarks {
			if _, err := Profile(b); err != nil {
				t.Errorf("%s references unknown benchmark %q", w.Name, b)
			}
		}
	}
	if _, err := WorkloadByName("9_NOPE"); err == nil {
		t.Error("WorkloadByName accepted an unknown workload")
	}
}

func TestWorkloadClass(t *testing.T) {
	want := map[string]string{
		"2_ILP": "ILP", "2_MEM": "MEM", "2_MIX": "MIX",
		"4_ILP": "ILP", "4_MEM": "MEM", "4_MIX": "MIX",
		"6_ILP": "ILP", "6_MIX": "MIX",
		"8_ILP": "ILP", "8_MIX": "MIX",
	}
	for _, w := range Workloads() {
		if got := w.Class(); got != want[w.Name] {
			t.Errorf("%s.Class() = %q, want %q", w.Name, got, want[w.Name])
		}
	}
}

func TestNamesSortedAndResolvable(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("Names() has %d entries, want 12", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("Names() not sorted")
	}
	for _, n := range names {
		p, err := Profile(n)
		if err != nil {
			t.Fatalf("Profile(%q): %v", n, err)
		}
		if p.Name != n {
			t.Errorf("Profile(%q).Name = %q", n, p.Name)
		}
		if _, err := BenchClass(n); err != nil {
			t.Errorf("BenchClass(%q): %v", n, err)
		}
	}
	if _, err := Profile("nonesuch"); err == nil {
		t.Error("Profile accepted an unknown benchmark")
	}
	if _, err := BenchClass("nonesuch"); err == nil {
		t.Error("BenchClass accepted an unknown benchmark")
	}
}

func TestILPAndMemPartition(t *testing.T) {
	ilp := ILPWorkloads()
	mem := MemWorkloads()
	if len(ilp)+len(mem) != len(Workloads()) {
		t.Fatalf("partition sizes %d+%d != %d", len(ilp), len(mem), len(Workloads()))
	}
	for _, w := range ilp {
		if w.Class() != "ILP" {
			t.Errorf("ILPWorkloads contains %s with class %s", w.Name, w.Class())
		}
	}
	for _, w := range mem {
		if w.Class() == "ILP" {
			t.Errorf("MemWorkloads contains pure-ILP %s", w.Name)
		}
	}
}
