// Package bench provides the synthetic models of the twelve SPECint2000
// benchmarks used in the paper (Table 1) and the multithreaded workloads
// built from them (Table 2).
//
// Each profile is calibrated so that its dynamic average basic-block size
// matches Table 1 and its qualitative character matches the paper's ILP/MEM
// classification: ILP benchmarks have cache-resident working sets and long
// dependence distances; MEM benchmarks have working sets that bust the 1MB
// L2 and short, often pointer-chasing dependence chains.
package bench

import (
	"fmt"
	"sort"

	"smtfetch/internal/prog"
)

// Class labels a workload or benchmark following Table 2.
type Class uint8

const (
	// ILP marks benchmarks with high instruction-level parallelism and
	// good cache behaviour.
	ILP Class = iota
	// MEM marks memory-bound benchmarks.
	MEM
)

// String returns "ILP" or "MEM".
func (c Class) String() string {
	if c == MEM {
		return "MEM"
	}
	return "ILP"
}

// profiles maps benchmark name to its synthetic model parameters.
//
// AvgBBSize values come directly from Table 1. StaticBlocks approximates
// relative code footprints (gcc/perlbmk/vortex large; gzip/bzip2/mcf small).
// Memory parameters encode the MEM classification: mcf's 40MB pointer-heavy
// working set, twolf/vpr's L2-busting footprints, and the ILP benchmarks'
// cache-resident sets.
var profiles = map[string]prog.Profile{
	"gzip": {
		Name: "gzip", AvgBBSize: 11.02, StaticBlocks: 900,
		HotFraction: 0.20, HotWeight: 0.70, LocalityWindow: 24,
		JumpFrac: 0.07, CallFrac: 0.10, IndirectFrac: 0.01,
		LoopFrac: 0.34, CorrFrac: 0.22, RarelyTakenFrac: 0.30, HardFrac: 0.07, MeanTripCount: 12,
		BiasMean: 0.32, Noise: 0.035,
		LoadFrac: 0.21, StoreFrac: 0.09, MulFrac: 0.01, FPFrac: 0.005,
		MeanDepDist: 7.5,
		HotBytes:    24 * 1024, ColdBytes: 160 * 1024, ColdFrac: 0.10,
		ChaseFrac: 0.05, StrideFrac: 0.55,
	},
	"vpr": {
		Name: "vpr", AvgBBSize: 9.68, StaticBlocks: 2200,
		HotFraction: 0.18, HotWeight: 0.62, LocalityWindow: 28,
		JumpFrac: 0.07, CallFrac: 0.12, IndirectFrac: 0.01,
		LoopFrac: 0.30, CorrFrac: 0.22, RarelyTakenFrac: 0.26, HardFrac: 0.12, MeanTripCount: 9,
		BiasMean: 0.34, Noise: 0.06,
		LoadFrac: 0.27, StoreFrac: 0.10, MulFrac: 0.02, FPFrac: 0.04,
		MeanDepDist: 3.6,
		HotBytes:    28 * 1024, ColdBytes: 4 * 1024 * 1024, ColdFrac: 0.38,
		ChaseFrac: 0.30, StrideFrac: 0.25,
		MemoryBound: true,
	},
	"gcc": {
		Name: "gcc", AvgBBSize: 5.76, StaticBlocks: 14000,
		HotFraction: 0.12, HotWeight: 0.45, LocalityWindow: 60,
		JumpFrac: 0.09, CallFrac: 0.14, IndirectFrac: 0.03,
		LoopFrac: 0.22, CorrFrac: 0.26, RarelyTakenFrac: 0.32, HardFrac: 0.12, MeanTripCount: 6,
		BiasMean: 0.36, Noise: 0.075,
		LoadFrac: 0.25, StoreFrac: 0.12, MulFrac: 0.01, FPFrac: 0.005,
		MeanDepDist: 5.0,
		HotBytes:    32 * 1024, ColdBytes: 512 * 1024, ColdFrac: 0.14,
		ChaseFrac: 0.12, StrideFrac: 0.35,
	},
	"mcf": {
		Name: "mcf", AvgBBSize: 3.92, StaticBlocks: 700,
		HotFraction: 0.22, HotWeight: 0.72, LocalityWindow: 16,
		JumpFrac: 0.06, CallFrac: 0.10, IndirectFrac: 0.005,
		LoopFrac: 0.30, CorrFrac: 0.20, RarelyTakenFrac: 0.22, HardFrac: 0.10, MeanTripCount: 10,
		BiasMean: 0.36, Noise: 0.055,
		LoadFrac: 0.32, StoreFrac: 0.09, MulFrac: 0.01, FPFrac: 0.002,
		MeanDepDist: 2.4,
		HotBytes:    20 * 1024, ColdBytes: 40 * 1024 * 1024, ColdFrac: 0.55,
		ChaseFrac: 0.60, StrideFrac: 0.10,
		MemoryBound: true,
	},
	"crafty": {
		Name: "crafty", AvgBBSize: 9.24, StaticBlocks: 3400,
		HotFraction: 0.18, HotWeight: 0.60, LocalityWindow: 32,
		JumpFrac: 0.07, CallFrac: 0.12, IndirectFrac: 0.015,
		LoopFrac: 0.26, CorrFrac: 0.26, RarelyTakenFrac: 0.28, HardFrac: 0.09, MeanTripCount: 7,
		BiasMean: 0.34, Noise: 0.055,
		LoadFrac: 0.23, StoreFrac: 0.08, MulFrac: 0.02, FPFrac: 0.003,
		MeanDepDist: 6.5,
		HotBytes:    30 * 1024, ColdBytes: 640 * 1024, ColdFrac: 0.12,
		ChaseFrac: 0.08, StrideFrac: 0.40,
	},
	"parser": {
		Name: "parser", AvgBBSize: 6.37, StaticBlocks: 2600,
		HotFraction: 0.16, HotWeight: 0.55, LocalityWindow: 36,
		JumpFrac: 0.08, CallFrac: 0.14, IndirectFrac: 0.012,
		LoopFrac: 0.24, CorrFrac: 0.24, RarelyTakenFrac: 0.30, HardFrac: 0.11, MeanTripCount: 6,
		BiasMean: 0.36, Noise: 0.065,
		LoadFrac: 0.25, StoreFrac: 0.10, MulFrac: 0.01, FPFrac: 0.003,
		MeanDepDist: 4.2,
		HotBytes:    28 * 1024, ColdBytes: 900 * 1024, ColdFrac: 0.16,
		ChaseFrac: 0.25, StrideFrac: 0.30,
	},
	"eon": {
		Name: "eon", AvgBBSize: 8.73, StaticBlocks: 4200,
		HotFraction: 0.16, HotWeight: 0.58, LocalityWindow: 30,
		JumpFrac: 0.06, CallFrac: 0.18, IndirectFrac: 0.025,
		LoopFrac: 0.28, CorrFrac: 0.24, RarelyTakenFrac: 0.26, HardFrac: 0.06, MeanTripCount: 8,
		BiasMean: 0.33, Noise: 0.04,
		LoadFrac: 0.24, StoreFrac: 0.12, MulFrac: 0.02, FPFrac: 0.08,
		MeanDepDist: 6.8,
		HotBytes:    26 * 1024, ColdBytes: 200 * 1024, ColdFrac: 0.08,
		ChaseFrac: 0.05, StrideFrac: 0.45,
	},
	"perlbmk": {
		Name: "perlbmk", AvgBBSize: 10.06, StaticBlocks: 9000,
		HotFraction: 0.14, HotWeight: 0.52, LocalityWindow: 48,
		JumpFrac: 0.08, CallFrac: 0.16, IndirectFrac: 0.035,
		LoopFrac: 0.24, CorrFrac: 0.24, RarelyTakenFrac: 0.28, HardFrac: 0.09, MeanTripCount: 7,
		BiasMean: 0.35, Noise: 0.05,
		LoadFrac: 0.26, StoreFrac: 0.12, MulFrac: 0.01, FPFrac: 0.004,
		MeanDepDist: 4.0,
		HotBytes:    30 * 1024, ColdBytes: 6 * 1024 * 1024, ColdFrac: 0.30,
		ChaseFrac: 0.35, StrideFrac: 0.25,
		MemoryBound: true,
	},
	"gap": {
		Name: "gap", AvgBBSize: 9.16, StaticBlocks: 5200,
		HotFraction: 0.16, HotWeight: 0.56, LocalityWindow: 34,
		JumpFrac: 0.07, CallFrac: 0.14, IndirectFrac: 0.02,
		LoopFrac: 0.28, CorrFrac: 0.22, RarelyTakenFrac: 0.28, HardFrac: 0.08, MeanTripCount: 9,
		BiasMean: 0.34, Noise: 0.045,
		LoadFrac: 0.24, StoreFrac: 0.10, MulFrac: 0.02, FPFrac: 0.01,
		MeanDepDist: 5.8,
		HotBytes:    28 * 1024, ColdBytes: 400 * 1024, ColdFrac: 0.10,
		ChaseFrac: 0.10, StrideFrac: 0.40,
	},
	"vortex": {
		Name: "vortex", AvgBBSize: 6.50, StaticBlocks: 10000,
		HotFraction: 0.13, HotWeight: 0.50, LocalityWindow: 52,
		JumpFrac: 0.08, CallFrac: 0.16, IndirectFrac: 0.015,
		LoopFrac: 0.22, CorrFrac: 0.24, RarelyTakenFrac: 0.32, HardFrac: 0.07, MeanTripCount: 6,
		BiasMean: 0.35, Noise: 0.045,
		LoadFrac: 0.26, StoreFrac: 0.13, MulFrac: 0.01, FPFrac: 0.003,
		MeanDepDist: 5.5,
		HotBytes:    30 * 1024, ColdBytes: 700 * 1024, ColdFrac: 0.12,
		ChaseFrac: 0.15, StrideFrac: 0.35,
	},
	"bzip2": {
		Name: "bzip2", AvgBBSize: 10.02, StaticBlocks: 1000,
		HotFraction: 0.20, HotWeight: 0.68, LocalityWindow: 24,
		JumpFrac: 0.06, CallFrac: 0.10, IndirectFrac: 0.008,
		LoopFrac: 0.34, CorrFrac: 0.22, RarelyTakenFrac: 0.28, HardFrac: 0.07, MeanTripCount: 11,
		BiasMean: 0.33, Noise: 0.04,
		LoadFrac: 0.23, StoreFrac: 0.10, MulFrac: 0.01, FPFrac: 0.003,
		MeanDepDist: 7.0,
		HotBytes:    26 * 1024, ColdBytes: 256 * 1024, ColdFrac: 0.12,
		ChaseFrac: 0.05, StrideFrac: 0.55,
	},
	"twolf": {
		Name: "twolf", AvgBBSize: 8.00, StaticBlocks: 2400,
		HotFraction: 0.18, HotWeight: 0.60, LocalityWindow: 28,
		JumpFrac: 0.07, CallFrac: 0.12, IndirectFrac: 0.01,
		LoopFrac: 0.28, CorrFrac: 0.22, RarelyTakenFrac: 0.26, HardFrac: 0.13, MeanTripCount: 8,
		BiasMean: 0.35, Noise: 0.065,
		LoadFrac: 0.28, StoreFrac: 0.10, MulFrac: 0.02, FPFrac: 0.02,
		MeanDepDist: 3.2,
		HotBytes:    26 * 1024, ColdBytes: 2560 * 1024, ColdFrac: 0.42,
		ChaseFrac: 0.35, StrideFrac: 0.20,
		MemoryBound: true,
	},
}

// Names returns all benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Profile returns the synthetic model for a benchmark by name.
func Profile(name string) (prog.Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return prog.Profile{}, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return p, nil
}

// MustProfile is Profile for known-good names; it panics on unknown names.
func MustProfile(name string) prog.Profile {
	p, err := Profile(name)
	if err != nil {
		panic(err)
	}
	return p
}

// BenchClass returns the benchmark's Table 2 classification.
func BenchClass(name string) (Class, error) {
	p, err := Profile(name)
	if err != nil {
		return ILP, err
	}
	if p.MemoryBound {
		return MEM, nil
	}
	return ILP, nil
}

// Workload is one multithreaded workload from Table 2.
type Workload struct {
	// Name follows the paper ("2_MIX", "4_ILP", ...).
	Name string
	// Benchmarks lists the per-thread benchmarks.
	Benchmarks []string
}

// Threads returns the thread count.
func (w Workload) Threads() int { return len(w.Benchmarks) }

// Class returns the workload's Table 2 composition: "ILP" when every
// benchmark is ILP, "MEM" when every benchmark is memory-bound, and "MIX"
// otherwise.
func (w Workload) Class() string {
	hasILP, hasMEM := false, false
	for _, b := range w.Benchmarks {
		if cl, _ := BenchClass(b); cl == MEM {
			hasMEM = true
		} else {
			hasILP = true
		}
	}
	switch {
	case !hasMEM:
		return ILP.String()
	case !hasILP:
		return MEM.String()
	default:
		return "MIX"
	}
}

// workloads reproduces Table 2 exactly.
var workloadTable = []Workload{
	{Name: "2_ILP", Benchmarks: []string{"eon", "gcc"}},
	{Name: "2_MEM", Benchmarks: []string{"mcf", "twolf"}},
	{Name: "2_MIX", Benchmarks: []string{"gzip", "twolf"}},
	{Name: "4_ILP", Benchmarks: []string{"eon", "gcc", "gzip", "bzip2"}},
	{Name: "4_MEM", Benchmarks: []string{"mcf", "twolf", "vpr", "perlbmk"}},
	{Name: "4_MIX", Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf"}},
	{Name: "6_ILP", Benchmarks: []string{"eon", "gcc", "gzip", "bzip2", "crafty", "vortex"}},
	{Name: "6_MIX", Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf", "vpr", "eon"}},
	{Name: "8_ILP", Benchmarks: []string{"eon", "gcc", "gzip", "bzip2", "crafty", "vortex", "gap", "parser"}},
	{Name: "8_MIX", Benchmarks: []string{"gzip", "twolf", "bzip2", "mcf", "vpr", "eon", "gap", "parser"}},
}

// Workloads returns all Table 2 workloads in paper order.
func Workloads() []Workload {
	out := make([]Workload, len(workloadTable))
	copy(out, workloadTable)
	return out
}

// WorkloadNames returns the Table 2 workload names in paper order.
func WorkloadNames() []string {
	names := make([]string, len(workloadTable))
	for i, w := range workloadTable {
		names[i] = w.Name
	}
	return names
}

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range workloadTable {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: unknown workload %q", name)
}

// ILPWorkloads returns the workloads containing only ILP benchmarks, in
// paper order (the Figure 5/6 set).
func ILPWorkloads() []Workload {
	var out []Workload
	for _, w := range workloadTable {
		if isILPOnly(w) {
			out = append(out, w)
		}
	}
	return out
}

// MemWorkloads returns workloads with at least one MEM benchmark, in paper
// order (the Figure 7/8 set: MIX and MEM).
func MemWorkloads() []Workload {
	var out []Workload
	for _, w := range workloadTable {
		if !isILPOnly(w) {
			out = append(out, w)
		}
	}
	return out
}

func isILPOnly(w Workload) bool {
	for _, b := range w.Benchmarks {
		if profiles[b].MemoryBound {
			return false
		}
	}
	return true
}
