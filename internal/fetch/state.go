package fetch

// Warm-state snapshot support and functional fast-forward for the
// front-end.
//
// Snapshot layout: the core owns the request table (it knows which
// requests are pinned by in-flight uops); this file serializes the shared
// predictor tables plus per-thread speculative state, with FTQ contents
// written as indices into the core's table. On restore the core acquires
// fresh requests from the per-thread pools first, then calls DecodeState
// with a lookup over them, so queue pushes re-establish references through
// the ordinary protocol.
//
// All snapshot code here is cold-path, outside the cycle loop.

import (
	"fmt"

	"smtfetch/internal/bpred"
	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
	"smtfetch/internal/snap"
)

// Pool returns thread t's request pool (snapshot restore and invariant
// tests).
func (f *FrontEnd) Pool(t int) *ftq.Pool { return f.threads[t].pool }

// EncodeState serializes the front-end's dynamic state. reqIndex maps a
// queued request to its position in the core's request table.
func (f *FrontEnd) EncodeState(w *snap.Writer, reqIndex func(*ftq.Request) int) {
	switch f.engine {
	case config.GShareBTB:
		f.gshare.EncodeState(w)
		f.btb.EncodeState(w)
	case config.GSkewFTB:
		f.gskew.EncodeState(w)
		f.ftb.EncodeState(w)
	default:
		f.stream.EncodeState(w)
	}
	w.U64(f.Predictions)
	w.Int(len(f.threads))
	for _, tf := range f.threads {
		w.Bool(tf.wrongPath)
		w.U64(uint64(tf.nextPC))
		w.U64(tf.ghr)
		tf.ras.EncodeState(w)
		tf.path.EncodeValue(w)
		st := tf.seedR.State()
		for _, v := range st {
			w.U64(v)
		}
		tf.trace.EncodeState(w)
		w.Bool(tf.ghost != nil)
		if tf.ghost != nil {
			tf.ghost.EncodeState(w)
		}
		tf.queue.EncodeState(w, reqIndex)
	}
}

// DecodeState restores state written with EncodeState onto a freshly
// constructed front-end of identical configuration. reqLookup resolves
// request-table indices to the live requests the core pre-acquired.
func (f *FrontEnd) DecodeState(r *snap.Reader, reqLookup func(int) *ftq.Request) {
	switch f.engine {
	case config.GShareBTB:
		f.gshare.DecodeState(r)
		f.btb.DecodeState(r)
	case config.GSkewFTB:
		f.gskew.DecodeState(r)
		f.ftb.DecodeState(r)
	default:
		f.stream.DecodeState(r)
	}
	f.Predictions = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return
	}
	if n != len(f.threads) {
		r.Fail("fetch: snapshot has %d threads, front-end has %d", n, len(f.threads))
		return
	}
	for _, tf := range f.threads {
		tf.wrongPath = r.Bool()
		tf.nextPC = isa.Addr(r.U64())
		tf.ghr = r.U64()
		tf.ras.DecodeState(r)
		tf.path = bpred.DecodePathHistory(r)
		var st [4]uint64
		for i := range st {
			st[i] = r.U64()
		}
		tf.seedR.SetState(st)
		tf.trace.DecodeState(r)
		hasGhost := r.Bool()
		if r.Err() != nil {
			return
		}
		if hasGhost {
			if tf.ghost == nil {
				tf.ghost = tf.prog.NewStreamAt(0, tf.prog.Entry())
			}
			tf.ghost.DecodeState(r)
		} else {
			tf.ghost = nil
		}
		tf.queue.DecodeState(r, reqLookup)
	}
}

// BeginFunctional starts a functional fast-forward phase for thread t.
// The front-end must be fully drained first: no wrong path, empty FTQ,
// and the next fetch address sitting on the committed trace.
func (f *FrontEnd) BeginFunctional(t int) {
	tf := f.threads[t]
	if tf.wrongPath || tf.queue.Len() != 0 {
		panic(fmt.Sprintf("fetch: BeginFunctional on undrained thread %d", t))
	}
	if tf.trace.PC() != tf.nextPC {
		panic(fmt.Sprintf("fetch: BeginFunctional thread %d at %#x but trace at %#x", t, tf.nextPC, tf.trace.PC()))
	}
	tf.ffBlockStart = tf.nextPC
	tf.ffBlockInstrs = 0
	tf.ffPathCp = tf.path
}

// FunctionalAdvance consumes one instruction of thread t's committed
// trace, training the predictors on the true outcome and updating the
// thread's speculative front-end state exactly as commit-time training
// plus perfect prediction would. It returns the consumed instruction by
// value. No statistics are touched — functional instructions are invisible
// to measurement.
func (f *FrontEnd) FunctionalAdvance(t int) isa.Instruction {
	tf := f.threads[t]
	in := *tf.trace.Peek(0)
	tf.trace.Advance(1)

	if tf.ffBlockInstrs == 0 {
		tf.ffBlockStart = in.PC
		tf.ffPathCp = tf.path
	}
	tf.ffBlockInstrs++

	if in.IsBranch() {
		f.trainFunctional(tf, &in)
	}

	// Apply the true outcome to the speculative front-end state (on the
	// committed path with perfect hindsight, speculative == architectural).
	if in.IsBranch() {
		switch in.BrKind {
		case isa.CondBranch:
			tf.ghr = tf.ghr<<1 | b2u(in.Taken)
		case isa.Call:
			tf.ras.Push(in.FallThrough)
		case isa.Return:
			tf.ras.Pop()
		}
		if in.Taken {
			tf.path.Push(in.Target)
		}
	}
	if in.Taken || tf.ffBlockInstrs >= maxBlock {
		// Taken branches end training blocks; blocks that outgrow the
		// representable length restart without training.
		tf.ffBlockInstrs = 0
	}
	tf.nextPC = in.NextPC()
	return in
}

// trainFunctional mirrors CommitBranch's per-engine training using the
// functional block tracking in place of a fetch request's BranchInfo.
func (f *FrontEnd) trainFunctional(tf *threadFE, in *isa.Instruction) {
	switch f.engine {
	case config.GShareBTB:
		if in.BrKind == isa.CondBranch {
			f.gshare.Update(in.PC, tf.ghr, in.Taken)
		}
		if in.Taken {
			f.btb.Insert(in.PC, bpred.BTBEntry{Kind: in.BrKind, Target: in.Target})
		}
	case config.GSkewFTB:
		if in.BrKind == isa.CondBranch {
			f.gskew.Update(in.PC, tf.ghr, in.Taken)
		}
		if in.Taken {
			f.ftb.Train(tf.ffBlockStart, tf.ffBlockInstrs, in.BrKind, in.Target)
			f.ftb.TakenReset(tf.ffBlockStart)
		}
	default:
		if in.Taken {
			path := tf.ffPathCp
			f.stream.Train(tf.ffBlockStart, &path, bpred.StreamPrediction{
				Length:       tf.ffBlockInstrs,
				Next:         in.Target,
				EndsInReturn: in.BrKind == isa.Return,
				EndsInCall:   in.BrKind == isa.Call,
			})
		}
	}
}

// Drained reports whether thread t's front-end is fully drained: no wrong
// path, empty FTQ, next fetch address on the committed trace.
func (f *FrontEnd) Drained(t int) bool {
	tf := f.threads[t]
	return !tf.wrongPath && tf.queue.Len() == 0 && tf.trace.PC() == tf.nextPC
}
