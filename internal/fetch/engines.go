package fetch

import (
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
)

// resolveStageFor classifies where a wrong prediction of `in` is detected.
// Direct jumps and calls are verifiable at decode (the target is in the
// instruction); so are blocks whose predicted terminator turns out not to
// be a branch at all, and conditional branches whose direction was right
// but whose cached target was stale. Everything else — wrong conditional
// direction, wrong indirect target, wrong return address — waits for
// execute.
//
//smtfetch:hotpath
func resolveStageFor(in *isa.Instruction, predTaken bool) ftq.ResolveStage {
	if !in.IsBranch() {
		return ftq.ResolveDecode
	}
	switch in.BrKind {
	case isa.Jump, isa.Call:
		return ftq.ResolveDecode
	case isa.CondBranch:
		if predTaken == in.Taken {
			return ftq.ResolveDecode // direction right, stale target
		}
		return ftq.ResolveExecute
	default: // Return, IndirectJump
		return ftq.ResolveExecute
	}
}

// checkpointInfo attaches a BranchInfo to instruction i of the request,
// seeded with the thread's speculative-state checkpoints taken before any
// update for the branch itself. The record lives inline in the request;
// the returned pointer is for the caller to finish filling.
//
//smtfetch:hotpath
func (tf *threadFE) checkpointInfo(req *ftq.Request, i int, blockStart isa.Addr, blockInstrs int) *ftq.BranchInfo {
	info := req.AddBranch(i)
	info.GHR = tf.ghr
	info.RASCp = tf.ras.Checkpoint()
	info.PathCp = tf.path
	info.BlockStart = blockStart
	info.BlockInstrs = blockInstrs
	return info
}

// finishBranch applies the universal end-of-block protocol for a predicted
// terminating branch: compare the predicted successor with the path truth,
// set up wrong-path mode or continue, and finish the request's inline
// BranchInfo (info already lives in req; only Resolve remains to be set).
//
//smtfetch:hotpath
func (f *FrontEnd) finishBranch(tf *threadFE, in *isa.Instruction,
	info *ftq.BranchInfo, predTaken bool, predTarget isa.Addr) {

	info.PredTaken = predTaken
	info.PredTarget = predTarget
	predNext := in.FallThrough
	if predTaken {
		predNext = predTarget
	}
	truthNext := in.NextPC()

	if predNext == truthNext {
		info.Resolve = ftq.ResolveNone
		tf.nextPC = truthNext
		return
	}
	if tf.wrongPath {
		// On a wrong path the front-end's prediction *defines* the
		// path: steer the ghost along it and never schedule recovery.
		info.Resolve = ftq.ResolveNone
		tf.ghost.Redirect(predNext)
		tf.nextPC = predNext
		return
	}
	info.Resolve = resolveStageFor(in, predTaken)
	tf.enterWrongPath(predNext, f.ghostAt(tf, predNext))
}

// embeddedDivergence handles a branch inside a fetch block that the
// front-end implicitly predicted not-taken but that is actually taken on
// the current path. On the committed path this starts a wrong path at the
// branch's fall-through; on a wrong path the ghost is simply steered back
// to the implicit prediction. It returns true if the block must be
// truncated at this instruction.
//
//smtfetch:hotpath
func (f *FrontEnd) embeddedDivergence(tf *threadFE, req *ftq.Request, i int, in *isa.Instruction, start isa.Addr) bool {
	if tf.wrongPath {
		tf.ghost.Redirect(in.FallThrough)
		tf.nextPC = in.FallThrough
		return false // keep scanning sequentially
	}
	info := tf.checkpointInfo(req, i, start, i+1)
	info.PredTaken = false
	info.Resolve = resolveStageFor(in, false)
	tf.enterWrongPath(in.FallThrough, f.ghostAt(tf, in.FallThrough))
	return true
}

// take consumes the next instruction from the thread's current path into
// the request's inline instruction array.
//
//smtfetch:hotpath
func take(tf *threadFE, req *ftq.Request) *isa.Instruction {
	src := tf.source()
	in := req.Append(src.Peek(0))
	src.Advance(1)
	return in
}

// predictBTB forms one fetch block for the gshare+BTB engine: the block
// ends at the first branch on the path (one direction prediction per
// cycle => one basic block per fetch request).
//
//smtfetch:hotpath
func (f *FrontEnd) predictBTB(tf *threadFE, req *ftq.Request) {
	start := tf.nextPC
	req.Start, req.WrongPath = start, tf.wrongPath
	for i := 0; i < maxBlock; i++ {
		in := take(tf, req)
		if !in.IsBranch() {
			tf.nextPC = in.PC + isa.InstrSize
			continue
		}

		info := tf.checkpointInfo(req, i, start, i+1)
		entry, hit := f.btb.Lookup(in.PC)
		predTaken, predTarget := false, isa.Addr(0)
		switch in.BrKind {
		case isa.CondBranch:
			f.Predictions++
			if f.gshare.Predict(in.PC, tf.ghr) && hit {
				predTaken, predTarget = true, entry.Target
			}
			tf.ghr = tf.ghr<<1 | b2u(predTaken)
		case isa.Jump:
			if hit {
				predTaken, predTarget = true, entry.Target
			}
		case isa.Call:
			if hit {
				predTaken, predTarget = true, entry.Target
				tf.ras.Push(in.PC + isa.InstrSize)
			}
		case isa.Return:
			if ra, ok := tf.ras.Pop(); ok {
				predTaken, predTarget = true, ra
				info.UsedRAS = true
			} else if hit {
				predTaken, predTarget = true, entry.Target
			}
		case isa.IndirectJump:
			if hit {
				predTaken, predTarget = true, entry.Target
			}
		}
		if predTaken {
			tf.path.Push(predTarget)
		}
		f.finishBranch(tf, in, info, predTaken, predTarget)
		return
	}
}

// predictFTB forms one fetch block for the gskew+FTB engine. On an FTB hit
// the block runs to the entry's terminating ever-taken branch, spanning
// embedded never-taken branches; the terminator's direction comes from
// gskew. On a miss the front-end falls back to sequential fetch.
//
//smtfetch:hotpath
func (f *FrontEnd) predictFTB(tf *threadFE, req *ftq.Request) {
	start := tf.nextPC
	req.Start, req.WrongPath = start, tf.wrongPath

	entry, hit := f.ftb.Lookup(start)
	predLen := f.cfg.FetchPolicy.Width // sequential fallback length
	if hit {
		predLen = entry.Instrs
	}
	if predLen > maxBlock {
		predLen = maxBlock
	}

	for i := 0; i < predLen; i++ {
		in := take(tf, req)
		terminator := hit && i == predLen-1
		if !terminator {
			tf.nextPC = in.PC + isa.InstrSize
			if in.IsBranch() && in.Taken {
				if f.embeddedDivergence(tf, req, i, in, start) {
					return
				}
			}
			continue
		}

		// Predicted terminating branch of the FTB entry.
		info := tf.checkpointInfo(req, i, start, i+1)
		predTaken, predTarget := false, isa.Addr(0)
		switch entry.Kind {
		case isa.CondBranch:
			f.Predictions++
			predTaken = f.gskew.Predict(in.PC, tf.ghr)
			predTarget = entry.Target
			tf.ghr = tf.ghr<<1 | b2u(predTaken)
		case isa.Return:
			predTaken = true
			if ra, ok := tf.ras.Pop(); ok {
				predTarget = ra
				info.UsedRAS = true
			} else {
				predTarget = entry.Target
			}
		case isa.Call:
			predTaken, predTarget = true, entry.Target
			tf.ras.Push(in.PC + isa.InstrSize)
		default: // Jump, IndirectJump
			predTaken, predTarget = true, entry.Target
		}
		if predTaken {
			tf.path.Push(predTarget)
		}
		f.finishBranch(tf, in, info, predTaken, predTarget)
		return
	}
	// Sequential fallback block (or FTB-hit block cut short by a
	// divergence handled above): continue at the next sequential address.
}

// predictStream forms one fetch block for the stream engine: the stream
// predictor supplies (length, next-stream start); the block is the whole
// stream, embedded not-taken branches included. On a miss the front-end
// falls back to sequential fetch.
//
//smtfetch:hotpath
func (f *FrontEnd) predictStream(tf *threadFE, req *ftq.Request) {
	start := tf.nextPC
	req.Start, req.WrongPath = start, tf.wrongPath

	pred, hit := f.stream.Predict(start, &tf.path)
	predLen := f.cfg.FetchPolicy.Width
	if hit {
		predLen = pred.Length
	}
	if predLen > maxBlock {
		predLen = maxBlock
	}
	if predLen < 1 {
		predLen = 1
	}

	for i := 0; i < predLen; i++ {
		in := take(tf, req)
		terminator := hit && i == predLen-1
		if !terminator {
			tf.nextPC = in.PC + isa.InstrSize
			if in.IsBranch() && in.Taken {
				if f.embeddedDivergence(tf, req, i, in, start) {
					return
				}
			}
			continue
		}

		// Predicted stream terminator: always predicted taken.
		f.Predictions++
		info := tf.checkpointInfo(req, i, start, i+1)
		info.StreamPredicted = true
		predTarget := pred.Next
		if pred.EndsInReturn {
			if ra, ok := tf.ras.Pop(); ok {
				predTarget = ra
				info.UsedRAS = true
			}
		}
		if pred.EndsInCall {
			tf.ras.Push(in.PC + isa.InstrSize)
		}
		tf.path.Push(predTarget)
		f.finishBranch(tf, in, info, true, predTarget)
		return
	}
}
