package fetch

import (
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// BenchmarkPrioritize measures the thread-selection path the simulator
// runs twice per cycle (prediction stage and fetch stage).
func BenchmarkPrioritize(b *testing.B) {
	icounts := []int{3, 0, 7, 2, 2, 9, 1, 4}
	eligible := func(t int) bool { return t != 5 }
	scratch := make([]int, 0, len(icounts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := PrioritizeInto(scratch, config.ICount, icounts, eligible, uint64(i), 2)
		scratch = out[:0]
	}
}

// BenchmarkPredict measures fetch-block formation (prediction stage) for
// each engine: the dominant remaining allocation site in the cycle loop.
func BenchmarkPredict(b *testing.B) {
	for _, eng := range config.Engines() {
		b.Run(eng.String(), func(b *testing.B) {
			cfg := config.Default()
			cfg.Engine = eng
			st := uint64(0xF00D)
			programs := []*prog.Program{
				prog.Build(bench.MustProfile("gzip"), rng.SplitMix64(&st)),
				prog.Build(bench.MustProfile("twolf"), rng.SplitMix64(&st)),
			}
			fe := New(&cfg, programs, rng.SplitMix64(&st))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := i & 1
				if fe.Predict(t) == 0 {
					// FTQ full: drain it and keep predicting.
					fe.Queue(t).Clear()
				}
			}
		})
	}
}
