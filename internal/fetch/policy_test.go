package fetch

import (
	"math/rand"
	"sort"
	"testing"

	"smtfetch/internal/config"
)

// referencePrioritize is the original sort.SliceStable implementation; the
// allocation-free insertion sort must order identically in every case.
func referencePrioritize(policy config.Policy, keys []int, eligible func(t int) bool, cycle uint64, max int) []int {
	n := len(keys)
	cands := make([]int, 0, n)
	rot := int(cycle % uint64(n))
	for i := 0; i < n; i++ {
		t := (i + rot) % n
		if eligible(t) {
			cands = append(cands, t)
		}
	}
	if policy != config.RoundRobin {
		sort.SliceStable(cands, func(a, b int) bool {
			return keys[cands[a]] < keys[cands[b]]
		})
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	return cands
}

// TestPrioritizeMatchesReference fuzzes thread counts, priority keys (with
// plenty of ties), eligibility masks, cycles, and caps across every policy
// in the family.
func TestPrioritizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	policies := config.Policies()
	scratch := make([]int, 0, 8)
	for iter := 0; iter < 50_000; iter++ {
		n := 1 + rng.Intn(8)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(4) // small range forces ties
		}
		mask := rng.Intn(1 << n)
		eligible := func(t int) bool { return mask&(1<<t) != 0 }
		cycle := uint64(rng.Intn(1000))
		max := 1 + rng.Intn(n)
		policy := policies[rng.Intn(len(policies))]

		want := referencePrioritize(policy, keys, eligible, cycle, max)
		got := PrioritizeInto(scratch, policy, keys, eligible, cycle, max)
		if len(got) != len(want) {
			t.Fatalf("iter %d (%v): len %d vs %d", iter, policy, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d (%v): order %v vs %v (keys %v, mask %b, cycle %d, max %d)",
					iter, policy, got, want, keys, mask, cycle, max)
			}
		}
		scratch = got[:0]
	}
}

// TestPrioritizeOrdering pins the documented semantics per policy on hand
// cases: key-sorted policies order by their signal with rotation-based tie
// breaks, round-robin ignores the keys, and max truncates after ordering.
func TestPrioritizeOrdering(t *testing.T) {
	all := func(int) bool { return true }
	cases := []struct {
		name   string
		policy config.Policy
		keys   []int
		elig   func(int) bool
		cycle  uint64
		max    int
		want   []int
	}{
		// Lowest key first; cycle 2 rotates the tie-break order to
		// 2,3,0,1, so thread 2 beats thread 1 on the 0-0 tie.
		{"icount-ties", config.ICount, []int{5, 0, 0, 9}, all, 2, 4, []int{2, 1, 0, 3}},
		// Round-robin ignores the keys entirely: pure rotation.
		{"rr-rotation", config.RoundRobin, []int{5, 0, 0, 9}, all, 2, 4, []int{2, 3, 0, 1}},
		{"rr-rotation-5", config.RoundRobin, []int{1, 1, 1, 1}, all, 5, 4, []int{1, 2, 3, 0}},
		// Every key-sorted policy orders identically given the same keys.
		{"brcount", config.BRCount, []int{3, 1, 2, 0}, all, 0, 4, []int{3, 1, 2, 0}},
		{"misscount", config.MissCount, []int{3, 1, 2, 0}, all, 0, 4, []int{3, 1, 2, 0}},
		{"iqposn", config.IQPosn, []int{3, 1, 2, 0}, all, 0, 4, []int{3, 1, 2, 0}},
		{"stall", config.Stall, []int{3, 1, 2, 0}, all, 0, 4, []int{3, 1, 2, 0}},
		{"flush", config.Flush, []int{3, 1, 2, 0}, all, 0, 4, []int{3, 1, 2, 0}},
		// max truncates after the sort: the two best threads survive.
		{"max-truncation", config.BRCount, []int{3, 1, 2, 0}, all, 0, 2, []int{3, 1}},
		{"rr-truncation", config.RoundRobin, []int{0, 0, 0, 0}, all, 3, 2, []int{3, 0}},
		// Ineligible threads never appear, even with the best key.
		{"eligibility", config.MissCount, []int{0, 9, 1, 9},
			func(t int) bool { return t != 0 }, 0, 4, []int{2, 1, 3}},
		// All-tied keys degrade every policy to the rotation order.
		{"all-tied", config.IQPosn, []int{2, 2, 2, 2}, all, 3, 4, []int{3, 0, 1, 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Prioritize(c.policy, c.keys, c.elig, c.cycle, c.max)
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
		})
	}
}
