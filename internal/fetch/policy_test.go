package fetch

import (
	"math/rand"
	"sort"
	"testing"

	"smtfetch/internal/config"
)

// referencePrioritize is the original sort.SliceStable implementation; the
// allocation-free insertion sort must order identically in every case.
func referencePrioritize(policy config.Policy, icounts []int, eligible func(t int) bool, cycle uint64, max int) []int {
	n := len(icounts)
	cands := make([]int, 0, n)
	rot := int(cycle % uint64(n))
	for i := 0; i < n; i++ {
		t := (i + rot) % n
		if eligible(t) {
			cands = append(cands, t)
		}
	}
	if policy == config.ICount {
		sort.SliceStable(cands, func(a, b int) bool {
			return icounts[cands[a]] < icounts[cands[b]]
		})
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	return cands
}

// TestPrioritizeMatchesReference fuzzes thread counts, icounts (with
// plenty of ties), eligibility masks, cycles, and caps.
func TestPrioritizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scratch := make([]int, 0, 8)
	for iter := 0; iter < 50_000; iter++ {
		n := 1 + rng.Intn(8)
		icounts := make([]int, n)
		for i := range icounts {
			icounts[i] = rng.Intn(4) // small range forces ties
		}
		mask := rng.Intn(1 << n)
		eligible := func(t int) bool { return mask&(1<<t) != 0 }
		cycle := uint64(rng.Intn(1000))
		max := 1 + rng.Intn(n)
		policy := config.ICount
		if rng.Intn(2) == 0 {
			policy = config.RoundRobin
		}

		want := referencePrioritize(policy, icounts, eligible, cycle, max)
		got := PrioritizeInto(scratch, policy, icounts, eligible, cycle, max)
		if len(got) != len(want) {
			t.Fatalf("iter %d: len %d vs %d", iter, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: order %v vs %v (icounts %v, mask %b, cycle %d, max %d)",
					iter, got, want, icounts, mask, cycle, max)
			}
		}
		scratch = got[:0]
	}
}

// TestPrioritizeICountOrder pins the documented semantics on a hand case:
// lowest icount first, ties broken by rotated thread id.
func TestPrioritizeICountOrder(t *testing.T) {
	icounts := []int{5, 0, 0, 9}
	all := func(int) bool { return true }
	// cycle 2 rotates the tie-break order to 2,3,0,1: thread 2 beats 1.
	got := Prioritize(config.ICount, icounts, all, 2, 4)
	want := []int{2, 1, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Round-robin ignores icounts entirely.
	got = Prioritize(config.RoundRobin, icounts, all, 2, 4)
	want = []int{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RR got %v, want %v", got, want)
		}
	}
}
