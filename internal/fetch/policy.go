package fetch

import (
	"sort"

	"smtfetch/internal/config"
)

// Prioritize orders the eligible threads by fetch-policy priority and
// returns at most max of them. For ICOUNT, threads with the fewest
// instructions in the pre-issue stages come first (ties broken by thread id
// rotated by the cycle to avoid systematic bias). For Round-Robin the
// rotation alone decides.
//
// Both the prediction stage (choosing which thread gets the predictor this
// cycle) and the fetch stage (choosing which FTQs drive the I-cache) use
// this ordering, as in the paper.
func Prioritize(policy config.Policy, icounts []int, eligible func(t int) bool, cycle uint64, max int) []int {
	n := len(icounts)
	cands := make([]int, 0, n)
	rot := int(cycle % uint64(n))
	for i := 0; i < n; i++ {
		t := (i + rot) % n
		if eligible(t) {
			cands = append(cands, t)
		}
	}
	if policy == config.ICount {
		sort.SliceStable(cands, func(a, b int) bool {
			return icounts[cands[a]] < icounts[cands[b]]
		})
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	return cands
}
