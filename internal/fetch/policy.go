package fetch

import (
	"smtfetch/internal/config"
)

// PrioritizeInto orders the eligible threads by fetch-policy priority into
// dst (whose contents are discarded) and returns at most max of them.
//
// keys holds one priority value per thread — lower is better. Which signal
// the keys carry is the policy's choice and the caller's job to supply:
//
//   - ICOUNT, STALL, FLUSH: instructions in the pre-issue stages (STALL
//     and FLUSH order like ICOUNT; their long-latency-load gating happens
//     in the eligible callback);
//   - BRCOUNT: unresolved branches in flight;
//   - MISSCOUNT: outstanding D-cache misses;
//   - IQPOSN: issue-queue head-proximity penalty;
//   - RR: ignored — the per-cycle rotation alone decides.
//
// Ties are broken by thread id rotated by the cycle to avoid systematic
// bias toward low thread ids.
//
// Both the prediction stage (choosing which thread gets the predictor this
// cycle) and the fetch stage (choosing which FTQs drive the I-cache) use
// this ordering, as in the paper. Passing a reused scratch slice as dst
// keeps both stages allocation-free; the sort is a stable insertion sort
// (thread counts are tiny), which matches sort.SliceStable's ordering
// exactly while avoiding its closure and reflection costs.
//
//smtfetch:hotpath
func PrioritizeInto(dst []int, policy config.Policy, keys []int, eligible func(t int) bool, cycle uint64, max int) []int {
	n := len(keys)
	dst = dst[:0]
	rot := int(cycle % uint64(n))
	for i := 0; i < n; i++ {
		t := (i + rot) % n
		if eligible(t) {
			//smtfetch:allowalloc dst is the caller's reused scratch, pre-sized to the thread count
			dst = append(dst, t)
		}
	}
	if policy != config.RoundRobin {
		for i := 1; i < len(dst); i++ {
			for j := i; j > 0 && keys[dst[j]] < keys[dst[j-1]]; j-- {
				dst[j], dst[j-1] = dst[j-1], dst[j]
			}
		}
	}
	if len(dst) > max {
		dst = dst[:max]
	}
	return dst
}

// Prioritize is PrioritizeInto with a fresh result slice.
func Prioritize(policy config.Policy, keys []int, eligible func(t int) bool, cycle uint64, max int) []int {
	return PrioritizeInto(nil, policy, keys, eligible, cycle, max)
}
