package fetch

import (
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// newTestFE builds a two-thread front-end on a branchy workload.
func newTestFE(t testing.TB, engine config.Engine, seed uint64) (*FrontEnd, *config.Config) {
	t.Helper()
	cfg := config.Default()
	cfg.Engine = engine
	st := seed
	programs := []*prog.Program{
		prog.Build(bench.MustProfile("gzip"), rng.SplitMix64(&st)),
		prog.Build(bench.MustProfile("twolf"), rng.SplitMix64(&st)),
	}
	return New(&cfg, programs, rng.SplitMix64(&st)), &cfg
}

// driveToMisprediction predicts blocks for thread 0 until the front-end
// enters wrong-path mode, and returns the diverging branch's metadata plus
// a copy of the branch instruction itself (which carries the path truth).
func driveToMisprediction(t *testing.T, fe *FrontEnd) (*ftq.BranchInfo, isa.Instruction) {
	t.Helper()
	tf := fe.threads[0]
	for tries := 0; tries < 100_000; tries++ {
		if tf.wrongPath {
			break
		}
		if fe.Predict(0) == 0 {
			tf.queue.Clear()
		}
	}
	if !tf.wrongPath {
		t.Fatal("no misprediction in 100k blocks; workload not branchy enough for the test")
	}
	// The block that diverged is the most recently pushed one; its
	// metadata sits on the last instruction that carries any.
	var last *ftq.Request
	tf.queue.Each(func(r *ftq.Request) { last = r })
	if last == nil {
		t.Fatal("wrong path entered with an empty FTQ")
	}
	for i := last.Len() - 1; i >= 0; i-- {
		if info := last.Branch(i); info != nil {
			if info.Resolve == ftq.ResolveNone {
				t.Fatal("diverging block's branch marked ResolveNone")
			}
			return info, *last.Instr(i)
		}
	}
	t.Fatal("diverging block carries no branch metadata")
	return nil, isa.Instruction{}
}

// TestRecoverRestoresCheckpoints drives the front-end into a wrong path,
// lets it wander, then resolves the branch and checks that GHR, RAS, and
// path history equal "checkpoint + actual outcome" exactly.
func TestRecoverRestoresCheckpoints(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch} {
		fe, _ := newTestFE(t, eng, 0xC0FFEE)
		tf := fe.threads[0]

		// Find a misprediction whose resolving instruction is a
		// conditional branch: the actual outcome then perturbs only GHR
		// and path history, so the expected post-recovery RAS is exactly
		// the checkpoint (for calls/returns the buried stack entries are
		// not observable from outside bpred). Other kinds are resolved
		// and skipped.
		var info *ftq.BranchInfo
		var actual isa.Instruction
		for tries := 0; tries < 50; tries++ {
			info, actual = driveToMisprediction(t, fe)
			if actual.BrKind == isa.CondBranch {
				break
			}
			fe.Recover(0, info, &actual, actual.NextPC())
			info = nil
		}
		if info == nil {
			t.Fatalf("%v: no conditional misprediction in 50 recoveries", eng)
		}

		// Wander down the wrong path to thoroughly perturb the
		// speculative state the recovery must repair.
		for i := 0; i < 50; i++ {
			if fe.Predict(0) == 0 {
				tf.queue.Clear()
			}
		}
		if !tf.wrongPath {
			t.Fatalf("%v: left wrong-path mode without a recovery", eng)
		}

		// Expected post-recovery state: the checkpoint plus the actual
		// conditional outcome, replayed here independently.
		wantGHR := info.GHR << 1
		if actual.Taken {
			wantGHR |= 1
		}
		wantPath := info.PathCp
		if actual.Taken {
			wantPath.Push(actual.Target)
		}

		fe.Recover(0, info, &actual, actual.NextPC())

		if tf.wrongPath {
			t.Fatalf("%v: still on wrong path after Recover", eng)
		}
		if tf.queue.Len() != 0 {
			t.Fatalf("%v: FTQ not cleared by Recover", eng)
		}
		if tf.nextPC != actual.NextPC() {
			t.Fatalf("%v: nextPC = %#x, want %#x", eng, tf.nextPC, actual.NextPC())
		}
		if tf.ghr != wantGHR {
			t.Fatalf("%v: GHR = %#x, want %#x", eng, tf.ghr, wantGHR)
		}
		if tf.ras.Checkpoint() != info.RASCp {
			t.Fatalf("%v: RAS state not restored to the checkpoint", eng)
		}
		if tf.path != wantPath {
			t.Fatalf("%v: path history not restored+corrected", eng)
		}
		// Fetch must resume seamlessly on the committed path.
		if fe.Predict(0) == 0 {
			t.Fatalf("%v: no block producible right after recovery", eng)
		}
	}
}

// TestGhostStreamReuse checks that consecutive mispredictions reuse one
// ghost stream object per thread instead of allocating a new walker each
// time — the wrong-path side of the allocation-free front-end.
func TestGhostStreamReuse(t *testing.T) {
	fe, _ := newTestFE(t, config.GShareBTB, 0x60057)
	tf := fe.threads[0]

	var ghost *prog.Stream
	for round := 0; round < 5; round++ {
		info, actual := driveToMisprediction(t, fe)
		if ghost == nil {
			ghost = tf.ghost
		} else if tf.ghost != ghost {
			t.Fatalf("round %d: ghost stream reallocated", round)
		}
		// A few wrong-path blocks, then resolve and go again.
		for i := 0; i < 10; i++ {
			if fe.Predict(0) == 0 {
				tf.queue.Clear()
			}
		}
		fe.Recover(0, info, &actual, actual.NextPC())
	}
	if ghost == nil {
		t.Fatal("no ghost stream was ever created")
	}
}

// TestCommitBranchTrains checks the commit-time training paths: gshare
// counters move toward the outcome and the BTB learns taken targets; the
// FTB learns (start, length, target) blocks.
func TestCommitBranchTrains(t *testing.T) {
	fe, _ := newTestFE(t, config.GShareBTB, 1)
	in := isa.Instruction{
		PC: 0x4000, Class: isa.Branch, BrKind: isa.CondBranch,
		Taken: true, Target: 0x8000, FallThrough: 0x4004,
	}
	info := &ftq.BranchInfo{GHR: 0x2A}
	for i := 0; i < 4; i++ {
		fe.CommitBranch(0, &in, info)
	}
	if !fe.gshare.Predict(in.PC, info.GHR) {
		t.Fatal("gshare not trained toward taken")
	}
	if e, ok := fe.btb.Lookup(in.PC); !ok || e.Target != in.Target || e.Kind != isa.CondBranch {
		t.Fatalf("BTB entry after training: %+v ok=%v", e, ok)
	}

	fe2, _ := newTestFE(t, config.GSkewFTB, 1)
	info2 := &ftq.BranchInfo{GHR: 0x2A, BlockStart: 0x3000, BlockInstrs: 7}
	for i := 0; i < 4; i++ {
		fe2.CommitBranch(0, &in, info2)
	}
	if !fe2.gskew.Predict(in.PC, info2.GHR) {
		t.Fatal("gskew not trained toward taken")
	}
	if e, ok := fe2.ftb.Lookup(info2.BlockStart); !ok || e.Instrs != 7 || e.Target != in.Target {
		t.Fatalf("FTB entry after training: %+v ok=%v", e, ok)
	}
}

// TestPredictPoolInvariants hammers the predict/consume/recover cycle at
// the front-end level and validates the request-pool invariants throughout,
// including requests pinned by simulated in-flight uops.
func TestPredictPoolInvariants(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch} {
		fe, _ := newTestFE(t, eng, 0xA11A5)
		var pinned []*ftq.Request
		r := rng.New(7)
		for step := 0; step < 20_000; step++ {
			th := int(r.Uint64() % 2)
			fe.Predict(th)
			q := fe.Queue(th)
			if req := q.Head(); req != nil {
				switch r.Uint64() % 4 {
				case 0: // fetch the whole block, pinning its metadata
					req.Consumed = req.Len()
					req.Retain()
					pinned = append(pinned, req)
					q.PopHead()
				case 1: // front-end squash
					q.Clear()
				}
			}
			// Commit/squash some pinned requests.
			for len(pinned) > 8 {
				pinned[0].Release()
				pinned = pinned[1:]
			}
			if step%500 == 0 {
				if err := fe.CheckPoolInvariants(pinned...); err != nil {
					t.Fatalf("%v, step %d: %v", eng, step, err)
				}
			}
		}
		if err := fe.CheckPoolInvariants(pinned...); err != nil {
			t.Fatalf("%v, final: %v", eng, err)
		}
		a0, f0 := fe.PoolStats(0)
		if a0 == 0 || f0 == 0 {
			t.Fatalf("%v: pool inert (allocated=%d free=%d); invariants vacuous", eng, a0, f0)
		}
	}
}
