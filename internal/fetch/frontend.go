// Package fetch implements the decoupled SMT front-end that is the paper's
// subject: a prediction stage that forms fetch blocks (one per selected
// thread per cycle) and pushes them into per-thread fetch target queues,
// for three interchangeable fetch engines:
//
//   - gshare+BTB: the baseline. One direction prediction per cycle, so
//     fetch blocks end at the first branch — about one basic block.
//   - gskew+FTB: fetch blocks end at the first ever-taken branch; embedded
//     never-taken branches are spanned. Directions come from a gskew
//     majority-vote predictor.
//   - stream: a two-level stream predictor supplies whole instruction
//     streams (taken-target to next taken branch).
//
// The front-end is trace-driven with wrong-path execution: each thread has
// a committed-path Stream, and on a misprediction the front-end walks a
// ghost Stream along the predicted path until the branch resolves, exactly
// like SMTSIM's basic-block-dictionary approach.
//
// The package also owns the fetch policy's thread-prioritization mechanism
// (PrioritizeInto): both pipeline stages that arbitrate between threads —
// prediction and fetch — order the eligible threads by the configured
// policy's per-thread priority signal. See the config package for the
// policy family (ICOUNT, RR, BRCOUNT, MISSCOUNT, IQPOSN, STALL, FLUSH)
// and the core package for how each signal is maintained.
package fetch

import (
	"fmt"

	"smtfetch/internal/bpred"
	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// maxBlock bounds any fetch block's length in instructions.
const maxBlock = ftq.MaxInstrs

// threadFE is the per-thread front-end state.
type threadFE struct {
	id    int           //smtfetch:transient thread index, fixed at construction
	prog  *prog.Program //smtfetch:transient static program; decode rebuilds the streams over it
	trace *prog.Stream
	ghost *prog.Stream
	seedR *rng.Rand

	// wrongPath is set between a mispredicted trace branch and its
	// resolution; while set, blocks are formed from the ghost stream.
	wrongPath bool
	// nextPC is the start address of the next fetch block.
	nextPC isa.Addr

	ghr  uint64
	ras  *bpred.RAS
	path bpred.PathHistory

	queue *ftq.Queue
	// pool recycles fetch requests; see the ftq package comment for the
	// lifetime rules.
	pool *ftq.Pool //smtfetch:transient request pool; population is invisible to simulation

	// Functional fast-forward block tracking (sampled simulation): the
	// current training block's start, length, and path checkpoint. Reset
	// by BeginFunctional; transient, never serialized into snapshots.
	ffBlockStart  isa.Addr          //smtfetch:transient functional fast-forward scratch, reset by BeginFunctional
	ffBlockInstrs int               //smtfetch:transient functional fast-forward scratch, reset by BeginFunctional
	ffPathCp      bpred.PathHistory //smtfetch:transient functional fast-forward scratch, reset by BeginFunctional
}

// FrontEnd owns the prediction stage: shared predictor tables plus
// per-thread state and FTQs.
type FrontEnd struct {
	cfg    *config.Config //smtfetch:transient construction-time configuration
	engine config.Engine

	// Shared tables (one fetch unit, shared among threads, as in the
	// paper).
	gshare *bpred.GShare
	gskew  *bpred.GSkew
	btb    *bpred.BTB
	ftb    *bpred.FTB
	stream *bpred.StreamPredictor

	threads []*threadFE

	// Predictions / DirMispredicts count terminating conditional
	// direction predictions on the committed path, at prediction time.
	Predictions uint64
}

// New builds a front-end for the given programs (one per thread).
func New(cfg *config.Config, programs []*prog.Program, seed uint64) *FrontEnd {
	f := &FrontEnd{cfg: cfg, engine: cfg.Engine}
	switch cfg.Engine {
	case config.GShareBTB:
		f.gshare = bpred.NewGShare(cfg.GShareEntries, cfg.GShareHistoryBits)
		f.btb = bpred.NewBTB(cfg.BTBEntries, cfg.BTBAssoc)
	case config.GSkewFTB:
		f.gskew = bpred.NewGSkew(cfg.GSkewEntries, cfg.GSkewHistoryBits)
		f.ftb = bpred.NewFTB(cfg.BTBEntries, cfg.BTBAssoc)
	case config.StreamFetch:
		f.stream = bpred.NewStreamPredictor(
			cfg.StreamL1Entries, cfg.StreamL1Assoc,
			cfg.StreamL2Entries, cfg.StreamL2Assoc,
			bpred.DOLC{Depth: cfg.DOLCDepth, Older: cfg.DOLCOlder, Last: cfg.DOLCLast, Current: cfg.DOLCCurrent})
	}
	st := seed
	for i, p := range programs {
		tseed := rng.SplitMix64(&st)
		t := &threadFE{
			id:    i,
			prog:  p,
			trace: p.NewStream(tseed),
			seedR: rng.New(tseed ^ 0x60057),
			ras:   bpred.NewRAS(cfg.RASEntries),
			queue: ftq.New(cfg.FTQSize),
			pool:  ftq.NewPool(),
		}
		t.nextPC = t.trace.PC()
		f.threads = append(f.threads, t)
	}
	return f
}

// Queue returns thread t's FTQ.
//
//smtfetch:hotpath
func (f *FrontEnd) Queue(t int) *ftq.Queue { return f.threads[t].queue }

// CanPredict reports whether a prediction can be made for thread t (its
// FTQ has room).
func (f *FrontEnd) CanPredict(t int) bool { return !f.threads[t].queue.Full() }

// Predict forms one fetch block for thread t and pushes it into the
// thread's FTQ, returning the block length in instructions (0 if no block
// was produced). The request itself stays owned by the FTQ and the pool —
// callers never see it, so they cannot mutate a queued block mid-flight.
//
//smtfetch:hotpath
func (f *FrontEnd) Predict(t int) int {
	tf := f.threads[t]
	if tf.queue.Full() {
		return 0
	}
	req := tf.pool.Get(tf.id)
	switch f.engine {
	case config.GShareBTB:
		f.predictBTB(tf, req)
	case config.GSkewFTB:
		f.predictFTB(tf, req)
	default:
		f.predictStream(tf, req)
	}
	if req.Len() == 0 {
		req.Release()
		return 0
	}
	tf.queue.Push(req)
	return req.Len()
}

// source returns the stream blocks are currently formed from.
//
//smtfetch:hotpath
func (tf *threadFE) source() *prog.Stream {
	if tf.wrongPath {
		return tf.ghost
	}
	return tf.trace
}

// enterWrongPath switches the thread onto a ghost stream starting at pc.
//
//smtfetch:hotpath
func (tf *threadFE) enterWrongPath(pc isa.Addr, p *prog.Stream) {
	tf.wrongPath = true
	tf.ghost = p
	tf.nextPC = pc
}

// ghostAt positions (or creates) the thread's ghost stream at pc. The
// ghost is reused across wrong paths to avoid per-misprediction allocation.
//
//smtfetch:hotpath
func (f *FrontEnd) ghostAt(tf *threadFE, pc isa.Addr) *prog.Stream {
	if tf.ghost == nil {
		//smtfetch:allowcold one ghost stream per thread, built on the first misprediction and reused forever after
		tf.ghost = tf.prog.NewStreamAt(tf.seedR.Uint64(), pc)
	} else {
		tf.ghost.Redirect(pc)
	}
	return tf.ghost
}

// Recover squashes thread t's front-end after the branch carrying info
// resolved: the FTQ is cleared, speculative predictor state is restored and
// corrected with the actual outcome, and fetching resumes at nextPC.
//
//smtfetch:hotpath
func (f *FrontEnd) Recover(t int, info *ftq.BranchInfo, actual *isa.Instruction, nextPC isa.Addr) {
	tf := f.threads[t]
	tf.queue.Clear()
	tf.wrongPath = false
	tf.nextPC = nextPC

	// Restore speculative state to the checkpoint, then apply the actual
	// outcome.
	tf.ghr = info.GHR
	tf.ras.Restore(info.RASCp)
	tf.path = info.PathCp
	if actual.IsBranch() {
		switch actual.BrKind {
		case isa.CondBranch:
			tf.ghr = tf.ghr<<1 | b2u(actual.Taken)
		case isa.Call:
			tf.ras.Push(actual.FallThrough)
		case isa.Return:
			tf.ras.Pop()
		}
		if actual.Taken {
			tf.path.Push(actual.Target)
		}
	}
	if !tf.wrongPath && tf.trace.PC() != nextPC {
		// The trace cursor must already sit at the correct-path
		// successor of the resolved branch; anything else is a
		// simulator bug worth failing loudly on.
		panic(fmt.Sprintf("fetch: thread %d recovery to %#x but trace at %#x", t, nextPC, tf.trace.PC()))
	}
}

//smtfetch:hotpath
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// CommitBranch trains the predictor tables with a committed branch (or a
// committed block terminator that turned out not to be a branch). in is the
// committed instruction, info its prediction metadata (may be nil for
// branches the front-end never predicted explicitly, e.g. embedded
// never-taken branches).
//
//smtfetch:hotpath
func (f *FrontEnd) CommitBranch(t int, in *isa.Instruction, info *ftq.BranchInfo) {
	switch f.engine {
	case config.GShareBTB:
		if in.BrKind == isa.CondBranch && info != nil {
			f.gshare.Update(in.PC, info.GHR, in.Taken)
		}
		if in.IsBranch() && in.Taken {
			f.btb.Insert(in.PC, bpred.BTBEntry{Kind: in.BrKind, Target: in.Target})
		}
	case config.GSkewFTB:
		if in.BrKind == isa.CondBranch && info != nil {
			f.gskew.Update(in.PC, info.GHR, in.Taken)
		}
		if info == nil {
			return
		}
		if in.IsBranch() && in.Taken {
			f.ftb.Train(info.BlockStart, info.BlockInstrs, in.BrKind, in.Target)
			f.ftb.TakenReset(info.BlockStart)
		} else if in.BrKind == isa.CondBranch && !in.Taken && info.PredTaken {
			// The entry's terminating branch fell through.
			f.ftb.Fallthrough(info.BlockStart)
		}
	default:
		if info == nil {
			return
		}
		if in.IsBranch() && in.Taken {
			path := info.PathCp
			f.stream.Train(info.BlockStart, &path, bpred.StreamPrediction{
				Length:       info.BlockInstrs,
				Next:         in.Target,
				EndsInReturn: in.BrKind == isa.Return,
				EndsInCall:   in.BrKind == isa.Call,
			})
		}
	}
}

// PoolStats reports thread t's request-pool size: requests ever allocated
// and requests currently on the free list. Allocation must plateau once
// the simulator is warm (the working set is FTQ capacity plus requests
// pinned by in-flight branch uops).
func (f *FrontEnd) PoolStats(t int) (allocated, free int) {
	p := f.threads[t].pool
	return p.Allocated(), p.FreeLen()
}

// CheckPoolInvariants validates every thread's request pool against its
// FTQ: no pooled request may be live, queued, or among extraLive (requests
// pinned by in-flight uops, supplied by the caller), no request may appear
// twice on a free list, and every queued request must be live. It exists
// for tests; the pool itself enforces the same properties with panics on
// each transition.
//
// The transient request-set maps below make this an owner by annotation:
// it audits the pool, so it must be allowed to enumerate pooled objects.
//
//smtfetch:poolowner
func (f *FrontEnd) CheckPoolInvariants(extraLive ...*ftq.Request) error {
	pinned := make(map[*ftq.Request]bool, len(extraLive))
	for _, r := range extraLive {
		pinned[r] = true
	}
	for _, tf := range f.threads {
		queued := map[*ftq.Request]bool{}
		var qerr error
		tf.queue.Each(func(r *ftq.Request) {
			if !r.Live() && qerr == nil {
				qerr = fmt.Errorf("fetch: thread %d FTQ holds a pooled request", tf.id)
			}
			queued[r] = true
		})
		if qerr != nil {
			return qerr
		}
		seen := map[*ftq.Request]bool{}
		var perr error
		tf.pool.ForEachFree(func(r *ftq.Request) {
			switch {
			case perr != nil:
			case r.Live():
				perr = fmt.Errorf("fetch: thread %d free list holds a live request", tf.id)
			case queued[r]:
				perr = fmt.Errorf("fetch: thread %d free list holds a queued request", tf.id)
			case pinned[r]:
				perr = fmt.Errorf("fetch: thread %d free list holds a request pinned by an in-flight uop", tf.id)
			case seen[r]:
				perr = fmt.Errorf("fetch: thread %d request appears twice on the free list", tf.id)
			}
			seen[r] = true
		})
		if perr != nil {
			return perr
		}
	}
	return nil
}

// TableStats exposes predictor-structure statistics for reports.
func (f *FrontEnd) TableStats() string {
	switch f.engine {
	case config.GShareBTB:
		return fmt.Sprintf("BTB hit %.4f", f.btb.HitRate())
	case config.GSkewFTB:
		return fmt.Sprintf("FTB hit %.4f", f.ftb.HitRate())
	default:
		return fmt.Sprintf("stream hit %.4f", f.stream.HitRate())
	}
}
