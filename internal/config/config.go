// Package config defines the simulated machine configuration. The defaults
// reproduce Table 3 of the paper ("Simulation parameters"); the experiment
// harness varies the fetch engine, the fetch policy (the full SMT
// fetch-policy family, see Policy), the threads-per-cycle count (1 / 2),
// and the fetch width (8 / 16).
package config

import (
	"fmt"
	"strconv"
	"strings"
)

// Engine selects the fetch-engine family (branch predictor + target
// structure) used by the decoupled front-end.
type Engine uint8

const (
	// GShareBTB is the baseline SMT front-end: gshare direction predictor
	// plus a classical branch target buffer. Fetch blocks end at the first
	// branch (one prediction per cycle => one basic block per request).
	GShareBTB Engine = iota
	// GSkewFTB is the enhanced front-end: gskew direction predictor plus a
	// fetch target buffer whose blocks embed never-taken branches.
	GSkewFTB
	// StreamFetch is the stream front-end: a two-level stream predictor
	// supplies whole instruction streams (taken-target to next taken
	// branch).
	StreamFetch
)

// String returns the name used in the paper's figures.
func (e Engine) String() string {
	switch e {
	case GShareBTB:
		return "gshare+BTB"
	case GSkewFTB:
		return "gskew+FTB"
	case StreamFetch:
		return "stream"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// Engines lists all fetch engines in the order the paper plots them.
func Engines() []Engine { return []Engine{GShareBTB, GSkewFTB, StreamFetch} }

// ParseEngine resolves an engine name as printed by Engine.String. It also
// accepts the short aliases "gshare", "gskew", and "stream"
// (case-insensitive), so CLI flags read naturally.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "gshare+btb", "gshare", "btb":
		return GShareBTB, nil
	case "gskew+ftb", "gskew", "ftb":
		return GSkewFTB, nil
	case "stream", "streamfetch":
		return StreamFetch, nil
	}
	return 0, fmt.Errorf("config: unknown engine %q (want one of %v)", s, Engines())
}

// Policy selects how the fetch policy prioritizes threads. ICount and
// RoundRobin are the policies the paper itself sweeps; the rest are the
// classic SMT fetch-policy family from the literature, implemented so the
// sweep grid can compare the paper's fetch engines under every policy.
type Policy uint8

const (
	// ICount prioritizes threads with the fewest instructions in the
	// pre-issue pipeline stages (Tullsen et al., ISCA 1996).
	ICount Policy = iota
	// RoundRobin rotates priority among runnable threads each cycle.
	RoundRobin
	// BRCount prioritizes threads with the fewest unresolved branches in
	// flight, throttling deep speculation (Tullsen et al., ISCA 1996).
	BRCount
	// MissCount prioritizes threads with the fewest outstanding D-cache
	// misses (Tullsen et al., ISCA 1996).
	MissCount
	// IQPosn penalizes threads whose micro-ops sit nearest the heads of
	// the issue queues — the threads most likely to clog them (Tullsen et
	// al., ISCA 1996).
	IQPosn
	// Stall is ICount plus a gate: a thread with an outstanding
	// long-latency (L2-miss) load stops fetching until the load returns
	// (Tullsen & Brown, MICRO 2001).
	Stall
	// Flush is Stall plus recovery: when the long-latency load is
	// detected, the thread's younger in-flight micro-ops are flushed so
	// their ROB/issue-queue/register resources go to other threads, and
	// are refetched once the load returns (Tullsen & Brown, MICRO 2001).
	Flush
)

// String names the policy as spelled in the CLI and sweep JSON.
func (p Policy) String() string {
	switch p {
	case ICount:
		return "ICOUNT"
	case RoundRobin:
		return "RR"
	case BRCount:
		return "BRCOUNT"
	case MissCount:
		return "MISSCOUNT"
	case IQPosn:
		return "IQPOSN"
	case Stall:
		return "STALL"
	case Flush:
		return "FLUSH"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Policies lists every implemented thread-selection policy: the two the
// paper sweeps first, then the rest of the literature family.
func Policies() []Policy {
	return []Policy{ICount, RoundRobin, BRCount, MissCount, IQPosn, Stall, Flush}
}

// ParsePolicy resolves a policy name as printed by Policy.String
// (case-insensitive). "ROUNDROBIN" is accepted as an alias for "RR".
func ParsePolicy(s string) (Policy, error) {
	name := strings.ToUpper(strings.TrimSpace(s))
	if name == "ROUNDROBIN" {
		return RoundRobin, nil
	}
	for _, p := range Policies() {
		if name == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("config: unknown policy %q (want one of %v)", s, Policies())
}

// FetchPolicy is the paper's POLICY.T.W notation: up to Width instructions
// total from up to Threads threads each cycle (e.g. ICOUNT.2.8).
type FetchPolicy struct {
	Policy  Policy
	Threads int // 1 or 2
	Width   int // 8 or 16
}

// String renders e.g. "ICOUNT.2.8".
func (fp FetchPolicy) String() string {
	return fmt.Sprintf("%s.%d.%d", fp.Policy, fp.Threads, fp.Width)
}

// Common fetch policies studied in the paper.
var (
	ICount18  = FetchPolicy{ICount, 1, 8}
	ICount28  = FetchPolicy{ICount, 2, 8}
	ICount116 = FetchPolicy{ICount, 1, 16}
	ICount216 = FetchPolicy{ICount, 2, 16}

	RR18  = FetchPolicy{RoundRobin, 1, 8}
	RR28  = FetchPolicy{RoundRobin, 2, 8}
	RR116 = FetchPolicy{RoundRobin, 1, 16}
	RR216 = FetchPolicy{RoundRobin, 2, 16}
)

// FetchPolicies lists the four ICOUNT.T.W configurations the paper's
// figures evaluate, in paper order. This is the default policy axis of an
// experiment sweep.
func FetchPolicies() []FetchPolicy {
	return []FetchPolicy{ICount18, ICount28, ICount116, ICount216}
}

// AllFetchPolicies crosses every Policy with the paper's four T.W shapes
// (1.8, 2.8, 1.16, 2.16), ICOUNT variants first to preserve paper order.
func AllFetchPolicies() []FetchPolicy {
	shapes := [][2]int{{1, 8}, {2, 8}, {1, 16}, {2, 16}}
	out := make([]FetchPolicy, 0, len(Policies())*len(shapes))
	for _, p := range Policies() {
		for _, tw := range shapes {
			out = append(out, FetchPolicy{Policy: p, Threads: tw[0], Width: tw[1]})
		}
	}
	return out
}

// ParseFetchPolicy parses the POLICY.T.W notation (e.g. "ICOUNT.2.8",
// "RR.1.16"), round-tripping FetchPolicy.String.
func ParseFetchPolicy(s string) (FetchPolicy, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 3 {
		return FetchPolicy{}, fmt.Errorf("config: fetch policy %q not in POLICY.T.W form (e.g. ICOUNT.2.8)", s)
	}
	p, err := ParsePolicy(parts[0])
	if err != nil {
		return FetchPolicy{}, err
	}
	t, err := strconv.Atoi(parts[1])
	if err != nil || t < 1 {
		return FetchPolicy{}, fmt.Errorf("config: fetch policy %q has bad thread count %q", s, parts[1])
	}
	w, err := strconv.Atoi(parts[2])
	if err != nil || w < 1 {
		return FetchPolicy{}, fmt.Errorf("config: fetch policy %q has bad width %q", s, parts[2])
	}
	return FetchPolicy{Policy: p, Threads: t, Width: w}, nil
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	Banks     int
	// HitLatency is the access time in cycles on a hit.
	HitLatency int
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Config is the full machine configuration (Table 3).
type Config struct {
	// Fetch front-end.
	Engine      Engine
	FetchPolicy FetchPolicy
	// FetchBufferSize is the decoupling buffer between fetch and decode
	// (32 instructions in Table 3).
	FetchBufferSize int
	// FTQSize is the per-thread fetch target queue depth (4 in Table 3).
	FTQSize int

	// Predictor sizing. The paper budgets ~45KB for each engine.
	GShareEntries     int // 64K entries, 16-bit history
	GShareHistoryBits int
	GSkewEntries      int // per table; 3 x 32K entries, 15-bit history
	GSkewHistoryBits  int
	BTBEntries        int // 2K entries
	BTBAssoc          int // 4-way
	StreamL1Entries   int // 1K entries, 4-way
	StreamL1Assoc     int
	StreamL2Entries   int // 4K entries, 4-way
	StreamL2Assoc     int
	// DOLC path-index parameters for the stream predictor (16-2-4-10).
	DOLCDepth, DOLCOlder, DOLCLast, DOLCCurrent int
	RASEntries                                  int // 64, replicated per thread

	// Back end.
	DecodeWidth  int
	CommitWidth  int
	ROBSize      int // shared among threads
	IntQueueSize int
	LSQueueSize  int
	FPQueueSize  int
	IntRegs      int
	FPRegs       int
	IntUnits     int
	LSUnits      int
	FPUnits      int

	// Memory hierarchy.
	L1I            CacheConfig
	L1D            CacheConfig
	L2             CacheConfig
	MemLatency     int
	ITLBEntries    int
	DTLBEntries    int
	TLBMissLatency int
	DMSHRs         int // outstanding data misses per thread

	// MaxThreads is the hardware context count (8-way SMT).
	MaxThreads int

	// Pipeline depths between named stages; the decoupled front-end adds
	// one stage (8 -> 9 total, per the paper).
	DecodeStages, RenameStages int
	// MispredictRedirectPenalty is the extra front-end bubble after a
	// branch misprediction is detected at execute, beyond the natural
	// pipeline refill (prediction restarts next cycle).
	MispredictRedirectPenalty int
	// MisfetchPenalty is the shorter redirect charged when the target
	// structure (BTB/FTB/stream) misses but decode discovers a taken
	// branch.
	MisfetchPenalty int
}

// Default returns the Table 3 configuration with the baseline engine and
// ICOUNT.1.8.
func Default() Config {
	return Config{
		Engine:      GShareBTB,
		FetchPolicy: ICount18,

		FetchBufferSize: 32,
		FTQSize:         4,

		GShareEntries:     64 * 1024,
		GShareHistoryBits: 16,
		GSkewEntries:      32 * 1024,
		GSkewHistoryBits:  15,
		BTBEntries:        2 * 1024,
		BTBAssoc:          4,
		StreamL1Entries:   1024,
		StreamL1Assoc:     4,
		StreamL2Entries:   4 * 1024,
		StreamL2Assoc:     4,
		DOLCDepth:         16,
		DOLCOlder:         2,
		DOLCLast:          4,
		DOLCCurrent:       10,
		RASEntries:        64,

		DecodeWidth:  8,
		CommitWidth:  8,
		ROBSize:      256,
		IntQueueSize: 32,
		LSQueueSize:  32,
		FPQueueSize:  32,
		IntRegs:      384,
		FPRegs:       384,
		IntUnits:     6,
		LSUnits:      4,
		FPUnits:      3,

		L1I:            CacheConfig{SizeBytes: 32 * 1024, Assoc: 2, LineBytes: 64, Banks: 8, HitLatency: 1},
		L1D:            CacheConfig{SizeBytes: 32 * 1024, Assoc: 2, LineBytes: 64, Banks: 8, HitLatency: 1},
		L2:             CacheConfig{SizeBytes: 1024 * 1024, Assoc: 2, LineBytes: 64, Banks: 8, HitLatency: 10},
		MemLatency:     100,
		ITLBEntries:    48,
		DTLBEntries:    128,
		TLBMissLatency: 30,
		DMSHRs:         8,

		MaxThreads: 8,

		DecodeStages:              2,
		RenameStages:              2,
		MispredictRedirectPenalty: 2,
		MisfetchPenalty:           2,
	}
}

// Validate reports configuration errors a user could plausibly introduce.
func (c *Config) Validate() error {
	fp := c.FetchPolicy
	if fp.Threads < 1 || fp.Threads > 2 {
		return fmt.Errorf("config: fetch policy threads must be 1 or 2, got %d", fp.Threads)
	}
	if fp.Width <= 0 {
		return fmt.Errorf("config: fetch width must be positive, got %d", fp.Width)
	}
	if c.FetchBufferSize < fp.Width {
		return fmt.Errorf("config: fetch buffer (%d) smaller than fetch width (%d)", c.FetchBufferSize, fp.Width)
	}
	if c.FTQSize < 1 {
		return fmt.Errorf("config: FTQ size must be >= 1, got %d", c.FTQSize)
	}
	if c.MaxThreads < 1 {
		return fmt.Errorf("config: MaxThreads must be >= 1, got %d", c.MaxThreads)
	}
	if c.DecodeWidth < 1 || c.CommitWidth < 1 {
		return fmt.Errorf("config: decode/commit width must be >= 1")
	}
	if c.ROBSize < c.DecodeWidth {
		return fmt.Errorf("config: ROB (%d) smaller than decode width (%d)", c.ROBSize, c.DecodeWidth)
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1I", c.L1I}, {"L1D", c.L1D}, {"L2", c.L2}} {
		if err := validateCache(cc.name, cc.c); err != nil {
			return err
		}
	}
	// Only the fetch stage models bank conflicts, with a uint64 bitmask
	// over the L1I banks.
	if c.L1I.Banks > 64 {
		return fmt.Errorf("config: L1I: at most 64 banks supported, got %d", c.L1I.Banks)
	}
	if c.GShareEntries&(c.GShareEntries-1) != 0 {
		return fmt.Errorf("config: gshare entries must be a power of two, got %d", c.GShareEntries)
	}
	if c.GSkewEntries&(c.GSkewEntries-1) != 0 {
		return fmt.Errorf("config: gskew entries must be a power of two, got %d", c.GSkewEntries)
	}
	return nil
}

func validateCache(name string, c CacheConfig) error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("config: %s: size, line, assoc must be positive", name)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("config: %s: line size must be a power of two, got %d", name, c.LineBytes)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("config: %s: size %d not divisible by line*assoc", name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("config: %s: set count must be a power of two, got %d", name, sets)
	}
	if c.Banks > 0 && c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("config: %s: bank count must be a power of two, got %d", name, c.Banks)
	}
	return nil
}
