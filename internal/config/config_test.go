package config

import (
	"strings"
	"testing"
)

func TestEngineStringParseRoundTrip(t *testing.T) {
	for _, e := range Engines() {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", e.String(), err)
			continue
		}
		if got != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", e.String(), got, e)
		}
	}
}

func TestParseEngineAliases(t *testing.T) {
	cases := []struct {
		in   string
		want Engine
	}{
		{"gshare", GShareBTB},
		{"GSHARE+BTB", GShareBTB},
		{" gskew ", GSkewFTB},
		{"gskew+ftb", GSkewFTB},
		{"stream", StreamFetch},
		{"StreamFetch", StreamFetch},
	}
	for _, c := range cases {
		got, err := ParseEngine(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseEngine(%q) = %v,%v, want %v,nil", c.in, got, err, c.want)
		}
	}
}

func TestParseEngineUnknown(t *testing.T) {
	for _, bad := range []string{"", "tage", "gshare+FTB2", "42"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Errorf("ParseEngine(%q) succeeded, want error", bad)
		}
	}
}

func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v,%v, want %v,nil", p.String(), got, err, p)
		}
	}
	if got, err := ParsePolicy("roundrobin"); err != nil || got != RoundRobin {
		t.Errorf("ParsePolicy(roundrobin) = %v,%v, want RR,nil", got, err)
	}
	if _, err := ParsePolicy("LRU"); err == nil {
		t.Error("ParsePolicy(LRU) succeeded, want error")
	}
}

// TestParsePolicyErrorListsAllPolicies pins the fix for the hardcoded
// "want ICOUNT or RR" message: the error must name every policy that
// Policies() returns, so the hint can never drift as policies are added.
func TestParsePolicyErrorListsAllPolicies(t *testing.T) {
	_, err := ParsePolicy("LRU")
	if err == nil {
		t.Fatal("ParsePolicy(LRU) succeeded, want error")
	}
	for _, p := range Policies() {
		if !strings.Contains(err.Error(), p.String()) {
			t.Errorf("ParsePolicy error %q does not mention %v", err, p)
		}
	}
}

func TestFetchPolicyStringParseRoundTrip(t *testing.T) {
	for _, fp := range AllFetchPolicies() {
		s := fp.String()
		got, err := ParseFetchPolicy(s)
		if err != nil {
			t.Errorf("ParseFetchPolicy(%q): %v", s, err)
			continue
		}
		if got != fp {
			t.Errorf("ParseFetchPolicy(%q) = %+v, want %+v", s, got, fp)
		}
		if got.String() != s {
			t.Errorf("round-trip of %q produced %q", s, got.String())
		}
	}
}

func TestParseFetchPolicyErrors(t *testing.T) {
	for _, bad := range []string{
		"", "ICOUNT", "ICOUNT.2", "ICOUNT.2.8.1", "LRU.2.8",
		"ICOUNT.x.8", "ICOUNT.2.y", "ICOUNT.0.8", "ICOUNT.2.0", "ICOUNT.-1.8",
	} {
		if _, err := ParseFetchPolicy(bad); err == nil {
			t.Errorf("ParseFetchPolicy(%q) succeeded, want error", bad)
		}
	}
}

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Default() does not validate: %v", err)
	}
	for _, e := range Engines() {
		for _, fp := range AllFetchPolicies() {
			c := Default()
			c.Engine = e
			c.FetchPolicy = fp
			if err := c.Validate(); err != nil {
				t.Errorf("Default with %v/%v: %v", e, fp, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		errFrag string
	}{
		{"threads0", func(c *Config) { c.FetchPolicy.Threads = 0 }, "threads"},
		{"threads3", func(c *Config) { c.FetchPolicy.Threads = 3 }, "threads"},
		{"width0", func(c *Config) { c.FetchPolicy.Width = 0 }, "width"},
		{"smallFetchBuf", func(c *Config) { c.FetchBufferSize = 4 }, "fetch buffer"},
		{"ftq0", func(c *Config) { c.FTQSize = 0 }, "FTQ"},
		{"threadsNeg", func(c *Config) { c.MaxThreads = 0 }, "MaxThreads"},
		{"robTiny", func(c *Config) { c.ROBSize = 1 }, "ROB"},
		{"gshareNPOT", func(c *Config) { c.GShareEntries = 1000 }, "gshare"},
		{"gskewNPOT", func(c *Config) { c.GSkewEntries = 1000 }, "gskew"},
		{"cacheLineNPOT", func(c *Config) { c.L1D.LineBytes = 48 }, "L1D"},
		{"cacheZero", func(c *Config) { c.L2.SizeBytes = 0 }, "L2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Default()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("Validate succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.errFrag) {
				t.Fatalf("error %q does not mention %q", err, tc.errFrag)
			}
		})
	}
}

func TestCacheSets(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 * 1024, Assoc: 2, LineBytes: 64}
	if got := c.Sets(); got != 256 {
		t.Fatalf("Sets = %d, want 256", got)
	}
}
