package core

// Warm-state checkpoints: Snapshot serializes the complete dynamic state
// of a warmed simulator into a versioned binary artifact; Restore rebuilds
// it onto a freshly constructed simulator of identical configuration, such
// that restore-then-run is byte-identical to continuing the original.
//
// Pooled-object graphs (uops and fetch requests) are serialized by value
// into tables and every container as index lists over those tables, so a
// restored simulator re-links the graph through fresh pool acquisitions
// and the ordinary Retain/Release protocol — pool lifetime invariants hold
// by construction after a round trip, which the fuzz tests verify.
//
// Deliberately excluded from the stream, with the argument for each:
//
//   - Squashed uops (limbo quarantine, stale execList/pendingDecode
//     entries): every consumer either drops them on sight (the lazy
//     compaction scans) or treats them as absent (depReady returns "ready"
//     for squashed producers), so omitting them changes no observable
//     behaviour. The dependence rings serialize such slots as -1; a nil
//     ring entry and a squashed one are indistinguishable to depReady.
//   - The uop free list and slab: allocUOp zero-resets every uop it hands
//     out, so pool population is invisible to simulation results.
//   - FUPool issue budgets: the per-cycle counter self-resets on the first
//     TryIssue of any later cycle (cycle stamp comparison), so a zeroed
//     pool behaves identically.
//   - Per-cycle scratch (orderBuf, keyBuf, usedBanks, iqposnBuf,
//     flushBatch, flushTail, inFlightData): recomputed from scratch inside
//     every Cycle before first use.
//
// This file also implements the drain / functional fast-forward machinery
// behind SMARTS-style sampled simulation, and SetPolicy, which lets one
// warmed snapshot serve a whole family of fetch-policy cells.
//
// All cold-path code, outside the cycle loop.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
	"smtfetch/internal/pipeline"
	"smtfetch/internal/snap"
)

const (
	// snapMagic is "SMTF" little-endian.
	snapMagic   = uint32('S') | uint32('M')<<8 | uint32('T')<<16 | uint32('F')<<24
	snapVersion = uint32(1)
)

// SnapshotVersion is the snapshot artifact format version. Callers that
// cache snapshot blobs (the experiment warm keys, the server's snapshot
// cache tier) fold it into their keys so a format bump invalidates stale
// artifacts instead of failing restores.
const SnapshotVersion = int(snapVersion)

// cfgHash fingerprints the simulated configuration so a snapshot can only
// be restored onto a machine that is structurally identical (same table
// sizes, latencies, policy, thread count).
func (s *Sim) cfgHash() uint64 {
	b, err := json.Marshal(s.cfg)
	if err != nil {
		panic(fmt.Sprintf("core: config not serializable: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Snapshot serializes the simulator's complete dynamic state at a cycle
// boundary. The artifact is versioned and keyed to the configuration; see
// Restore for the inverse.
//
//smtfetch:poolowner
func (s *Sim) Snapshot() ([]byte, error) {
	for t := range s.threads {
		if s.threads[t].pendingFlush != nil {
			// pendingFlush is set and consumed within a single Cycle call;
			// seeing it here means Snapshot was called mid-cycle.
			return nil, fmt.Errorf("core: snapshot mid-cycle: thread %d has a pending flush", t)
		}
	}

	// Enumerate live (non-squashed) uops in a deterministic order: ROB
	// thread-by-thread oldest-first, then the front-end rings, the
	// execution-side lists, and FLUSH replay queues. First occurrence
	// assigns the table index.
	uopIdx := make(map[*pipeline.UOp]int)
	var uops []*pipeline.UOp
	add := func(u *pipeline.UOp) {
		if u == nil || u.Squashed {
			return
		}
		if _, ok := uopIdx[u]; ok {
			return
		}
		uopIdx[u] = len(uops)
		uops = append(uops, u)
	}
	s.rob.Each(add)
	for i, n := 0, s.fetchBuf.Len(); i < n; i++ {
		add(s.fetchBuf.At(i))
	}
	for i, n := 0, s.frontPipe.Len(); i < n; i++ {
		add(s.frontPipe.At(i))
	}
	for _, u := range s.execList {
		add(u)
	}
	for _, u := range s.pendingDecode {
		add(u)
	}
	for t := range s.threads {
		ts := &s.threads[t]
		for _, u := range ts.replay[ts.replayPos:] {
			add(u)
		}
	}

	// Enumerate pooled fetch requests: FTQ contents oldest-first per
	// thread, then requests pinned only by uops (stragglers), in uop-table
	// order.
	reqIdx := make(map[*ftq.Request]int)
	var reqs []*ftq.Request
	for t := 0; t < s.nthreads; t++ {
		s.fe.Queue(t).Each(func(r *ftq.Request) {
			reqIdx[r] = len(reqs)
			reqs = append(reqs, r)
		})
	}
	for _, u := range uops {
		if u.Req == nil {
			continue
		}
		if _, ok := reqIdx[u.Req]; !ok {
			reqIdx[u.Req] = len(reqs)
			reqs = append(reqs, u.Req)
		}
	}

	w := &snap.Writer{}
	w.U32(snapMagic)
	w.U32(snapVersion)
	w.U64(s.cfgHash())
	w.Int(s.nthreads)
	w.U64(s.now)
	w.U64(s.gseq)

	// Request table. The thread id is written ahead of the content so
	// Restore can acquire from the right per-thread pool before decoding.
	w.Int(len(reqs))
	for _, r := range reqs {
		w.Int(r.Thread)
		r.EncodeState(w)
	}

	// Front end: predictor tables, per-thread speculative state, trace
	// cursors, and FTQ contents as request-table indices.
	s.fe.EncodeState(w, func(r *ftq.Request) int { return reqIdx[r] })

	// Uop table: payload plus the (request, branch-slot) link re-binding
	// Info/Req on restore.
	w.Int(len(uops))
	for _, u := range uops {
		u.EncodeState(w)
		if u.Req != nil {
			slot := u.Req.BranchSlot(u.Info)
			if slot < 0 {
				return nil, fmt.Errorf("core: uop branch info does not belong to its request")
			}
			w.Int(reqIdx[u.Req])
			w.Int(slot)
		} else {
			w.Int(-1)
			w.Int(-1)
		}
	}

	// Containers as uop-table index lists, in the same order Restore
	// rebuilds them.
	w.Int(s.rob.Len())
	s.rob.Each(func(u *pipeline.UOp) { w.Int(uopIdx[u]) })
	for k := 0; k < pipeline.NumQueues; k++ {
		q := s.iqs[k]
		w.Int(q.Len())
		q.Each(func(u *pipeline.UOp) { w.Int(uopIdx[u]) })
	}
	encodeRingIndices(w, s.fetchBuf, uopIdx)
	encodeRingIndices(w, s.frontPipe, uopIdx)
	encodeListIndices(w, s.execList, uopIdx)
	encodeListIndices(w, s.pendingDecode, uopIdx)
	for t := range s.threads {
		ts := &s.threads[t]
		// The consumed prefix is dropped: replayPos normalizes to zero.
		encodeListIndices(w, ts.replay[ts.replayPos:], uopIdx)
	}

	// Dependence rings: index-or-(-1) per slot, canonicalized. A slot is
	// serialized only when its uop still owns it — live, same thread, and
	// PathSeq mapping back to the slot. Everything else (nil, squashed,
	// freed, or a recycled object that now lives elsewhere) fails
	// depReady's identity validation identically to nil, and whether a
	// freed object was recycled into some live uop depends on pool
	// history, which differs between an original and a restored simulator;
	// canonicalizing keeps their snapshots byte-identical.
	for t := range s.threads {
		ts := &s.threads[t]
		for i := range ts.ring {
			u := ts.ring[i]
			if u == nil || u.Squashed || u.Thread != t ||
				int(u.PathSeq&((1<<ringBits)-1)) != i {
				w.Int(-1)
				continue
			}
			if idx, ok := uopIdx[u]; ok {
				w.Int(idx)
			} else {
				w.Int(-1)
			}
		}
	}

	// Per-thread policy-signal counters and stall deadlines.
	for t := range s.threads {
		ts := &s.threads[t]
		w.Int(ts.icount)
		w.U64(ts.predictStallUntil)
		w.U64(ts.icacheBlockedUntil)
		w.Int(ts.brcount)
		w.Int(ts.dmisses)
		w.Int(ts.longLoads)
	}

	w.Int(s.intRegs.Free())
	w.Int(s.fpRegs.Free())
	s.hier.EncodeState(w)
	s.st.EncodeState(w)
	return w.Bytes(), nil
}

func encodeRingIndices(w *snap.Writer, r *pipeline.UOpRing, idx map[*pipeline.UOp]int) {
	n := r.Len()
	w.Int(n)
	for i := 0; i < n; i++ {
		w.Int(idx[r.At(i)])
	}
}

// encodeListIndices writes the non-squashed subset of an execution-side
// list (squashed entries would be dropped by the list's next lazy scan
// anyway, so omitting them is behaviour-preserving).
func encodeListIndices(w *snap.Writer, list []*pipeline.UOp, idx map[*pipeline.UOp]int) {
	n := 0
	for _, u := range list {
		if !u.Squashed {
			n++
		}
	}
	w.Int(n)
	for _, u := range list {
		if !u.Squashed {
			w.Int(idx[u])
		}
	}
}

// Restore rebuilds the state serialized by Snapshot onto a freshly
// constructed simulator of identical configuration (same config, programs,
// and seed as the snapshotted one). On error the simulator is left
// partially restored and must be discarded.
//
//smtfetch:poolowner
func (s *Sim) Restore(blob []byte) error {
	if s.now != 0 || s.rob.Len() != 0 || s.fetchBuf.Len() != 0 ||
		s.frontPipe.Len() != 0 || len(s.execList) != 0 {
		return fmt.Errorf("core: Restore requires a freshly constructed simulator")
	}
	r := snap.NewReader(blob)
	if m := r.U32(); r.Err() == nil && m != snapMagic {
		return fmt.Errorf("core: not a snapshot (bad magic %#x)", m)
	}
	if v := r.U32(); r.Err() == nil && v != snapVersion {
		return fmt.Errorf("core: snapshot version %d, this build reads %d", v, snapVersion)
	}
	if h := r.U64(); r.Err() == nil && h != s.cfgHash() {
		return fmt.Errorf("core: snapshot was taken under a different configuration")
	}
	if n := r.Int(); r.Err() == nil && n != s.nthreads {
		return fmt.Errorf("core: snapshot has %d threads, simulator has %d", n, s.nthreads)
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.now = r.U64()
	s.gseq = r.U64()

	// Request table: acquire fresh requests from the per-thread pools and
	// decode content into them. Each starts with the pool's creator
	// reference; queue pushes take those over below, and stragglers drop
	// theirs once the pinning uops have re-added their references.
	nreq := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nreq < 0 || nreq > len(blob) {
		return fmt.Errorf("core: implausible request count %d", nreq)
	}
	reqs := make([]*ftq.Request, nreq)
	for i := range reqs {
		t := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if t < 0 || t >= s.nthreads {
			return fmt.Errorf("core: request %d has thread %d out of range", i, t)
		}
		req := s.fe.Pool(t).Get(t)
		req.DecodeState(r)
		reqs[i] = req
	}

	queued := make([]bool, nreq)
	s.fe.DecodeState(r, func(i int) *ftq.Request {
		if i < 0 || i >= nreq {
			return nil
		}
		queued[i] = true
		return reqs[i]
	})
	if err := r.Err(); err != nil {
		return err
	}

	// Uop table: fresh pool uops, re-linked to their requests through the
	// ordinary Retain protocol.
	nuop := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if nuop < 0 || nuop > len(blob) {
		return fmt.Errorf("core: implausible uop count %d", nuop)
	}
	uops := make([]*pipeline.UOp, nuop)
	for i := range uops {
		u := s.allocUOp()
		u.DecodeState(r)
		ri := r.Int()
		slot := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if ri >= 0 {
			if ri >= nreq || slot < 0 {
				return fmt.Errorf("core: uop %d has bad request link (%d, %d)", i, ri, slot)
			}
			bi := reqs[ri].Branch(slot)
			if bi == nil {
				return fmt.Errorf("core: uop %d links to non-branch slot %d", i, slot)
			}
			u.Req = reqs[ri]
			u.Info = bi
			u.Req.Retain()
		}
		uops[i] = u
	}
	uopAt := func(i int) (*pipeline.UOp, error) {
		if err := r.Err(); err != nil {
			return nil, err
		}
		if i < 0 || i >= nuop {
			return nil, fmt.Errorf("core: uop index %d out of range", i)
		}
		return uops[i], nil
	}

	// Containers, in Snapshot's order.
	nrob := r.Int()
	for i := 0; i < nrob; i++ {
		u, err := uopAt(r.Int())
		if err != nil {
			return err
		}
		if !s.rob.Dispatch(u) {
			return fmt.Errorf("core: ROB overflow during restore")
		}
	}
	for k := 0; k < pipeline.NumQueues; k++ {
		cnt := r.Int()
		for i := 0; i < cnt; i++ {
			u, err := uopAt(r.Int())
			if err != nil {
				return err
			}
			if !s.iqs[k].Add(u) {
				return fmt.Errorf("core: issue queue %d overflow during restore", k)
			}
		}
	}
	for _, ring := range []*pipeline.UOpRing{s.fetchBuf, s.frontPipe} {
		cnt := r.Int()
		for i := 0; i < cnt; i++ {
			u, err := uopAt(r.Int())
			if err != nil {
				return err
			}
			ring.Push(u)
		}
	}
	for _, list := range []*[]*pipeline.UOp{&s.execList, &s.pendingDecode} {
		cnt := r.Int()
		for i := 0; i < cnt; i++ {
			u, err := uopAt(r.Int())
			if err != nil {
				return err
			}
			*list = append(*list, u)
		}
	}
	for t := range s.threads {
		ts := &s.threads[t]
		cnt := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		if cnt > 0 && ts.replay == nil {
			// Snapshots taken under the FLUSH policy carry replay queues;
			// the receiver was built under the same policy (cfgHash), so
			// this is only reachable on corrupt input.
			return fmt.Errorf("core: snapshot has replay uops but simulator has no replay queue")
		}
		for i := 0; i < cnt; i++ {
			u, err := uopAt(r.Int())
			if err != nil {
				return err
			}
			ts.replay = append(ts.replay, u)
		}
		ts.replayPos = 0
	}

	for t := range s.threads {
		ts := &s.threads[t]
		for i := range ts.ring {
			idx := r.Int()
			if idx < 0 {
				continue
			}
			u, err := uopAt(idx)
			if err != nil {
				return err
			}
			ts.ring[i] = u
		}
	}

	// Straggler requests (pinned only by uops) now hold their pinning
	// uops' references plus the pool creator reference; drop the latter.
	for i, req := range reqs {
		if !queued[i] {
			req.Release()
		}
	}

	for t := range s.threads {
		ts := &s.threads[t]
		ts.icount = r.Int()
		ts.predictStallUntil = r.U64()
		ts.icacheBlockedUntil = r.U64()
		ts.brcount = r.Int()
		ts.dmisses = r.Int()
		ts.longLoads = r.Int()
	}

	s.intRegs.SetFree(r.Int())
	s.fpRegs.SetFree(r.Int())
	s.hier.DecodeState(r)
	s.st.DecodeState(r)
	if err := r.Err(); err != nil {
		return err
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: %d trailing bytes after snapshot", r.Rest())
	}
	return nil
}

// SetPolicy switches the simulator's fetch policy in place, so one warmed
// snapshot (taken under a canonical policy) can be forked into every cell
// of a policy sweep. The fetch bandwidth (threads-per-cycle and width)
// must not change: it sizes buffers and the fetch histogram. The switch
// must happen at a point with no FLUSH replay in flight.
//
// SetPolicy is pool machinery: switching to FLUSH lazily allocates the
// replay and flush-batch buffers New would have pre-sized.
//
//smtfetch:poolowner
func (s *Sim) SetPolicy(p config.FetchPolicy) error {
	cur := s.cfg.FetchPolicy
	if p.Threads != cur.Threads || p.Width != cur.Width {
		return fmt.Errorf("core: SetPolicy cannot change fetch bandwidth (%d.%d -> %d.%d)",
			cur.Threads, cur.Width, p.Threads, p.Width)
	}
	tmp := *s.cfg
	tmp.FetchPolicy = p
	if err := tmp.Validate(); err != nil {
		return err
	}
	for t := range s.threads {
		ts := &s.threads[t]
		if ts.replayPos < len(ts.replay) || ts.pendingFlush != nil {
			return fmt.Errorf("core: SetPolicy with FLUSH replay in flight on thread %d", t)
		}
	}
	s.cfg.FetchPolicy = p
	s.gateLongLoads = p.Policy == config.Stall || p.Policy == config.Flush
	s.flushPolicy = p.Policy == config.Flush
	s.needIQPosn = p.Policy == config.IQPosn
	if s.needIQPosn && s.iqposnBuf == nil {
		s.iqposnBuf = make([]int, s.nthreads)
	}
	if s.flushPolicy && s.flushBatch == nil {
		bound := s.cfg.ROBSize + 3*s.cfg.FetchBufferSize
		s.flushBatch = make([]*pipeline.UOp, 0, bound)
		s.flushTail = make([]*pipeline.UOp, 0, bound)
	}
	if s.flushPolicy {
		for i := range s.threads {
			if s.threads[i].replay == nil {
				s.threads[i].replay = make([]*pipeline.UOp, 0, s.cfg.ROBSize+3*s.cfg.FetchBufferSize)
			}
		}
	}
	return nil
}

// drained reports whether the pipeline holds no work at all: every
// in-flight structure empty, no FLUSH replay pending, and each thread's
// front end sitting cleanly on its committed trace.
func (s *Sim) drained() bool {
	if s.rob.Len() != 0 || s.fetchBuf.Len() != 0 || s.frontPipe.Len() != 0 ||
		len(s.execList) != 0 || len(s.pendingDecode) != 0 ||
		len(s.limboCur) != 0 || len(s.limboOld) != 0 {
		return false
	}
	for t := 0; t < s.nthreads; t++ {
		ts := &s.threads[t]
		if ts.replayPos < len(ts.replay) {
			return false
		}
		if !s.fe.Drained(t) {
			return false
		}
	}
	return true
}

// Drained reports whether the pipeline is fully drained (see Drain).
func (s *Sim) Drained() bool { return s.drained() }

// Drain runs the pipeline with the prediction stage gated off until every
// in-flight instruction has retired or been squashed and all FTQ contents
// are consumed, leaving each thread's front end exactly on its committed
// trace. Drain cycles count toward s.Cycles() and the statistics; sampled
// simulation places them outside its measurement windows. maxCycles bounds
// the wait (a generous multiple of the memory latency suffices: with
// prediction off the in-flight population only shrinks).
func (s *Sim) Drain(maxCycles uint64) error {
	s.drainMode = true
	defer func() { s.drainMode = false }()
	limit := s.now + maxCycles
	for !s.drained() {
		if s.now >= limit {
			return fmt.Errorf("core: pipeline failed to drain within %d cycles", maxCycles)
		}
		s.Cycle()
	}
	return nil
}

// FastForward functionally executes n committed-path instructions,
// round-robined across threads: predictors train on true outcomes, caches
// and TLBs are warmed along the reference stream, but no cycles elapse and
// no statistics accumulate. The pipeline must be drained first.
func (s *Sim) FastForward(n uint64) error {
	if !s.drained() {
		return fmt.Errorf("core: FastForward requires a drained pipeline (call Drain first)")
	}
	for t := 0; t < s.nthreads; t++ {
		s.fe.BeginFunctional(t)
	}
	for i := uint64(0); i < n; i++ {
		t := int(i % uint64(s.nthreads))
		in := s.fe.FunctionalAdvance(t)
		s.hier.WarmInstr(in.PC)
		if in.Class == isa.Load || in.Class == isa.Store {
			s.hier.WarmData(in.EffAddr)
		}
	}
	return nil
}

// FastForwardShares is FastForward with a thread-progress distribution:
// the n instructions are apportioned across threads proportionally to
// shares (smooth weighted round-robin, deterministic) instead of strict
// round-robin. Sampled simulation passes the per-thread commit counts of
// the preceding detail interval so that policy-induced progress skew —
// the dominant long-timescale effect an equal-progress fast-forward would
// erase (FLUSH and STALL starve or favor threads for their whole run) —
// keeps accumulating across the functional gaps. An all-zero shares
// vector falls back to strict round-robin.
func (s *Sim) FastForwardShares(n uint64, shares []uint64) error {
	if len(shares) != s.nthreads {
		return fmt.Errorf("core: FastForwardShares wants %d shares, got %d", s.nthreads, len(shares))
	}
	var total int64
	for _, w := range shares {
		total += int64(w)
	}
	if total == 0 {
		return s.FastForward(n)
	}
	if !s.drained() {
		return fmt.Errorf("core: FastForwardShares requires a drained pipeline (call Drain first)")
	}
	for t := 0; t < s.nthreads; t++ {
		s.fe.BeginFunctional(t)
	}
	// Smooth weighted round-robin: each slot goes to the thread with the
	// highest accumulated credit, interleaving threads at their share
	// ratio (so cache/TLB warming sees a representative reference mix,
	// not one thread's burst followed by another's).
	credit := make([]int64, s.nthreads)
	for i := uint64(0); i < n; i++ {
		best := 0
		for t := 0; t < s.nthreads; t++ {
			credit[t] += int64(shares[t])
			if credit[t] > credit[best] {
				best = t
			}
		}
		credit[best] -= total
		in := s.fe.FunctionalAdvance(best)
		s.hier.WarmInstr(in.PC)
		if in.Class == isa.Load || in.Class == isa.Store {
			s.hier.WarmData(in.EffAddr)
		}
	}
	return nil
}
