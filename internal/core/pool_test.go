package core

import (
	"runtime"
	"testing"

	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
)

// TestRequestPoolNeverHoldsLiveRequest is the whole-pipeline aliasing
// invariant for the fetch-request pool, modeled on the uop free-list test:
// at no point may a request that is queued in an FTQ or pinned by an
// in-flight uop appear on a free list, and every uop's Info pointer must
// target a live request.
func TestRequestPoolNeverHoldsLiveRequest(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch} {
		s := newTestSim(t, eng, 0xA11A5)
		var pinned []*ftq.Request
		for step := 0; step < 200; step++ {
			s.RunCycles(100)
			pinned = pinned[:0]
			for u, where := range s.liveUOps() {
				if u.Req == nil {
					if u.Info != nil && !u.Squashed {
						t.Fatalf("%v, cycle %d: uop in %s has Info but no Req back-reference", eng, s.Cycles(), where)
					}
					continue
				}
				if u.Squashed {
					t.Fatalf("%v, cycle %d: squashed uop in %s still holds a request reference", eng, s.Cycles(), where)
				}
				if !u.Req.Live() {
					t.Fatalf("%v, cycle %d: uop in %s points into a pooled request", eng, s.Cycles(), where)
				}
				pinned = append(pinned, u.Req)
			}
			if err := s.fe.CheckPoolInvariants(pinned...); err != nil {
				t.Fatalf("%v, cycle %d: %v", eng, s.Cycles(), err)
			}
		}
		if s.Stats().Squashed == 0 {
			t.Fatalf("%v: no squashes happened; recycling path untested", eng)
		}
	}
}

// TestSteadyStateZeroAllocs is the allocation gate as a plain test: after
// warm-up the cycle loop must reach windows with literally zero heap
// allocations. Growth is allowed only as rare working-set high-water
// bursts, so the test passes as soon as any window is clean and fails
// only if every window allocates.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation accounting")
	}
	if testing.Short() {
		t.Skip("real simulator run; skipped with -short")
	}
	for _, eng := range []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch} {
		s := newTestSim(t, eng, 0x5EED)
		s.RunCycles(150_000)
		var clean bool
		var counts []uint64
		for window := 0; window < 8 && !clean; window++ {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			s.RunCycles(25_000)
			runtime.ReadMemStats(&after)
			n := after.Mallocs - before.Mallocs
			counts = append(counts, n)
			clean = n == 0
		}
		if !clean {
			t.Fatalf("%v: no allocation-free 25k-cycle window after warm-up; allocs per window: %v", eng, counts)
		}
	}
}
