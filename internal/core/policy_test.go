package core

import (
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// newPolicySim builds a simulator for the given fetch policy on a
// memory-heavy workload (4_MIX mixes ILP and memory-bound threads, so the
// long-latency-load policies actually trigger).
func newPolicySim(t testing.TB, pol config.Policy, seed uint64) *Sim {
	t.Helper()
	cfg := config.Default()
	cfg.FetchPolicy = config.FetchPolicy{Policy: pol, Threads: 2, Width: 8}
	w, err := bench.WorkloadByName("4_MIX")
	if err != nil {
		t.Fatal(err)
	}
	st := seed
	programs := make([]*prog.Program, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		programs[i] = prog.Build(bench.MustProfile(name), rng.SplitMix64(&st))
	}
	s, err := New(cfg, programs, rng.SplitMix64(&st))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPolicyFamilyProgressAndDeterminism runs every policy and requires
// forward progress plus cycle-exact replay — the two properties a new
// policy must not break.
func TestPolicyFamilyProgressAndDeterminism(t *testing.T) {
	for _, pol := range config.Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			run := func() (uint64, uint64, uint64, uint64) {
				s := newPolicySim(t, pol, 0xFA111)
				st := s.Run(25_000, 3_000_000)
				return s.Cycles(), st.Committed, st.Squashed, st.Flushes
			}
			c1, m1, q1, f1 := run()
			c2, m2, q2, f2 := run()
			if c1 != c2 || m1 != m2 || q1 != q2 || f1 != f2 {
				t.Fatalf("replay diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
					c1, m1, q1, f1, c2, m2, q2, f2)
			}
			if m1 < 25_000 {
				t.Fatalf("only %d commits in 3M cycles", m1)
			}
			if pol == config.Flush {
				if f1 == 0 {
					t.Fatal("FLUSH policy never flushed on a memory-heavy workload")
				}
			} else if f1 != 0 {
				t.Fatalf("policy %v reported %d flushes; only FLUSH may flush", pol, f1)
			}
		})
	}
}

// TestFlushReplayAccounting pins the FLUSH policy's bookkeeping: every
// flushed uop is either replayed or squashed (none lost, none duplicated),
// and the run commits the requested instructions.
func TestFlushReplayAccounting(t *testing.T) {
	s := newPolicySim(t, config.Flush, 0xF1005)
	st := s.Run(40_000, 3_000_000)
	if st.Flushes == 0 || st.FlushedUOps == 0 {
		t.Fatalf("no flush events (flushes=%d, uops=%d)", st.Flushes, st.FlushedUOps)
	}
	if st.Replayed == 0 {
		t.Fatal("flushed uops were never replayed")
	}
	if st.Replayed > st.FlushedUOps {
		t.Fatalf("replayed (%d) exceeds flushed (%d): double delivery", st.Replayed, st.FlushedUOps)
	}
	// Whatever is still pending at the end is bounded by one thread's
	// in-flight window.
	pending := 0
	for t := range s.threads {
		ts := &s.threads[t]
		pending += len(ts.replay) - ts.replayPos
	}
	if max := s.cfg.ROBSize + 3*s.cfg.FetchBufferSize; pending > max {
		t.Fatalf("pending replay %d exceeds in-flight bound %d", pending, max)
	}
}

// TestPolicySignalConsistency is TestICountConsistency for the new
// signals: after arbitrary execution under each policy that consumes a
// signal, the per-thread counters must equal a recount over the live uops.
func TestPolicySignalConsistency(t *testing.T) {
	for _, pol := range []config.Policy{config.BRCount, config.MissCount, config.Stall, config.Flush} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			s := newPolicySim(t, pol, 0x51677+uint64(pol))
			for step := 0; step < 60; step++ {
				s.RunCycles(500)
				wantBr := make([]int, s.nthreads)
				wantDM := make([]int, s.nthreads)
				wantLL := make([]int, s.nthreads)
				for u := range s.liveUOps() {
					if u.Squashed && (u.InBRCount || u.DMiss || u.LongMiss) {
						t.Fatalf("cycle %d: squashed uop still carries signal flags", s.Cycles())
					}
					if u.InBRCount {
						wantBr[u.Thread]++
					}
					if u.DMiss {
						wantDM[u.Thread]++
					}
					if u.LongMiss {
						wantLL[u.Thread]++
					}
				}
				for tid := range s.threads {
					ts := &s.threads[tid]
					if ts.brcount != wantBr[tid] || ts.dmisses != wantDM[tid] || ts.longLoads != wantLL[tid] {
						t.Fatalf("cycle %d thread %d: counters (br=%d dm=%d ll=%d), recount (br=%d dm=%d ll=%d)",
							s.Cycles(), tid, ts.brcount, ts.dmisses, ts.longLoads,
							wantBr[tid], wantDM[tid], wantLL[tid])
					}
				}
			}
		})
	}
}

// TestStallGatesLongLoadThreads checks the STALL gate end-to-end: while a
// thread has an outstanding long-latency load it must never be selected
// for fetch or prediction.
func TestStallGatesLongLoadThreads(t *testing.T) {
	s := newPolicySim(t, config.Stall, 0x57A11)
	gated := 0
	for step := 0; step < 20_000; step++ {
		s.Cycle()
		for tid := range s.threads {
			if s.threads[tid].longLoads > 0 {
				gated++
				if s.fetchEligible(tid) {
					t.Fatalf("cycle %d: thread %d fetch-eligible with %d long loads outstanding",
						s.Cycles(), tid, s.threads[tid].longLoads)
				}
				if s.predictEligible(tid) {
					t.Fatalf("cycle %d: thread %d predict-eligible with a long load outstanding", s.Cycles(), tid)
				}
			}
		}
	}
	if gated == 0 {
		t.Fatal("no thread was ever gated; test is vacuous")
	}
}

// TestFlushPoolAndFreeListInvariants re-runs the whole-pipeline aliasing
// invariants under the FLUSH policy, whose replay queue is a brand-new
// container that can reach uops and pin fetch requests.
func TestFlushPoolAndFreeListInvariants(t *testing.T) {
	s := newPolicySim(t, config.Flush, 0xA11A5)
	var pinned []*ftq.Request
	sawReplay := false
	for step := 0; step < 200; step++ {
		s.RunCycles(100)
		live := s.liveUOps()
		for _, u := range s.freeUOps {
			if where, ok := live[u]; ok {
				t.Fatalf("cycle %d: free list holds uop still referenced by %s", s.Cycles(), where)
			}
		}
		pinned = pinned[:0]
		for u, where := range live {
			if where == "replay" {
				sawReplay = true
				if !u.Flushed || u.Squashed {
					t.Fatalf("cycle %d: replay queue holds a uop with Flushed=%v Squashed=%v",
						s.Cycles(), u.Flushed, u.Squashed)
				}
			}
			if u.Req == nil {
				continue
			}
			if u.Squashed {
				t.Fatalf("cycle %d: squashed uop in %s still holds a request reference", s.Cycles(), where)
			}
			if !u.Req.Live() {
				t.Fatalf("cycle %d: uop in %s points into a pooled request", s.Cycles(), where)
			}
			pinned = append(pinned, u.Req)
		}
		if err := s.fe.CheckPoolInvariants(pinned...); err != nil {
			t.Fatalf("cycle %d: %v", s.Cycles(), err)
		}
	}
	if !sawReplay {
		t.Fatal("replay queue never observed non-empty; invariants untested")
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("no flushes happened; flush path untested")
	}
}
