// Package core implements the cycle-level SMT processor simulator: a
// 9-stage pipeline with the decoupled front-end of the paper (prediction
// stage -> FTQs -> fetch stage) feeding a shared out-of-order back-end
// (decode/rename, shared ROB and issue queues), with trace-driven
// wrong-path execution and the full SMT fetch-policy family (ICOUNT, RR,
// BRCOUNT, MISSCOUNT, IQPOSN, STALL, FLUSH) selecting which threads fetch
// each cycle.
//
// The cycle loop is allocation-free in steady state: uops come from a
// per-simulator free list recycled at commit and (after a two-cycle
// quarantine) at squash, the fetch and decode buffers are ring buffers, and
// every per-cycle scratch structure is reused.
package core

import (
	"fmt"

	"smtfetch/internal/cache"
	"smtfetch/internal/config"
	"smtfetch/internal/fetch"
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
	"smtfetch/internal/pipeline"
	"smtfetch/internal/prog"
	"smtfetch/internal/stats"
)

// ringBits sizes the per-thread dependence-lookup ring (must exceed the
// maximum in-flight window plus the maximum dependence distance).
const ringBits = 12

// threadState retains pooled uops (pendingFlush, replay, ring) by design:
// flushed uops stay live until replayed, and the dependence ring is
// identity-validated on every read, so stale pointers are harmless.
//
//smtfetch:poolowner
type threadState struct {
	icount             int
	predictStallUntil  uint64
	icacheBlockedUntil uint64
	// Fetch-policy signals beyond ICOUNT, maintained incrementally so no
	// policy ever scans the pipeline: unresolved branches in flight
	// (BRCOUNT), outstanding D-cache misses (MISSCOUNT), and outstanding
	// long-latency loads (the STALL/FLUSH gate).
	brcount   int
	dmisses   int
	longLoads int
	// pendingFlush is the oldest long-latency load detected this cycle
	// under the FLUSH policy; flushStage consumes it.
	pendingFlush *pipeline.UOp //smtfetch:transient intra-cycle only; Snapshot refuses mid-cycle state, so always nil at a cycle boundary
	// replay holds uops removed by a FLUSH event, in program order, from
	// replayPos on; they re-enter the fetch buffer once the triggering
	// load's miss resolves. Flushed uops keep their fetch-request
	// references, so they appear in no other pipeline structure but are
	// still live.
	replay    []*pipeline.UOp
	replayPos int
	// ring resolves dependence distances: PathSeq -> producing uop. Entries
	// may point at uops that have since been recycled; depReady validates
	// identity (thread, path kind, PathSeq) before trusting one.
	ring [1 << ringBits]*pipeline.UOp
}

// Sim is one simulated SMT processor executing a fixed set of threads.
//
// Sim is the uop pool's root owner: freeUOps/uopSlab are the free list and
// arena, limboCur/limboOld the recycling quarantine, and
// execList/pendingDecode/flushBatch/flushTail per-cycle working sets that
// drop squashed entries lazily. CheckInvariants walks all of them.
//
//smtfetch:poolowner
type Sim struct {
	cfg  *config.Config
	fe   *fetch.FrontEnd
	hier *cache.Hierarchy
	lat  isa.LatencyTable //smtfetch:transient construction-time latency table
	st   *stats.Stats

	rob     *pipeline.ROB
	iqs     [pipeline.NumQueues]*pipeline.IssueQueue
	intRegs *pipeline.RegFile
	fpRegs  *pipeline.RegFile
	intFUs  *pipeline.FUPool //smtfetch:transient per-cycle issue budget self-resets on the next TryIssue
	lsFUs   *pipeline.FUPool //smtfetch:transient per-cycle issue budget self-resets on the next TryIssue
	fpFUs   *pipeline.FUPool //smtfetch:transient per-cycle issue budget self-resets on the next TryIssue

	fetchBuf      *pipeline.UOpRing
	frontPipe     *pipeline.UOpRing
	execList      []*pipeline.UOp
	pendingDecode []*pipeline.UOp

	// freeUOps is the uop free list. Squashed uops pass through a
	// two-cycle limbo quarantine first, because execList and pendingDecode
	// drop squashed entries lazily on their next scan. uopSlab is the
	// current allocation block: new uops are created uopSlabSize at a time
	// so working-set growth costs one heap allocation per slab.
	freeUOps []*pipeline.UOp //smtfetch:transient pool free list; allocUOp zero-resets, population is invisible
	uopSlab  []pipeline.UOp  //smtfetch:transient allocation block backing the pool
	limboCur []*pipeline.UOp //smtfetch:transient squashed-uop quarantine, canonicalized out of the stream
	limboOld []*pipeline.UOp //smtfetch:transient squashed-uop quarantine, canonicalized out of the stream

	// Reusable per-cycle scratch: thread order, policy priority keys, and
	// the fetch-stage bank-conflict bitmask.
	orderBuf  []int  //smtfetch:transient per-cycle scratch, recomputed before first use
	keyBuf    []int  //smtfetch:transient per-cycle scratch, recomputed before first use
	usedBanks uint64 //smtfetch:transient per-cycle scratch, recomputed before first use
	// iqposnBuf holds the per-thread issue-queue head-proximity penalty,
	// recomputed each cycle under the IQPOSN policy only.
	iqposnBuf []int //smtfetch:transient per-cycle scratch, recomputed before first use
	// flushBatch/flushTail are FLUSH-policy scratch: the uops collected by
	// the current flush event, and the surviving tail of an older replay
	// queue being merged behind them.
	flushBatch []*pipeline.UOp //smtfetch:transient per-flush-event scratch
	flushTail  []*pipeline.UOp //smtfetch:transient per-flush-event scratch

	fetchEligible   func(t int) bool //smtfetch:transient policy closure, rebound by SetPolicy
	predictEligible func(t int) bool //smtfetch:transient policy closure, rebound by SetPolicy

	// Policy-derived switches, fixed at construction: gate fetch on
	// outstanding long-latency loads (STALL/FLUSH), flush on detection
	// (FLUSH), recompute IQ positions (IQPOSN).
	gateLongLoads bool //smtfetch:transient policy switch derived from cfg, rebound by SetPolicy
	flushPolicy   bool //smtfetch:transient policy switch derived from cfg, rebound by SetPolicy
	needIQPosn    bool //smtfetch:transient policy switch derived from cfg, rebound by SetPolicy
	// longLatThreshold classifies a load as long-latency when its
	// completion lies at least this many cycles out (the memory latency:
	// only L2 misses reach it).
	longLatThreshold uint64 //smtfetch:transient derived from configured memory latency

	threads  []threadState
	nthreads int

	// drainMode gates the prediction stage off so the pipeline empties
	// while consuming (never discarding) FTQ contents; Drain in state.go
	// sets it around its cycle loop.
	drainMode bool //smtfetch:transient set only inside Drain around its cycle loop

	now  uint64
	gseq uint64

	frontLatency int //smtfetch:transient derived from cfg at construction
	mshrCap      int //smtfetch:transient derived from cfg at construction
	inFlightData int //smtfetch:transient per-cycle scratch, recomputed before first use
}

// New builds a simulator for the given configuration and per-thread
// programs. seed makes the whole run deterministic.
//
// New is pool machinery: it pre-sizes every uop-retaining buffer to its
// pipeline bound so the steady state never grows them.
//
//smtfetch:poolowner
func New(cfg config.Config, programs []*prog.Program, seed uint64) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(programs) == 0 {
		return nil, fmt.Errorf("core: no programs")
	}
	if len(programs) > cfg.MaxThreads {
		return nil, fmt.Errorf("core: %d threads exceeds MaxThreads=%d", len(programs), cfg.MaxThreads)
	}
	n := len(programs)
	s := &Sim{
		cfg:      &cfg,
		hier:     cache.NewHierarchy(&cfg),
		lat:      isa.DefaultLatencies(),
		rob:      pipeline.NewROB(cfg.ROBSize, n),
		intRegs:  pipeline.NewRegFile(cfg.IntRegs, 32*n),
		fpRegs:   pipeline.NewRegFile(cfg.FPRegs, 32*n),
		intFUs:   pipeline.NewFUPool(cfg.IntUnits),
		lsFUs:    pipeline.NewFUPool(cfg.LSUnits),
		fpFUs:    pipeline.NewFUPool(cfg.FPUnits),
		threads:  make([]threadState, n),
		nthreads: n,

		fetchBuf:  pipeline.NewUOpRing(cfg.FetchBufferSize),
		frontPipe: pipeline.NewUOpRing(2 * cfg.FetchBufferSize),
		orderBuf:  make([]int, 0, n),
		keyBuf:    make([]int, n),

		frontLatency: cfg.DecodeStages + cfg.RenameStages,
		mshrCap:      cfg.DMSHRs * n,

		gateLongLoads:    cfg.FetchPolicy.Policy == config.Stall || cfg.FetchPolicy.Policy == config.Flush,
		flushPolicy:      cfg.FetchPolicy.Policy == config.Flush,
		needIQPosn:       cfg.FetchPolicy.Policy == config.IQPosn,
		longLatThreshold: uint64(cfg.MemLatency),
	}
	if s.needIQPosn {
		s.iqposnBuf = make([]int, n)
	}
	if s.flushPolicy {
		// A thread can never have more in-flight uops than the ROB plus
		// the front-end buffers hold; pre-sizing to that bound keeps the
		// flush and replay paths allocation-free from the first event.
		bound := cfg.ROBSize + 3*cfg.FetchBufferSize
		s.flushBatch = make([]*pipeline.UOp, 0, bound)
		s.flushTail = make([]*pipeline.UOp, 0, bound)
		for i := range s.threads {
			s.threads[i].replay = make([]*pipeline.UOp, 0, bound)
		}
	}
	s.fe = fetch.New(&cfg, programs, seed)
	s.iqs[pipeline.QInt] = pipeline.NewIssueQueue(cfg.IntQueueSize)
	s.iqs[pipeline.QLoadStore] = pipeline.NewIssueQueue(cfg.LSQueueSize)
	s.iqs[pipeline.QFloat] = pipeline.NewIssueQueue(cfg.FPQueueSize)
	s.st = stats.New(n, cfg.FetchPolicy.Width)
	// Built once so the per-cycle Prioritize calls never allocate a
	// closure.
	s.fetchEligible = func(t int) bool {
		ts := &s.threads[t]
		if s.gateLongLoads && ts.longLoads > 0 {
			return false
		}
		if ts.icacheBlockedUntil > s.now {
			return false
		}
		if ts.replayPos < len(ts.replay) {
			return true
		}
		return s.fe.Queue(t).Len() > 0
	}
	s.predictEligible = func(t int) bool {
		ts := &s.threads[t]
		if s.gateLongLoads && ts.longLoads > 0 {
			return false
		}
		if ts.predictStallUntil > s.now {
			return false
		}
		return s.fe.CanPredict(t)
	}
	return s, nil
}

// Stats returns the accumulated statistics.
func (s *Sim) Stats() *stats.Stats { return s.st }

// Config returns the simulated configuration.
func (s *Sim) Config() config.Config { return *s.cfg }

// Cycles returns the current cycle count.
func (s *Sim) Cycles() uint64 { return s.now }

// ResetStats replaces the statistics counters with fresh zeroed ones, so
// that everything accumulated so far (the warm-up phase) is excluded from
// subsequently reported numbers.
func (s *Sim) ResetStats() {
	s.st = stats.New(s.nthreads, s.cfg.FetchPolicy.Width)
}

// Run simulates until totalCommits instructions have committed or
// maxCycles cycles elapsed, and returns the statistics.
func (s *Sim) Run(totalCommits, maxCycles uint64) *stats.Stats {
	base := s.st.Committed
	limit := s.now + maxCycles
	for s.st.Committed-base < totalCommits && s.now < limit {
		s.Cycle()
	}
	return s.st
}

// RunCycles simulates exactly n cycles (used for cycle-based warm-up).
func (s *Sim) RunCycles(n uint64) *stats.Stats {
	for limit := s.now + n; s.now < limit; {
		s.Cycle()
	}
	return s.st
}

// Cycle advances the processor one cycle. Stages run back to front so a
// resource freed this cycle is usable next cycle, not instantaneously.
//
// Cycle is the zero-alloc root: it and everything it calls runs once per
// simulated cycle and must not allocate (see internal/lint).
//
//smtfetch:hotpath
func (s *Sim) Cycle() {
	s.recycleLimbo()
	s.commit()
	s.writeback()
	s.decodeResolve()
	s.issue()
	if s.flushPolicy {
		s.flushStage()
	}
	if s.needIQPosn {
		s.computeIQPosn()
	}
	s.dispatch()
	s.decodeAdvance()
	s.fetchStage()
	s.predictStage()
	s.now++
	s.st.Cycles++
}

// recycleLimbo returns quarantined squashed uops to the free list. A uop
// squashed during cycle N may still sit in execList or pendingDecode until
// their cycle-N+1 scans drop it, so it becomes reusable at the top of cycle
// N+2 — exactly when it leaves limboOld.
//
//smtfetch:hotpath
func (s *Sim) recycleLimbo() {
	for i, u := range s.limboOld {
		//smtfetch:allowalloc free-list capacity converges to the allocated uop population; growth stops once the pool is warm
		s.freeUOps = append(s.freeUOps, u)
		s.limboOld[i] = nil
	}
	s.limboOld, s.limboCur = s.limboCur, s.limboOld[:0]
}

// uopSlabSize is the uop arena's allocation granularity.
const uopSlabSize = 256

// allocUOp takes a uop from the free list (or the current slab when the
// list is empty) and resets it.
//
//smtfetch:poolowner
//smtfetch:hotpath
func (s *Sim) allocUOp() *pipeline.UOp {
	if n := len(s.freeUOps); n > 0 {
		u := s.freeUOps[n-1]
		s.freeUOps[n-1] = nil
		s.freeUOps = s.freeUOps[:n-1]
		*u = pipeline.UOp{}
		return u
	}
	if len(s.uopSlab) == 0 {
		//smtfetch:allowalloc slab growth: one heap allocation per uopSlabSize uops, only while the working set still grows
		s.uopSlab = make([]pipeline.UOp, uopSlabSize)
	}
	u := &s.uopSlab[0]
	s.uopSlab = s.uopSlab[1:]
	return u
}

// policyKeys gathers the per-thread priority values the configured fetch
// policy orders by (lower = higher priority) into the reused scratch slice.
// STALL and FLUSH order like ICOUNT; their gating happens in the
// eligibility callbacks.
//
//smtfetch:hotpath
func (s *Sim) policyKeys() []int {
	switch s.cfg.FetchPolicy.Policy {
	case config.BRCount:
		for i := range s.threads {
			s.keyBuf[i] = s.threads[i].brcount
		}
	case config.MissCount:
		for i := range s.threads {
			s.keyBuf[i] = s.threads[i].dmisses
		}
	case config.IQPosn:
		return s.iqposnBuf
	default:
		for i := range s.threads {
			s.keyBuf[i] = s.threads[i].icount
		}
	}
	return s.keyBuf
}

// computeIQPosn recomputes the IQPOSN penalty: for each issue queue, a
// thread's oldest entry at position p (0 = head) contributes cap-p — the
// closer a thread's work sits to a queue head, the longer it has clogged
// that queue, and the lower its fetch priority. Runs only under the IQPOSN
// policy, after issue has removed this cycle's issued entries.
//
//smtfetch:hotpath
func (s *Sim) computeIQPosn() {
	for i := range s.iqposnBuf {
		s.iqposnBuf[i] = 0
	}
	for _, q := range s.iqs {
		qcap := q.Cap()
		pos := 0
		var seen uint64
		for i, n := 0, q.Len(); i < n; i++ {
			u := q.At(i)
			if u.Squashed || u.Flushed {
				continue
			}
			if seen&(1<<uint(u.Thread)) == 0 {
				seen |= 1 << uint(u.Thread)
				s.iqposnBuf[u.Thread] += qcap - pos
			}
			pos++
		}
	}
}

// dropSignals removes u's contributions to the fetch-policy signal
// counters when it leaves the pipeline early (squash or flush). The
// normal-completion decrements happen at issue (ICOUNT) and writeback
// (BRCOUNT, MISSCOUNT, long-load gate).
//
//smtfetch:hotpath
func (s *Sim) dropSignals(ts *threadState, u *pipeline.UOp) {
	if u.InICount {
		u.InICount = false
		ts.icount--
	}
	if u.InBRCount {
		u.InBRCount = false
		ts.brcount--
	}
	if u.DMiss {
		u.DMiss = false
		ts.dmisses--
	}
	if u.LongMiss {
		u.LongMiss = false
		ts.longLoads--
	}
}

// ---------------------------------------------------------------- commit

//smtfetch:hotpath
func (s *Sim) commit() {
	budget := s.cfg.CommitWidth
	start := int(s.now % uint64(s.nthreads))
	for i := 0; i < s.nthreads && budget > 0; i++ {
		t := (start + i) % s.nthreads
		for budget > 0 {
			u := s.rob.Head(t)
			if u == nil || !u.Done {
				break
			}
			if u.Ghost {
				panic("core: ghost uop reached commit")
			}
			s.rob.PopHead(t)
			s.releaseReg(u)
			budget--
			s.st.Committed++
			s.st.PerThread[t].Committed++
			if u.IsBranch() || u.Info != nil {
				s.commitBranch(t, u)
			}
			// Commit is the uop's last use: it has left the ROB, the
			// issue queues, and the exec list; the dependence ring
			// validates identity before trusting its (possibly stale)
			// pointer. Dropping the fetch-request reference may return
			// the request to its pool.
			s.releaseRequest(u)
			//smtfetch:allowalloc free-list capacity converges to the allocated uop population; growth stops once the pool is warm
			s.freeUOps = append(s.freeUOps, u)
		}
	}
}

//smtfetch:hotpath
func (s *Sim) commitBranch(t int, u *pipeline.UOp) {
	s.fe.CommitBranch(t, &u.Instruction, u.Info)
	if u.BrKind == isa.CondBranch {
		s.st.CondBranches++
		s.st.PerThread[t].CondBranches++
	}
	if u.Info == nil {
		return
	}
	switch u.Info.Resolve {
	case ftq.ResolveExecute:
		if u.BrKind == isa.CondBranch {
			s.st.CondMispredicts++
			s.st.PerThread[t].CondMispredicts++
		}
	case ftq.ResolveDecode:
		s.st.TargetMisfetches++
	}
	if u.Info.StreamPredicted {
		s.st.StreamPredictions++
		if u.Info.Resolve != ftq.ResolveNone {
			s.st.StreamMisses++
		}
	}
	if u.Info.UsedRAS {
		s.st.RASPops++
		if u.Info.Resolve != ftq.ResolveNone {
			s.st.RASMispredicts++
		}
	}
}

// releaseRequest drops the uop's reference on the pooled fetch request
// carrying its branch metadata. After this, u.Info must never be read
// again: the request may be recycled into a different block.
//
//smtfetch:hotpath
func (s *Sim) releaseRequest(u *pipeline.UOp) {
	if u.Req != nil {
		u.Req.Release()
		u.Req = nil
		u.Info = nil
	}
}

//smtfetch:hotpath
func (s *Sim) releaseReg(u *pipeline.UOp) {
	if !u.HasDest || !u.Dispatched {
		return
	}
	if u.Class == isa.FPOp {
		s.fpRegs.Release()
	} else {
		s.intRegs.Release()
	}
}

// ------------------------------------------------------------- writeback

//smtfetch:hotpath
func (s *Sim) writeback() {
	out := s.execList[:0]
	for _, u := range s.execList {
		// Squashed uops were unaccounted at recovery; flushed ones at the
		// flush event. Both just drop out of the list here.
		if u.Squashed || u.Flushed {
			continue
		}
		if u.ReadyAt > s.now {
			//smtfetch:allowalloc in-place compaction: out aliases execList[:0], so append never exceeds the existing capacity
			out = append(out, u)
			continue
		}
		u.Done = true
		// Completion resolves the uop for the policy signals: a finished
		// branch is no longer unresolved, a finished load's miss is no
		// longer outstanding.
		ts := &s.threads[u.Thread]
		if u.InBRCount {
			u.InBRCount = false
			ts.brcount--
		}
		if u.DMiss {
			u.DMiss = false
			ts.dmisses--
		}
		if u.LongMiss {
			u.LongMiss = false
			ts.longLoads--
		}
		if u.Info != nil && u.Info.Resolve == ftq.ResolveExecute && !u.Ghost && !u.Recovered {
			u.Recovered = true
			s.recover(u, s.cfg.MispredictRedirectPenalty)
		}
	}
	for i := len(out); i < len(s.execList); i++ {
		s.execList[i] = nil
	}
	s.execList = out
}

// decodeResolve fires misfetch recoveries for branches whose wrongness is
// detectable at decode.
//
//smtfetch:hotpath
func (s *Sim) decodeResolve() {
	out := s.pendingDecode[:0]
	for _, u := range s.pendingDecode {
		if u.Squashed || u.Flushed || u.Recovered {
			continue
		}
		if u.DecodeAt > s.now {
			//smtfetch:allowalloc in-place compaction: out aliases pendingDecode[:0], so append never exceeds the existing capacity
			out = append(out, u)
			continue
		}
		u.Recovered = true
		s.recover(u, s.cfg.MisfetchPenalty)
	}
	for i := len(out); i < len(s.pendingDecode); i++ {
		s.pendingDecode[i] = nil
	}
	s.pendingDecode = out
}

// ---------------------------------------------------------------- issue

//smtfetch:hotpath
func (s *Sim) issue() {
	s.inFlightData = s.hier.InFlightData(s.now)
	for kind := 0; kind < pipeline.NumQueues; kind++ {
		q := s.iqs[kind]
		//smtfetch:allowalloc non-escaping closure: Scan calls it inline and does not retain it (escape gate verifies)
		q.Scan(func(u *pipeline.UOp) bool {
			if !s.depsReady(u) {
				return false
			}
			pool := s.poolFor(u.Class)
			if u.Class == isa.Load && s.inFlightData >= s.mshrCap {
				return false
			}
			if !pool.TryIssue(s.now) {
				return false
			}
			s.startExec(u)
			return true
		})
	}
}

//smtfetch:hotpath
func (s *Sim) poolFor(c isa.Class) *pipeline.FUPool {
	switch c {
	case isa.Load, isa.Store:
		return s.lsFUs
	case isa.FPOp:
		return s.fpFUs
	default:
		return s.intFUs
	}
}

//smtfetch:hotpath
func (s *Sim) startExec(u *pipeline.UOp) {
	u.Issued = true
	ts := &s.threads[u.Thread]
	if u.InICount {
		u.InICount = false
		ts.icount--
	}
	ready := s.now + uint64(s.lat[u.Class])
	switch u.Class {
	case isa.Load:
		res := s.hier.Data(s.now, u.EffAddr)
		s.st.DCacheAccesses++
		if res.TLBMiss {
			s.st.DTLBMisses++
		}
		if res.L1Miss {
			s.st.DCacheMisses++
			u.DMiss = true
			ts.dmisses++
			if !res.Merged {
				// A merged access rides an already-counted L2 request
				// and occupies no new MSHR.
				s.inFlightData++
				s.st.L2Accesses++
				if res.L2Miss {
					s.st.L2Misses++
				}
			}
		}
		// A completion at least a full memory latency out means the load
		// went to main memory (directly or merged onto an in-flight L2
		// miss): the long-latency signal the STALL and FLUSH policies
		// gate on.
		if res.Ready >= s.now+s.longLatThreshold {
			u.LongMiss = true
			ts.longLoads++
			if s.flushPolicy && (ts.pendingFlush == nil || u.GSeq < ts.pendingFlush.GSeq) {
				ts.pendingFlush = u
			}
		}
		ready = res.Ready
	case isa.Store:
		// Stores update cache state but retire through the store
		// buffer without stalling the pipeline.
		res := s.hier.Data(s.now, u.EffAddr)
		s.st.DCacheAccesses++
		if res.L1Miss {
			s.st.DCacheMisses++
			if !res.Merged {
				s.st.L2Accesses++
				if res.L2Miss {
					s.st.L2Misses++
				}
			}
		}
		ready = s.now + 1
	}
	u.ReadyAt = ready
	//smtfetch:allowalloc execList capacity converges to the in-flight (ROB) bound; growth stops once the pool is warm
	s.execList = append(s.execList, u)
}

// depsReady reports whether u's register inputs are available at s.now.
// Readiness is sticky: a producer that is done, squashed, recycled, or out
// of the window can never become unready again (PathSeq is monotonic, so a
// ring slot never reverts to the producer). Each satisfied dependence is
// therefore cleared to 0, so queued uops re-polled every cycle pay the
// ring lookup at most once per input.
//
//smtfetch:hotpath
func (s *Sim) depsReady(u *pipeline.UOp) bool {
	if u.Dep1 != 0 {
		if !s.depReady(u, u.Dep1) {
			return false
		}
		u.Dep1 = 0
	}
	if u.Dep2 != 0 {
		if !s.depReady(u, u.Dep2) {
			return false
		}
		u.Dep2 = 0
	}
	return true
}

//smtfetch:hotpath
func (s *Sim) depReady(u *pipeline.UOp, d uint16) bool {
	if d == 0 || uint64(d) > u.PathSeq {
		return true
	}
	want := u.PathSeq - uint64(d)
	p := s.threads[u.Thread].ring[want&((1<<ringBits)-1)]
	if p == nil || p.PathSeq != want || p.Thread != u.Thread || p.Ghost != u.Ghost || p.Squashed {
		// Producer already left the window, was recycled into a
		// different uop, or belongs to a stale path: its value is
		// architecturally available. (PathSeq is monotonic per thread
		// and per path kind, so a recycled uop can never impersonate
		// the producer.)
		return true
	}
	if !p.HasDest {
		return true
	}
	return p.Done && p.ReadyAt <= s.now
}

// -------------------------------------------------------------- dispatch

//smtfetch:hotpath
func (s *Sim) dispatch() {
	budget := s.cfg.DecodeWidth
	for budget > 0 && s.frontPipe.Len() > 0 {
		u := s.frontPipe.At(0)
		if u.Squashed {
			s.frontPipe.PopHead()
			continue
		}
		if s.now < u.EnterFront+uint64(s.frontLatency) {
			break
		}
		kind := pipeline.QueueKind(u.Class)
		if s.rob.Full() {
			s.st.StallROBFull++
			break
		}
		if s.iqs[kind].Full() {
			s.st.StallIQFull++
			break
		}
		if u.HasDest {
			rf := s.intRegs
			if u.Class == isa.FPOp {
				rf = s.fpRegs
			}
			if rf.Free() <= 0 {
				s.st.StallRegsFull++
				break
			}
			rf.Alloc()
		}
		s.rob.Dispatch(u)
		s.iqs[kind].Add(u)
		u.Dispatched = true
		s.frontPipe.PopHead()
		budget--
	}
}

// decodeAdvance moves uops from the fetch buffer into the decode/rename
// pipe.
//
//smtfetch:hotpath
func (s *Sim) decodeAdvance() {
	budget := s.cfg.DecodeWidth
	for budget > 0 && s.fetchBuf.Len() > 0 {
		u := s.fetchBuf.PopHead()
		if u.Squashed {
			continue
		}
		u.EnterFront = s.now
		u.DecodeAt = s.now + uint64(s.cfg.DecodeStages)
		if u.Info != nil && u.Info.Resolve == ftq.ResolveDecode && !u.Ghost {
			//smtfetch:allowalloc pendingDecode capacity converges to the decode-pipe bound; growth stops once the pool is warm
			s.pendingDecode = append(s.pendingDecode, u)
		}
		s.frontPipe.Push(u)
		budget--
	}
}

// ------------------------------------------------------------ fetch stage

//smtfetch:hotpath
func (s *Sim) fetchStage() {
	room := s.cfg.FetchBufferSize - s.fetchBuf.Len()
	if room <= 0 {
		s.st.FetchBufStalls++
		return
	}
	width := s.cfg.FetchPolicy.Width
	if room < width {
		width = room
	}

	order := fetch.PrioritizeInto(s.orderBuf, s.cfg.FetchPolicy.Policy, s.policyKeys(), s.fetchEligible, s.now, s.cfg.FetchPolicy.Threads)
	s.orderBuf = order[:0]
	// Count an attempted fetch cycle also when every eligible thread is
	// blocked on the I-cache (the fetch unit had requests but delivered
	// nothing).
	attempted := len(order) > 0
	if !attempted {
		for t := 0; t < s.nthreads; t++ {
			if s.fe.Queue(t).Len() > 0 && s.threads[t].icacheBlockedUntil > s.now {
				attempted = true
				break
			}
		}
	}
	if !attempted {
		return
	}

	delivered := 0
	s.usedBanks = 0
	for _, t := range order {
		if delivered >= width {
			break
		}
		n := s.fetchFromThread(t, width-delivered)
		delivered += n
	}
	s.st.FetchCycles++
	if delivered < len(s.st.FetchHist) {
		s.st.FetchHist[delivered]++
	} else {
		s.st.FetchHist[len(s.st.FetchHist)-1]++
	}
	s.st.Fetched += uint64(delivered)
}

// fetchFromThread delivers up to budget instructions from thread t's FTQ
// head request, honouring cache-line supply limits and bank conflicts
// (tracked in the s.usedBanks bitmask). It returns the number of
// instructions delivered.
//
//smtfetch:hotpath
func (s *Sim) fetchFromThread(t, budget int) int {
	ts := &s.threads[t]
	if ts.replayPos < len(ts.replay) {
		// A FLUSH-policy replay in progress supplies the fetch unit
		// before any new block does: the flushed uops are older than
		// everything still queued in the FTQ.
		return s.replayFromThread(t, budget)
	}
	q := s.fe.Queue(t)
	req := q.Head()
	if req == nil {
		return 0
	}
	pc := req.NextPC()
	lineBytes := isa.Addr(s.cfg.L1I.LineBytes)
	line1 := pc &^ (lineBytes - 1)

	// A thread reads at most two consecutive lines per cycle (the
	// interleaved banks supply an aligned pair).
	span := req.Remaining()
	if span > budget {
		span = budget
	}
	endLimit := line1 + 2*lineBytes
	if end := pc + isa.Addr(span*isa.InstrSize); end > endLimit {
		span = int((endLimit - pc) / isa.InstrSize)
	}
	if span <= 0 {
		return 0
	}

	// Bank conflict check against lines already read this cycle.
	b1 := uint64(1) << uint(s.hier.L1I.Bank(line1))
	lastAddr := pc + isa.Addr((span-1)*isa.InstrSize)
	line2 := lastAddr &^ (lineBytes - 1)
	b2 := uint64(0)
	if line2 != line1 {
		b2 = uint64(1) << uint(s.hier.L1I.Bank(line2))
	}
	if s.usedBanks&(b1|b2) != 0 {
		return 0
	}

	// I-cache (and ITLB) access for the first line.
	s.st.ICacheAccesses++
	res := s.hier.Instr(s.now, line1)
	if res.TLBMiss {
		s.st.ITLBMisses++
	}
	if res.L1Miss {
		s.st.ICacheMisses++
		if !res.Merged {
			s.st.L2Accesses++
			if res.L2Miss {
				s.st.L2Misses++
			}
		}
		ts.icacheBlockedUntil = res.Ready
		s.st.PerThread[t].ICacheMissStall += res.Ready - s.now
		return 0
	}
	s.usedBanks |= b1
	if line2 != line1 {
		s.st.ICacheAccesses++
		res2 := s.hier.Instr(s.now, line2)
		if res2.L1Miss {
			s.st.ICacheMisses++
			if !res2.Merged {
				s.st.L2Accesses++
				if res2.L2Miss {
					s.st.L2Misses++
				}
			}
			// Deliver only the first line's portion; the thread
			// blocks until the second line arrives.
			span = int((line2 - pc) / isa.InstrSize)
			ts.icacheBlockedUntil = res2.Ready
			s.st.PerThread[t].ICacheMissStall += res2.Ready - s.now
			if span <= 0 {
				return 0
			}
		} else {
			s.usedBanks |= b2
		}
	}

	// Deliver span instructions into the fetch buffer.
	for i := 0; i < span; i++ {
		idx := req.Consumed + i
		s.gseq++
		u := s.allocUOp()
		u.Instruction = *req.Instr(idx)
		u.SavedDep1, u.SavedDep2 = u.Dep1, u.Dep2
		if bi := req.Branch(idx); bi != nil {
			// The uop pins the pooled request alive for as long as it
			// may read or train from the branch metadata.
			u.Info = bi
			u.Req = req
			req.Retain()
		}
		u.Thread = t
		u.Ghost = req.WrongPath
		u.GSeq = s.gseq
		s.deliver(ts, t, u)
	}
	req.Consumed += span
	if req.Remaining() == 0 {
		q.PopHead()
	}
	return span
}

// deliver finishes a uop's delivery into the fetch buffer — the
// bookkeeping shared by first fetch and FLUSH replay: fetch stamp, policy
// signal counts, dependence-ring registration, and the buffer push.
//
//smtfetch:hotpath
func (s *Sim) deliver(ts *threadState, t int, u *pipeline.UOp) {
	u.FetchedAt = s.now
	u.InICount = true
	ts.icount++
	if u.IsBranch() {
		u.InBRCount = true
		ts.brcount++
	}
	ts.ring[u.PathSeq&((1<<ringBits)-1)] = u
	s.fetchBuf.Push(u)
	s.st.PerThread[t].Fetched++
}

// replayFromThread redelivers up to budget flushed uops from thread t's
// replay queue into the fetch buffer, oldest first. Redelivered uops keep
// their identity (GSeq, PathSeq, fetch-request reference, ghost flag) but
// restart from the fetch stage: they flow through decode/rename and
// dispatch again, which is the FLUSH policy's refetch cost.
//
//smtfetch:hotpath
func (s *Sim) replayFromThread(t, budget int) int {
	ts := &s.threads[t]
	n := 0
	for ts.replayPos < len(ts.replay) && n < budget {
		u := ts.replay[ts.replayPos]
		ts.replay[ts.replayPos] = nil
		ts.replayPos++
		u.Flushed = false
		u.Dispatched = false
		u.Issued = false
		u.Done = false
		u.ReadyAt = 0
		// Restore the dependence distances the issue stage memoized away:
		// a producer flushed alongside this uop re-executes, and the
		// consumer must wait for it again.
		u.Dep1, u.Dep2 = u.SavedDep1, u.SavedDep2
		s.deliver(ts, t, u)
		s.st.Replayed++
		n++
	}
	if ts.replayPos == len(ts.replay) {
		ts.replay = ts.replay[:0]
		ts.replayPos = 0
	}
	return n
}

// ------------------------------------------------------------ flush stage

// flushStage performs the FLUSH policy's deallocation: for every thread on
// which issue detected a long-latency load this cycle, the load's younger
// in-flight uops are removed from the ROB, issue queues, and front-end
// buffers into the thread's replay queue, releasing their registers and
// ROB/queue slots to the other threads for the duration of the miss
// (Tullsen & Brown, MICRO 2001). The thread's fetch is already gated by
// the long-load signal; once the load completes, the replay queue drains
// back through the fetch buffer.
//
//smtfetch:hotpath
func (s *Sim) flushStage() {
	for t := range s.threads {
		ts := &s.threads[t]
		u := ts.pendingFlush
		if u == nil {
			continue
		}
		ts.pendingFlush = nil
		if u.Squashed || u.Flushed || u.Done {
			continue
		}
		s.flushThread(t, u)
	}
}

// flushThread moves every thread-t uop younger than u out of the pipeline
// into the replay queue, in program order. Unlike recovery this touches no
// front-end state: the FTQ, predictor histories, and trace cursor stay
// put, and the flushed uops keep their fetch-request references, so replay
// needs no re-prediction.
//
//smtfetch:hotpath
func (s *Sim) flushThread(t int, u *pipeline.UOp) {
	ts := &s.threads[t]
	batch := s.rob.FlushYounger(t, u.GSeq, s.flushBatch[:0])
	// FlushYounger pops the ROB tail youngest-first; reverse to program
	// order.
	for i, j := 0, len(batch)-1; i < j; i, j = i+1, j-1 {
		batch[i], batch[j] = batch[j], batch[i]
	}
	for _, q := range s.iqs {
		q.DropSquashed() // also drops entries just marked flushed
	}
	// Front-end buffers hold only uops younger than anything in the ROB,
	// and fetchBuf only uops younger than frontPipe's, so appending keeps
	// the batch in program order.
	batch = s.flushRing(s.frontPipe, t, u.GSeq, batch)
	batch = s.flushRing(s.fetchBuf, t, u.GSeq, batch)
	if len(batch) == 0 {
		s.flushBatch = batch
		return
	}
	for _, v := range batch {
		s.releaseReg(v)
		s.dropSignals(ts, v)
		s.st.FlushedUOps++
	}
	s.st.Flushes++
	// Merge ahead of any replay remainder from an earlier flush: a new
	// flush point is always older than previously flushed uops.
	if rem := ts.replay[ts.replayPos:]; len(rem) > 0 {
		//smtfetch:allowalloc replay/flushTail are pre-sized to the ROB+fetch-buffer bound at construction; appends never exceed it
		s.flushTail = append(s.flushTail[:0], rem...)
		//smtfetch:allowalloc replay/flushTail are pre-sized to the ROB+fetch-buffer bound at construction; appends never exceed it
		ts.replay = append(ts.replay[:0], batch...)
		//smtfetch:allowalloc replay/flushTail are pre-sized to the ROB+fetch-buffer bound at construction; appends never exceed it
		ts.replay = append(ts.replay, s.flushTail...)
	} else {
		//smtfetch:allowalloc replay/flushTail are pre-sized to the ROB+fetch-buffer bound at construction; appends never exceed it
		ts.replay = append(ts.replay[:0], batch...)
	}
	ts.replayPos = 0
	s.flushBatch = batch[:0]
}

// flushRing removes thread t's uops younger than gseq from a front-end
// ring into dst, marking them flushed. Execution-side lists (execList,
// pendingDecode) drop flushed entries lazily on their next scan, exactly
// like squashed ones; redelivery cannot race that scan because the
// long-load gate keeps the thread unfetchable for at least a full memory
// latency.
//
//smtfetch:hotpath
func (s *Sim) flushRing(r *pipeline.UOpRing, t int, gseq uint64, dst []*pipeline.UOp) []*pipeline.UOp {
	//smtfetch:allowalloc non-escaping closure: Filter calls it inline and does not retain it (escape gate verifies)
	r.Filter(func(v *pipeline.UOp) bool {
		if v.Thread == t && v.GSeq > gseq && !v.Squashed && !v.Flushed {
			v.Flushed = true
			dst = append(dst, v)
			return false
		}
		return true
	})
	return dst
}

// ---------------------------------------------------------- predict stage

//smtfetch:hotpath
func (s *Sim) predictStage() {
	if s.drainMode {
		return
	}
	order := fetch.PrioritizeInto(s.orderBuf, s.cfg.FetchPolicy.Policy, s.policyKeys(), s.predictEligible, s.now, s.cfg.FetchPolicy.Threads)
	s.orderBuf = order[:0]
	for _, t := range order {
		if n := s.fe.Predict(t); n > 0 {
			s.st.FetchBlocks++
			s.st.FetchBlockLenSum += uint64(n)
		}
	}
}

// -------------------------------------------------------------- recovery

// recover squashes everything younger than u on u's thread and redirects
// the front-end. Squashed uops go to limbo, not straight to the free list:
// execList and pendingDecode drop them lazily next cycle.
//
//smtfetch:hotpath
func (s *Sim) recover(u *pipeline.UOp, penalty int) {
	t := u.Thread
	ts := &s.threads[t]

	// Back end: ROB tail (covers issue queues and exec list via the
	// Squashed flag).
	start := len(s.limboCur)
	s.limboCur = s.rob.SquashYounger(t, u.GSeq, s.limboCur)
	for _, v := range s.limboCur[start:] {
		s.releaseReg(v)
		s.releaseRequest(v)
		s.dropSignals(ts, v)
		s.st.Squashed++
		s.st.PerThread[t].Squashed++
	}
	for _, q := range s.iqs {
		q.DropSquashed()
	}
	// Front end buffers.
	s.squashRing(s.fetchBuf, t, u.GSeq, ts)
	s.squashRing(s.frontPipe, t, u.GSeq, ts)
	// FLUSH-policy replay uops live outside every pipeline structure, so
	// recovery must squash them explicitly or they would be redelivered on
	// a dead path. They are always younger than the recovering uop: the
	// recovering uop is still in the pipeline, and a flush removed
	// everything younger than a load that is itself older than the whole
	// replay window.
	if ts.replayPos < len(ts.replay) {
		for _, v := range ts.replay[ts.replayPos:] {
			if v.GSeq <= u.GSeq {
				panic("core: replay entry older than recovery point")
			}
			v.Squashed = true
			v.Flushed = false
			s.releaseRequest(v)
			s.dropSignals(ts, v)
			s.st.Squashed++
			s.st.PerThread[t].Squashed++
			//smtfetch:allowalloc limbo lists converge to the in-flight uop bound; growth stops once the pool is warm
			s.limboCur = append(s.limboCur, v)
		}
	}
	ts.replay = ts.replay[:0]
	ts.replayPos = 0

	s.fe.Recover(t, u.Info, &u.Instruction, u.NextPC())
	ts.predictStallUntil = s.now + uint64(penalty)
	if ts.icacheBlockedUntil > s.now {
		// A wrong-path I-miss no longer blocks the thread.
		ts.icacheBlockedUntil = s.now
	}
}

// squashRing removes thread t's uops younger than gseq from a front-end
// ring, marking them squashed and quarantining them in limbo.
//
//smtfetch:hotpath
func (s *Sim) squashRing(r *pipeline.UOpRing, t int, gseq uint64, ts *threadState) {
	//smtfetch:allowalloc non-escaping closure: Filter calls it inline and does not retain it (escape gate verifies)
	r.Filter(func(v *pipeline.UOp) bool {
		if v.Thread == t && v.GSeq > gseq && !v.Squashed {
			v.Squashed = true
			s.releaseRequest(v)
			s.dropSignals(ts, v)
			s.st.Squashed++
			s.st.PerThread[t].Squashed++
			s.limboCur = append(s.limboCur, v)
			return false
		}
		return true
	})
}
