//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-exactness tests skip under it.
const raceEnabled = false
