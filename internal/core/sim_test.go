package core

import (
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/pipeline"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// newTestSim builds a small multi-threaded simulator with plenty of
// mispredictions and cache misses (2_MIX pairs an ILP benchmark with a
// memory-bound one).
func newTestSim(t testing.TB, engine config.Engine, seed uint64) *Sim {
	t.Helper()
	cfg := config.Default()
	cfg.Engine = engine
	w, err := bench.WorkloadByName("2_MIX")
	if err != nil {
		t.Fatal(err)
	}
	st := seed
	programs := make([]*prog.Program, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		programs[i] = prog.Build(bench.MustProfile(name), rng.SplitMix64(&st))
	}
	s, err := New(cfg, programs, rng.SplitMix64(&st))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// liveUOps collects every uop currently referenced by a pipeline container.
// fetchBuf, frontPipe, the ROB, and the FLUSH-policy replay queues
// partition the live set (issue queues, exec list and pendingDecode only
// hold uops that are also in the ROB or frontPipe); limbo uops are
// squashed but still draining out of the lazy containers.
func (s *Sim) liveUOps() map[*pipeline.UOp]string {
	live := map[*pipeline.UOp]string{}
	add := func(u *pipeline.UOp, where string) {
		if u != nil {
			live[u] = where
		}
	}
	for i := 0; i < s.fetchBuf.Len(); i++ {
		add(s.fetchBuf.At(i), "fetchBuf")
	}
	for i := 0; i < s.frontPipe.Len(); i++ {
		add(s.frontPipe.At(i), "frontPipe")
	}
	s.rob.Each(func(u *pipeline.UOp) { add(u, "rob") })
	for _, q := range s.iqs {
		q.Each(func(u *pipeline.UOp) { add(u, "iq") })
	}
	for _, u := range s.execList {
		add(u, "execList")
	}
	for _, u := range s.pendingDecode {
		add(u, "pendingDecode")
	}
	for _, u := range s.limboCur {
		add(u, "limboCur")
	}
	for _, u := range s.limboOld {
		add(u, "limboOld")
	}
	for t := range s.threads {
		ts := &s.threads[t]
		for _, u := range ts.replay[ts.replayPos:] {
			add(u, "replay")
		}
	}
	return live
}

// TestFreeListNeverHoldsLiveUOp runs the simulator and repeatedly checks
// that the uop free list is disjoint from every container that can still
// reach a uop — the aliasing bug class a recycling arena can introduce.
func TestFreeListNeverHoldsLiveUOp(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.StreamFetch} {
		s := newTestSim(t, eng, 0xA11A5)
		for step := 0; step < 200; step++ {
			s.RunCycles(100)
			live := s.liveUOps()
			seen := map[*pipeline.UOp]bool{}
			for _, u := range s.freeUOps {
				if where, ok := live[u]; ok {
					t.Fatalf("%v, cycle %d: free list holds uop still referenced by %s", eng, s.Cycles(), where)
				}
				if seen[u] {
					t.Fatalf("%v, cycle %d: uop appears twice in the free list", eng, s.Cycles())
				}
				seen[u] = true
			}
		}
		if s.Stats().Squashed == 0 {
			t.Fatalf("%v: no squashes happened; recycling path untested", eng)
		}
		if len(s.freeUOps) == 0 {
			t.Fatalf("%v: free list empty after run; recycling inert", eng)
		}
	}
}

// TestNoGhostCommits drives heavy wrong-path execution: commit() panics if
// a ghost uop ever reaches the ROB head after recovery, so surviving the
// run with progress is the assertion.
func TestNoGhostCommits(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch} {
		s := newTestSim(t, eng, 0x60057)
		st := s.Run(30_000, 2_000_000)
		if st.Committed < 30_000 {
			t.Fatalf("%v: only %d commits in 2M cycles", eng, st.Committed)
		}
		if st.Squashed == 0 {
			t.Fatalf("%v: no wrong-path work was squashed; recovery untested", eng)
		}
	}
}

// TestICountConsistency checks the ICOUNT policy's book-keeping invariant:
// each thread's icount equals the number of its in-flight uops still
// marked InICount (fetched but not yet issued or squashed).
func TestICountConsistency(t *testing.T) {
	s := newTestSim(t, config.GShareBTB, 0x1C0)
	for step := 0; step < 100; step++ {
		s.RunCycles(250)
		want := make([]int, s.nthreads)
		for u := range s.liveUOps() {
			if u.InICount {
				if u.Squashed {
					t.Fatalf("cycle %d: squashed uop still counted by ICOUNT", s.Cycles())
				}
				want[u.Thread]++
			}
		}
		for tid := range s.threads {
			if got := s.threads[tid].icount; got != want[tid] {
				t.Fatalf("cycle %d: thread %d icount = %d, want %d", s.Cycles(), tid, got, want[tid])
			}
		}
	}
}

// TestRecoveryDrainsToConsistency runs past many recoveries and then checks
// that no squashed uop is reachable from the ROB or issue queues (recovery
// must remove them immediately, not lazily).
func TestRecoveryDrainsToConsistency(t *testing.T) {
	s := newTestSim(t, config.GShareBTB, 0xDEC0)
	s.RunCycles(20_000)
	s.rob.Each(func(u *pipeline.UOp) {
		if u.Squashed {
			t.Fatal("squashed uop still in ROB")
		}
	})
	for _, q := range s.iqs {
		q.Each(func(u *pipeline.UOp) {
			if u.Squashed {
				t.Fatal("squashed uop still in an issue queue")
			}
		})
	}
	if s.Stats().Squashed == 0 {
		t.Fatal("run produced no squashes; test is vacuous")
	}
}

// TestResetStatsExcludesWarmup checks that ResetStats gives a clean slate:
// cycle and commit counters afterwards reflect only post-reset work.
func TestResetStatsExcludesWarmup(t *testing.T) {
	s := newTestSim(t, config.GShareBTB, 7)
	s.Run(5_000, 1_000_000)
	if s.Stats().Cycles == 0 || s.Stats().Committed < 5_000 {
		t.Fatal("warm-up phase did not run")
	}
	s.ResetStats()
	if c := s.Stats().Cycles; c != 0 {
		t.Fatalf("Cycles = %d right after ResetStats, want 0", c)
	}
	before := s.Cycles()
	st := s.RunCycles(1_234)
	if s.Cycles() != before+1_234 {
		t.Fatalf("RunCycles advanced %d cycles, want 1234", s.Cycles()-before)
	}
	if st.Cycles != 1_234 {
		t.Fatalf("post-reset Cycles = %d, want exactly the measured 1234", st.Cycles)
	}
	if st.Committed == 0 {
		t.Fatal("no commits during measurement")
	}
	for i := range st.PerThread {
		if st.PerThread[i].Committed > st.Committed {
			t.Fatalf("per-thread committed exceeds total after reset")
		}
	}
}

// TestDeterministicReplay runs the same configuration twice and requires
// identical cycle-by-cycle outcomes — the property every refactor of the
// hot loop must preserve.
func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		s := newTestSim(t, config.StreamFetch, 0xFEED)
		st := s.Run(20_000, 1_000_000)
		return s.Cycles(), st.Committed, st.Squashed
	}
	c1, m1, q1 := run()
	c2, m2, q2 := run()
	if c1 != c2 || m1 != m2 || q1 != q2 {
		t.Fatalf("replay diverged: (%d,%d,%d) vs (%d,%d,%d)", c1, m1, q1, c2, m2, q2)
	}
}
