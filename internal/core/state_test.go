package core

import (
	"bytes"
	"reflect"
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/ftq"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// newSnapSim is newTestSim with an explicit fetch policy. Building two
// simulators from the same seed yields identical programs, which is what
// the round-trip tests rely on.
func newSnapSim(t testing.TB, engine config.Engine, fp config.FetchPolicy, seed uint64) *Sim {
	t.Helper()
	cfg := config.Default()
	cfg.Engine = engine
	cfg.FetchPolicy = fp
	w, err := bench.WorkloadByName("2_MIX")
	if err != nil {
		t.Fatal(err)
	}
	st := seed
	programs := make([]*prog.Program, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		programs[i] = prog.Build(bench.MustProfile(name), rng.SplitMix64(&st))
	}
	s, err := New(cfg, programs, rng.SplitMix64(&st))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkPools verifies the request-pool invariants on s, pinning every
// request reachable from a live uop (the pool_test.go pattern).
func checkPools(t *testing.T, s *Sim, when string) {
	t.Helper()
	var pinned []*ftq.Request
	for u := range s.liveUOps() {
		if u.Req != nil && !u.Squashed {
			pinned = append(pinned, u.Req)
		}
	}
	if err := s.fe.CheckPoolInvariants(pinned...); err != nil {
		t.Fatalf("%s: %v", when, err)
	}
}

// TestSnapshotRestoreByteIdentical is the determinism contract behind
// warm-state checkpoints: restoring a snapshot onto a fresh simulator and
// running k more cycles must be byte-identical (snapshot bytes and
// statistics) to the original simulator running those same k cycles.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	engines := []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch}
	for _, eng := range engines {
		for _, pol := range config.Policies() {
			fp := config.FetchPolicy{Policy: pol, Threads: 2, Width: 8}
			a := newSnapSim(t, eng, fp, 0xC0FFEE)
			a.RunCycles(30_000)

			blob, err := a.Snapshot()
			if err != nil {
				t.Fatalf("%v/%v: snapshot: %v", eng, pol, err)
			}

			b := newSnapSim(t, eng, fp, 0xC0FFEE)
			if err := b.Restore(blob); err != nil {
				t.Fatalf("%v/%v: restore: %v", eng, pol, err)
			}
			checkPools(t, b, "after restore")

			// The restored simulator must serialize back to the same bytes.
			blob2, err := b.Snapshot()
			if err != nil {
				t.Fatalf("%v/%v: re-snapshot: %v", eng, pol, err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("%v/%v: snapshot not idempotent across restore (%d vs %d bytes)", eng, pol, len(blob), len(blob2))
			}

			a.RunCycles(20_000)
			b.RunCycles(20_000)
			if !reflect.DeepEqual(a.Stats(), b.Stats()) {
				t.Fatalf("%v/%v: continued stats diverge:\noriginal: %+v\nrestored: %+v", eng, pol, a.Stats(), b.Stats())
			}
			sa, err := a.Snapshot()
			if err != nil {
				t.Fatalf("%v/%v: final snapshot (original): %v", eng, pol, err)
			}
			sb, err := b.Snapshot()
			if err != nil {
				t.Fatalf("%v/%v: final snapshot (restored): %v", eng, pol, err)
			}
			if !bytes.Equal(sa, sb) {
				t.Fatalf("%v/%v: continued execution diverges (snapshot bytes differ)", eng, pol)
			}
			checkPools(t, b, "after continued run")
		}
	}
}

// TestSnapshotRoundTripFuzz is the model-based fuzz over the checkpoint
// machinery: random warm-up lengths and continuation lengths across all
// seven policies (FLUSH included, so replay queues are regularly in flight
// at snapshot time), asserting byte-identical continued execution and
// clean pool invariants after every restore.
func TestSnapshotRoundTripFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator runs; skipped with -short")
	}
	r := rng.New(0xF022)
	sawReplay := false
	for round := 0; round < 12; round++ {
		pol := config.Policies()[int(r.Uint64()%7)]
		fp := config.FetchPolicy{Policy: pol, Threads: 2, Width: 8}
		eng := []config.Engine{config.GShareBTB, config.GSkewFTB, config.StreamFetch}[int(r.Uint64()%3)]
		seed := r.Uint64()
		warm := 5_000 + r.Uint64()%40_000
		cont := 1_000 + r.Uint64()%15_000

		a := newSnapSim(t, eng, fp, seed)
		a.RunCycles(warm)
		for i := range a.threads {
			ts := &a.threads[i]
			if ts.replayPos < len(ts.replay) {
				sawReplay = true
			}
		}
		blob, err := a.Snapshot()
		if err != nil {
			t.Fatalf("round %d (%v/%v, warm %d): snapshot: %v", round, eng, pol, warm, err)
		}
		b := newSnapSim(t, eng, fp, seed)
		if err := b.Restore(blob); err != nil {
			t.Fatalf("round %d (%v/%v): restore: %v", round, eng, pol, err)
		}
		checkPools(t, b, "after restore")
		a.RunCycles(cont)
		b.RunCycles(cont)
		sa, erra := a.Snapshot()
		sb, errb := b.Snapshot()
		if erra != nil || errb != nil {
			t.Fatalf("round %d: final snapshots: %v / %v", round, erra, errb)
		}
		if !bytes.Equal(sa, sb) {
			t.Fatalf("round %d (%v/%v, warm %d, cont %d): continued execution diverges", round, eng, pol, warm, cont)
		}
		checkPools(t, b, "after continued run")
	}
	if !sawReplay {
		t.Log("fuzz never caught a FLUSH replay queue in flight at snapshot time; coverage is reduced")
	}
}

// TestSnapshotRejectsMismatch covers the envelope validation: wrong
// configuration, wrong thread count, truncation, and trailing garbage all
// fail with errors instead of corrupting the receiver.
func TestSnapshotRejectsMismatch(t *testing.T) {
	fp := config.Default().FetchPolicy
	a := newSnapSim(t, config.GShareBTB, fp, 0xD00D)
	a.RunCycles(5_000)
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Different engine => different cfgHash.
	b := newSnapSim(t, config.StreamFetch, fp, 0xD00D)
	if err := b.Restore(blob); err == nil {
		t.Fatal("restore onto a different configuration succeeded")
	}

	// Truncated stream.
	c := newSnapSim(t, config.GShareBTB, fp, 0xD00D)
	if err := c.Restore(blob[:len(blob)/2]); err == nil {
		t.Fatal("restore of a truncated snapshot succeeded")
	}

	// Trailing garbage.
	d := newSnapSim(t, config.GShareBTB, fp, 0xD00D)
	if err := d.Restore(append(append([]byte{}, blob...), 0xAB)); err == nil {
		t.Fatal("restore with trailing bytes succeeded")
	}

	// Bad magic.
	e := newSnapSim(t, config.GShareBTB, fp, 0xD00D)
	bad := append([]byte{}, blob...)
	bad[0] ^= 0xFF
	if err := e.Restore(bad); err == nil {
		t.Fatal("restore with corrupt magic succeeded")
	}

	// A good blob still restores after all those rejections built fresh sims.
	f := newSnapSim(t, config.GShareBTB, fp, 0xD00D)
	if err := f.Restore(blob); err != nil {
		t.Fatalf("restore of a valid snapshot failed: %v", err)
	}
}

// TestSetPolicyForksDeterministically is the warm-fork contract: two
// simulators restored from one canonical-policy snapshot and switched to
// the same target policy must execute identically, and switching must
// activate the policy's machinery (FLUSH flushes, IQPOSN recomputation).
func TestSetPolicyForksDeterministically(t *testing.T) {
	canon := config.Default().FetchPolicy // ICOUNT canonical
	a := newSnapSim(t, config.GShareBTB, canon, 0xF0F0)
	a.RunCycles(30_000)
	blob, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	for _, pol := range config.Policies() {
		fp := config.FetchPolicy{Policy: pol, Threads: canon.Threads, Width: canon.Width}
		var snaps [][]byte
		var flushes uint64
		for rep := 0; rep < 2; rep++ {
			s := newSnapSim(t, config.GShareBTB, canon, 0xF0F0)
			if err := s.Restore(blob); err != nil {
				t.Fatalf("%v: restore: %v", pol, err)
			}
			if err := s.SetPolicy(fp); err != nil {
				t.Fatalf("%v: SetPolicy: %v", pol, err)
			}
			s.ResetStats()
			s.RunCycles(20_000)
			checkPools(t, s, "after forked run")
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatalf("%v: snapshot after fork: %v", pol, err)
			}
			snaps = append(snaps, snap)
			flushes = s.Stats().Flushes
		}
		if !bytes.Equal(snaps[0], snaps[1]) {
			t.Fatalf("%v: two forks from the same snapshot diverged", pol)
		}
		if pol == config.Flush && flushes == 0 {
			t.Logf("FLUSH fork saw no flush events in 20k cycles (machinery untested this run)")
		}
	}

	// Bandwidth changes must be rejected.
	s := newSnapSim(t, config.GShareBTB, canon, 0xF0F0)
	if err := s.SetPolicy(config.FetchPolicy{Policy: config.ICount, Threads: canon.Threads + 1, Width: canon.Width}); err == nil {
		t.Fatal("SetPolicy accepted a fetch-bandwidth change")
	}
}

// TestDrainFastForwardDeterministic covers the sampled-simulation
// machinery: drain empties the pipeline completely, functional
// fast-forward advances the committed trace without cycles or statistics,
// and the detail/skip alternation is deterministic across runs.
func TestDrainFastForwardDeterministic(t *testing.T) {
	for _, eng := range []config.Engine{config.GShareBTB, config.StreamFetch} {
		var snaps [][]byte
		for rep := 0; rep < 2; rep++ {
			s := newSnapSim(t, eng, config.Default().FetchPolicy, 0xABCD)
			for phase := 0; phase < 3; phase++ {
				s.RunCycles(5_000)
				if err := s.Drain(1_000_000); err != nil {
					t.Fatalf("%v: drain: %v", eng, err)
				}
				if !s.Drained() {
					t.Fatalf("%v: Drain returned with work in flight", eng)
				}
				if len(s.liveUOps()) != 0 {
					t.Fatalf("%v: drained pipeline still references uops", eng)
				}
				cyclesBefore, committedBefore := s.Cycles(), s.Stats().Committed
				if err := s.FastForward(40_000); err != nil {
					t.Fatalf("%v: fast-forward: %v", eng, err)
				}
				if s.Cycles() != cyclesBefore || s.Stats().Committed != committedBefore {
					t.Fatalf("%v: functional fast-forward advanced the clock or committed instructions", eng)
				}
				checkPools(t, s, "after fast-forward")
			}
			s.RunCycles(5_000)
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, snap)
		}
		if !bytes.Equal(snaps[0], snaps[1]) {
			t.Fatalf("%v: drain/fast-forward sequence is not deterministic", eng)
		}
	}
}

// BenchmarkWarmForkedCell measures the per-cell cost of the warm-fork
// path: restore a 50k-cycle warmed snapshot, switch policy, and run a
// short measurement — the work RunCells does per cell instead of
// re-warming. Tracked in the benchmark baselines next to BenchmarkCycle*.
func BenchmarkWarmForkedCell(b *testing.B) {
	build := func() *Sim {
		cfg := config.Default()
		cfg.Engine = config.GShareBTB
		// Warm under canonical ICOUNT at the target 2.8 shape — SetPolicy
		// can swap the heuristic but never the bandwidth shape.
		cfg.FetchPolicy = config.ICount28
		w, err := bench.WorkloadByName("4_MIX")
		if err != nil {
			b.Fatal(err)
		}
		st := uint64(0xB5EED)
		programs := make([]*prog.Program, len(w.Benchmarks))
		for i, name := range w.Benchmarks {
			programs[i] = prog.Build(bench.MustProfile(name), rng.SplitMix64(&st))
		}
		s, err := New(cfg, programs, rng.SplitMix64(&st))
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	warm := build()
	warm.Run(50_000, 1_000_000)
	blob, err := warm.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	fp := config.FetchPolicy{Policy: config.RoundRobin, Threads: 2, Width: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := build()
		if err := s.Restore(blob); err != nil {
			b.Fatal(err)
		}
		if err := s.SetPolicy(fp); err != nil {
			b.Fatal(err)
		}
		s.ResetStats()
		s.Run(5_000, 100_000)
	}
}
