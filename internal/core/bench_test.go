package core

import (
	"testing"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
)

// newBenchSim builds a warmed-up 4-thread MIX simulator: the workload the
// paper's Figure 7 analysis centres on, and a realistic mix of I-cache
// pressure, D-cache misses, and mispredictions for the hot loop.
func newBenchSim(tb testing.TB, engine config.Engine) *Sim {
	return newBenchSimPolicy(tb, engine, config.Default().FetchPolicy)
}

func newBenchSimPolicy(tb testing.TB, engine config.Engine, fp config.FetchPolicy) *Sim {
	cfg := config.Default()
	cfg.Engine = engine
	cfg.FetchPolicy = fp
	w, err := bench.WorkloadByName("4_MIX")
	if err != nil {
		tb.Fatal(err)
	}
	st := uint64(0xB5EED)
	programs := make([]*prog.Program, len(w.Benchmarks))
	for i, name := range w.Benchmarks {
		p, err := bench.Profile(name)
		if err != nil {
			tb.Fatal(err)
		}
		programs[i] = prog.Build(p, rng.SplitMix64(&st))
	}
	s, err := New(cfg, programs, rng.SplitMix64(&st))
	if err != nil {
		tb.Fatal(err)
	}
	// Warm caches, predictors, and internal buffers so the measured loop
	// reflects steady state, not cold-start allocation.
	s.Run(50_000, 1_000_000)
	return s
}

// BenchmarkCycle measures the simulator's hot loop: one call per simulated
// cycle. allocs/op is the headline number — the cycle loop is required to be
// allocation-free in steady state.
func BenchmarkCycle(b *testing.B) {
	s := newBenchSim(b, config.GShareBTB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cycle()
	}
}

// BenchmarkCycleStream is the same loop under the stream fetch engine,
// whose longer fetch blocks stress the fetch buffer and dependence ring
// differently.
func BenchmarkCycleStream(b *testing.B) {
	s := newBenchSim(b, config.StreamFetch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cycle()
	}
}

// BenchmarkCycleFTB is the same loop under the gskew+FTB engine, whose
// spanned fetch blocks exercise the embedded-divergence and FTB training
// paths the other two engines never reach.
func BenchmarkCycleFTB(b *testing.B) {
	s := newBenchSim(b, config.GSkewFTB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cycle()
	}
}

// BenchmarkCycleFlush is the same loop under the FLUSH fetch policy, whose
// flush/replay machinery is the most stateful policy path; it must stay
// allocation-free like the rest of the cycle loop.
func BenchmarkCycleFlush(b *testing.B) {
	s := newBenchSimPolicy(b, config.GShareBTB,
		config.FetchPolicy{Policy: config.Flush, Threads: 2, Width: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Cycle()
	}
}
