package cluster

import (
	"hash/fnv"
	"sort"

	"smtfetch/internal/experiment"
)

// rendezvousScore is the highest-random-weight score of (worker, key):
// FNV-64a over the worker URL and the routing key with a separator that
// cannot appear in a URL authority. Each worker scores every key
// independently, so adding or removing a worker reorders nothing between
// the surviving workers — a new worker only takes the keys it now scores
// highest on (its own fair share), which keeps worker caches warm across
// fleet changes.
func rendezvousScore(workerURL, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerURL))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 finalizes the FNV sum with a SplitMix64-style avalanche. Raw FNV
// is byte-sequential: two (worker, key) pairs sharing a long common
// suffix keep correlated scores, which in rendezvous ranking turns into
// badly skewed shards (measurably: one worker of three owning zero cells
// of a 60-cell grid). The finalizer spreads every input bit across the
// whole score, restoring the near-uniform split HRW assumes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rank orders the fleet for key: primary owner first, then the fallback
// chain a re-dispatch walks when the owner is dead or failing. Ties (a
// 64-bit hash collision) break on URL so the order is always total.
func (co *Coordinator) rank(key string) []*worker {
	ranked := make([]*worker, len(co.workers))
	copy(ranked, co.workers)
	scores := make(map[*worker]uint64, len(ranked))
	for _, wk := range ranked {
		scores[wk] = rendezvousScore(wk.url, key)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := scores[ranked[i]], scores[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i].url < ranked[j].url
	})
	return ranked
}

// routingKey selects what a cell is sharded by. Plain sweeps route by the
// cell key, spreading the grid evenly. Warm-fork sweeps route by the
// group's warm key instead: every cell of a (workload, engine, shape,
// seed) warm group must land on ONE worker so the group's checkpoint is
// built once, in that worker's snapshot tier, rather than once per
// worker the group's cells happen to scatter across.
func routingKey(sw *experiment.Sweep, c experiment.Cell) string {
	if sw.WarmFork != experiment.WarmForkOff {
		return "warm/" + sw.WarmKey(c)
	}
	return c.Key()
}
