package clustertest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"smtfetch/internal/cluster"
	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

// Worker is one in-process sweep server and its HTTP listener.
type Worker struct {
	Server *server.Server
	HTTP   *httptest.Server
	URL    string
}

// CacheStats snapshots the worker's result-cache counters — the
// accounting tests use to prove "no cell simulated twice": every
// simulation is exactly one cache miss on exactly one worker.
func (w *Worker) CacheStats() server.CacheStats { return w.Server.CacheStats() }

// Cluster is a coordinator fronting N in-process workers, with all
// coordinator→worker traffic routed through a fault-injecting Transport.
// Requests TO the coordinator (what a `sweep -server` client sends) use
// a plain client and are never faulted: tests script worker failures and
// assert the coordinator still answers perfectly.
type Cluster struct {
	Transport   *Transport
	Coordinator *cluster.Coordinator
	HTTP        *httptest.Server
	URL         string
	Workers     []*Worker
}

// Options tunes the harness; the zero value works for most tests.
type Options struct {
	// Worker configures each in-process sweep server.
	Worker server.Config
	// Cluster configures the coordinator. Workers and HTTPClient are
	// overwritten by the harness; everything else passes through — tests
	// needing a pinned probe-backoff schedule inject Cluster.Now.
	Cluster cluster.Config
}

// Start builds n workers and a coordinator over them, all in-process,
// and registers cleanup with tb. The coordinator's HTTP client is wired
// through the returned Transport, so faults scripted on it hit exactly
// the coordinator→worker path.
func Start(tb testing.TB, n int, opts Options) *Cluster {
	tb.Helper()
	if n < 1 {
		tb.Fatalf("clustertest: need at least 1 worker, got %d", n)
	}
	c := &Cluster{Transport: NewTransport(nil)}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		srv, err := server.New(opts.Worker)
		if err != nil {
			tb.Fatalf("clustertest: worker %d: %v", i, err)
		}
		ts := httptest.NewServer(srv)
		tb.Cleanup(ts.Close)
		c.Workers = append(c.Workers, &Worker{Server: srv, HTTP: ts, URL: ts.URL})
		urls = append(urls, ts.URL)
	}

	cfg := opts.Cluster
	cfg.Workers = urls
	cfg.HTTPClient = &http.Client{Transport: c.Transport, Timeout: time.Minute}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Millisecond
	}
	co, err := cluster.New(cfg)
	if err != nil {
		tb.Fatalf("clustertest: coordinator: %v", err)
	}
	c.Coordinator = co
	tb.Cleanup(co.Stop)
	c.HTTP = httptest.NewServer(co)
	tb.Cleanup(c.HTTP.Close)
	c.URL = c.HTTP.URL
	return c
}

// Kill marks worker i dead at the transport (connection-refused until
// Revive), like its process crashing. The worker's in-memory state —
// cache contents included — survives, matching a process that is
// partitioned rather than wiped.
func (c *Cluster) Kill(i int) { c.Transport.Kill(c.Workers[i].URL) }

// Revive brings worker i back.
func (c *Cluster) Revive(i int) { c.Transport.Revive(c.Workers[i].URL) }

// Sweep posts req to the coordinator and returns the merged results
// document, transparently polling if the coordinator answers with a job.
func (c *Cluster) Sweep(req server.SweepRequest) ([]byte, error) {
	cl := &server.Client{BaseURL: c.URL, HTTPClient: c.HTTP.Client(), PollInterval: time.Millisecond}
	return cl.Sweep(req)
}

// MustSweep is Sweep failing the test on error.
func (c *Cluster) MustSweep(tb testing.TB, req server.SweepRequest) []byte {
	tb.Helper()
	blob, err := c.Sweep(req)
	if err != nil {
		tb.Fatalf("clustertest: sweep through coordinator: %v\ntransport log:\n%s", err, joinLog(c.Transport.Log()))
	}
	return blob
}

// TotalMisses sums result-cache misses across all workers: with the
// cluster single-flight working, this equals the number of distinct
// content keys simulated, regardless of faults, retries, or overlap.
func (c *Cluster) TotalMisses() uint64 {
	var n uint64
	for _, w := range c.Workers {
		n += w.CacheStats().Misses
	}
	return n
}

// LocalRun executes the same request locally (no servers) and returns
// the canonical results document — the byte-identity oracle.
func LocalRun(tb testing.TB, req server.SweepRequest) []byte {
	tb.Helper()
	sw, err := req.Sweep()
	if err != nil {
		tb.Fatalf("clustertest: local sweep: %v", err)
	}
	rs, err := sw.Run()
	if err != nil {
		tb.Fatalf("clustertest: local sweep: %v", err)
	}
	blob, err := experiment.MarshalJSONResults(rs)
	if err != nil {
		tb.Fatalf("clustertest: local sweep: %v", err)
	}
	return blob
}

// AssertIdentical fails the test (with the transport log, so a scripted
// or seeded fault schedule is reconstructible) unless got == want.
func AssertIdentical(tb testing.TB, got, want []byte, context string) {
	tb.Helper()
	if bytes.Equal(got, want) {
		return
	}
	tb.Fatalf("clustertest: %s: merged document differs from local run\ngot %d bytes:\n%s\nwant %d bytes:\n%s",
		context, len(got), clip(got), len(want), clip(want))
}

func clip(b []byte) string {
	const max = 4096
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + fmt.Sprintf("\n... (%d more bytes)", len(b)-max)
}

func joinLog(lines []string) string {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString("  ")
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	if buf.Len() == 0 {
		buf.WriteString("  (no requests)\n")
	}
	return buf.String()
}

// Get issues a GET against the coordinator (for /cluster/stats,
// /healthz) and returns status and body.
func (c *Cluster) Get(path string) (int, []byte, error) {
	resp, err := c.HTTP.Client().Get(c.URL + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
