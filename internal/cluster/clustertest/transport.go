// Package clustertest is the deterministic test harness for the cluster
// coordinator: it spins N real in-process sweep workers behind a
// coordinator and routes every coordinator→worker request through a
// fault-injecting http.RoundTripper that can kill, reset, hang, or 5xx
// individual requests by target, path, body content, and request
// ordinal. Every failure mode the cluster defends against is reproduced
// in-process, scripted, and without a single real sleep: a "hung"
// request returns a synthesized net.Error timeout immediately, a
// "killed" worker refuses connections at the transport, and the workers
// themselves never misbehave — so tests assert on exact cache-stats
// accounting instead of racing wall clocks.
package clustertest

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// Fault is an injected failure mode for one matched request.
type Fault int

const (
	// FaultNone passes the request through.
	FaultNone Fault = iota
	// FaultKill fails the request with a connection error AND marks the
	// worker dead: every later request to it fails until Revive. This
	// models a crashed worker process.
	FaultKill
	// FaultReset fails this one request with a connection error; the
	// worker stays up. This models a dropped connection mid-dialogue.
	FaultReset
	// FaultHang fails the request with a net.Error timeout — the
	// deterministic stand-in for a worker that accepts the connection
	// and never answers. No real time passes.
	FaultHang
	// Fault5xx answers 500 without the request reaching the worker.
	Fault5xx
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultReset:
		return "reset"
	case FaultHang:
		return "hang"
	case Fault5xx:
		return "5xx"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Rule scripts one fault. Zero-valued match fields match everything, so
// {Fault: FaultReset, Ordinal: 3} means "reset the 3rd request overall"
// and {Host: w2, Path: "/sweep", BodyContains: "FLUSH.2.8", Ordinal: 1,
// Fault: FaultKill} means "kill worker w2 the first time it is asked for
// a FLUSH.2.8 cell".
type Rule struct {
	// Host matches the target authority ("127.0.0.1:4242"); "" = any.
	Host string
	// Path matches by URL-path prefix; "" = any.
	Path string
	// BodyContains matches a substring of the request body (cell keys,
	// policy names, workload names in /sweep posts); "" = any.
	BodyContains string
	// Ordinal fires on the Nth request THIS RULE matches (1-based) and
	// never again; 0 fires on every match.
	Ordinal int
	// Fault is what happens to a fired request.
	Fault Fault

	matched int
}

// timeoutError is the synthesized net.Error for FaultHang.
type timeoutError struct{ target string }

func (e *timeoutError) Error() string   { return "clustertest: injected timeout waiting for " + e.target }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// Transport is the fault-injecting http.RoundTripper. It wraps a real
// transport (the one that reaches the in-process httptest workers) and
// applies scripted Rules plus the kill/revive worker state. All methods
// are safe for concurrent use.
type Transport struct {
	// Base performs un-faulted requests; nil means http.DefaultTransport.
	Base http.RoundTripper
	// OnRequest, when non-nil, runs before fault evaluation on every
	// request (without the transport lock held). Chaos tests use it to
	// drive seeded kill/revive schedules keyed on request count.
	OnRequest func(req *http.Request)

	mu     sync.Mutex
	rules  []*Rule
	killed map[string]bool
	log    []string
}

// NewTransport wraps base (nil = http.DefaultTransport).
func NewTransport(base http.RoundTripper) *Transport {
	return &Transport{Base: base, killed: map[string]bool{}}
}

// Script appends fault rules. Rules are evaluated in the order added;
// the first rule that fires decides the request's fate.
func (t *Transport) Script(rules ...*Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, rules...)
}

// Kill marks a worker (by URL or host) dead: every request to it fails
// with a connection error until Revive.
func (t *Transport) Kill(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.killed[hostOf(target)] = true
	t.log = append(t.log, "KILL "+hostOf(target))
}

// Revive brings a killed worker back.
func (t *Transport) Revive(target string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.killed, hostOf(target))
	t.log = append(t.log, "REVIVE "+hostOf(target))
}

// Killed reports whether a worker is currently marked dead.
func (t *Transport) Killed(target string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed[hostOf(target)]
}

// Log returns the request/fault history, one line per event — printed by
// failing chaos tests so a seeded schedule is reconstructible.
func (t *Transport) Log() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.log...)
}

// hostOf accepts "http://127.0.0.1:4242/", "127.0.0.1:4242" or a full
// URL and returns the bare authority.
func hostOf(target string) string {
	s := target
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// body returns the request body for matching without consuming it.
// Requests built by the server client always carry GetBody (bytes
// readers); requests without one match as empty.
func body(req *http.Request) string {
	if req.GetBody == nil {
		return ""
	}
	rc, err := req.GetBody()
	if err != nil {
		return ""
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		return ""
	}
	return string(b)
}

func (r *Rule) matches(req *http.Request, reqBody string) bool {
	if r.Host != "" && hostOf(r.Host) != req.URL.Host {
		return false
	}
	if r.Path != "" && !strings.HasPrefix(req.URL.Path, r.Path) {
		return false
	}
	if r.BodyContains != "" && !strings.Contains(reqBody, r.BodyContains) {
		return false
	}
	return true
}

// RoundTrip applies the kill set and scripted rules, then delegates
// un-faulted requests to the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.OnRequest != nil {
		t.OnRequest(req)
	}
	reqBody := body(req)

	t.mu.Lock()
	line := fmt.Sprintf("%s %s%s", req.Method, req.URL.Host, req.URL.Path)
	fault := FaultNone
	if t.killed[req.URL.Host] {
		fault = FaultKill
		line += " [worker down]"
	} else {
		for _, r := range t.rules {
			if !r.matches(req, reqBody) {
				continue
			}
			r.matched++
			if r.Ordinal != 0 && r.matched != r.Ordinal {
				continue
			}
			if fault == FaultNone { // first firing rule wins; later rules still count matches
				fault = r.Fault
				line += " [injected " + fault.String() + "]"
			}
		}
	}
	if fault == FaultKill && !t.killed[req.URL.Host] {
		t.killed[req.URL.Host] = true
	}
	t.log = append(t.log, line)
	t.mu.Unlock()

	switch fault {
	case FaultKill, FaultReset:
		return nil, fmt.Errorf("clustertest: injected connection error to %s (%s)", req.URL.Host, fault)
	case FaultHang:
		return nil, &timeoutError{target: req.URL.Host}
	case Fault5xx:
		const msg = "clustertest: injected server error\n"
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(msg)),
			ContentLength: int64(len(msg)),
			Request:       req,
		}, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
