package cluster

import (
	"fmt"
	"testing"

	"smtfetch/internal/experiment"
)

func testCoordinator(t *testing.T, urls ...string) *Coordinator {
	t.Helper()
	co, err := New(Config{Workers: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Stop)
	return co
}

func rankedURLs(co *Coordinator, key string) []string {
	var out []string
	for _, wk := range co.rank(key) {
		out = append(out, wk.url)
	}
	return out
}

func TestRankDeterministicAndTotal(t *testing.T) {
	co := testCoordinator(t, "http://a:1", "http://b:1", "http://c:1")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("2_MIX/gshare+BTB/ICOUNT.1.8/%d", i)
		first := rankedURLs(co, key)
		if len(first) != 3 {
			t.Fatalf("rank(%q) has %d workers, want 3", key, len(first))
		}
		for rep := 0; rep < 3; rep++ {
			if got := rankedURLs(co, key); fmt.Sprint(got) != fmt.Sprint(first) {
				t.Fatalf("rank(%q) not deterministic: %v then %v", key, first, got)
			}
		}
	}
}

// TestRankSpreadsKeys: rendezvous hashing must actually shard — every
// worker in a 3-fleet owns a nontrivial share of a 60-cell grid.
func TestRankSpreadsKeys(t *testing.T) {
	co := testCoordinator(t, "http://a:1", "http://b:1", "http://c:1")
	owners := map[string]int{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("2_MIX/stream/FLUSH.2.8/%d", i)
		owners[rankedURLs(co, key)[0]]++
	}
	for _, u := range []string{"http://a:1", "http://b:1", "http://c:1"} {
		if owners[u] == 0 {
			t.Fatalf("worker %s owns no keys out of 60: %v", u, owners)
		}
	}
}

// TestRankAddingWorkerOnlyMovesItsShare pins the HRW property the design
// depends on for cache warmth: growing the fleet never reshuffles keys
// between surviving workers — the relative order of the old workers is
// identical in the grown fleet's ranking, so a key changes owner only if
// the NEW worker took it.
func TestRankAddingWorkerOnlyMovesItsShare(t *testing.T) {
	old := testCoordinator(t, "http://a:1", "http://b:1", "http://c:1")
	grown := testCoordinator(t, "http://a:1", "http://b:1", "http://c:1", "http://d:1")
	moved := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("4_INT/gskew+FTB/STALL.1.16/%d", i)
		before := rankedURLs(old, key)
		after := rankedURLs(grown, key)
		var survivors []string
		for _, u := range after {
			if u != "http://d:1" {
				survivors = append(survivors, u)
			}
		}
		if fmt.Sprint(survivors) != fmt.Sprint(before) {
			t.Fatalf("key %q: survivor order changed: %v -> %v", key, before, survivors)
		}
		if after[0] != before[0] {
			if after[0] != "http://d:1" {
				t.Fatalf("key %q moved from %s to %s, not to the new worker", key, before[0], after[0])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new worker took no keys out of 200 — not sharding")
	}
	if moved > 150 {
		t.Fatalf("new worker took %d/200 keys — far beyond its fair share", moved)
	}
}

// TestRoutingKeyWarmForkAffinity: warm-fork sweeps route whole warm
// groups (same workload/engine/shape/seed, any policy) to one worker.
func TestRoutingKeyWarmForkAffinity(t *testing.T) {
	req := experiment.Sweep{WarmFork: "fork"}
	sw := &req
	a := experiment.Cell{Workload: "2_MIX", Seed: 3}
	b := a
	c := a
	b.Policy.Policy = 1 // different policy, same warm group
	c.Seed = 4          // different seed, different warm group
	if routingKey(sw, a) != routingKey(sw, b) {
		t.Fatalf("same warm group routed differently: %q vs %q", routingKey(sw, a), routingKey(sw, b))
	}
	if routingKey(sw, a) == routingKey(sw, c) {
		t.Fatal("different warm groups share a routing key")
	}
	plain := &experiment.Sweep{}
	if routingKey(plain, a) == routingKey(plain, b) {
		t.Fatal("plain sweep routed two distinct cells identically")
	}
}
