package cluster

import (
	"sync/atomic"
	"testing"

	"smtfetch/internal/experiment"
)

// flightSweep/flightCell: one fixed cell so every fetchCell call shares a
// content key.
func flightFixture() (*experiment.Sweep, string, experiment.Cell) {
	sw := &experiment.Sweep{}
	c := experiment.Cell{Workload: "2_MIX", Seed: 1}
	return sw, "fp", c
}

// TestFetchCellSingleFlight: while a dispatch for a key is in flight, no
// second dispatch starts — callers park behind the leader and share its
// result. Synchronization is entirely channel-based: the leader is held
// inside dispatch, and testHookFlightWait confirms every other caller
// has committed to the waiter path before the leader is released.
func TestFetchCellSingleFlight(t *testing.T) {
	co := testCoordinator(t, "http://unused:1")
	sw, fp, cell := flightFixture()
	want := experiment.Result{Workload: "2_MIX", Seed: 1, IPC: 1.25}

	started := make(chan struct{})
	release := make(chan struct{})
	var dispatches int32
	co.dispatch = func(*experiment.Sweep, experiment.Cell) experiment.Result {
		if atomic.AddInt32(&dispatches, 1) == 1 {
			close(started)
		}
		<-release
		return want
	}

	const waiters = 8
	parked := make(chan string, waiters)
	testHookFlightWait = func(key string) { parked <- key }
	defer func() { testHookFlightWait = nil }()

	leaderDone := make(chan experiment.Result, 1)
	go func() { leaderDone <- co.fetchCell(sw, fp, cell) }()
	<-started // leader is inside dispatch; the flight entry exists

	results := make(chan experiment.Result, waiters)
	for i := 0; i < waiters; i++ {
		go func() { results <- co.fetchCell(sw, fp, cell) }()
	}
	for i := 0; i < waiters; i++ {
		<-parked // each caller has seen the leader's entry and will wait
	}
	close(release)

	for i := 0; i < waiters; i++ {
		if got := <-results; got != want {
			t.Fatalf("waiter got %+v, want %+v", got, want)
		}
	}
	if got := <-leaderDone; got != want {
		t.Fatalf("leader got %+v", got)
	}
	if n := atomic.LoadInt32(&dispatches); n != 1 {
		t.Fatalf("dispatch ran %d times, want 1", n)
	}
}

// TestFetchCellErrorNotShared: a leader whose dispatch produced an error
// result does not poison its waiters — each waiter retries as a new
// leader, exactly like the worker-level single-flight.
func TestFetchCellErrorNotShared(t *testing.T) {
	co := testCoordinator(t, "http://unused:1")
	sw, fp, cell := flightFixture()
	bad := experiment.Result{Workload: "2_MIX", Seed: 1, Error: "transient worker failure"}
	good := experiment.Result{Workload: "2_MIX", Seed: 1, IPC: 1.25}

	started := make(chan struct{})
	release := make(chan struct{})
	var dispatches int32
	co.dispatch = func(*experiment.Sweep, experiment.Cell) experiment.Result {
		n := atomic.AddInt32(&dispatches, 1)
		if n == 1 {
			close(started)
			<-release
			return bad
		}
		return good
	}

	parked := make(chan string, 1)
	testHookFlightWait = func(key string) { parked <- key }
	defer func() { testHookFlightWait = nil }()

	leaderDone := make(chan experiment.Result, 1)
	go func() { leaderDone <- co.fetchCell(sw, fp, cell) }()
	<-started

	waiterDone := make(chan experiment.Result, 1)
	go func() { waiterDone <- co.fetchCell(sw, fp, cell) }()
	<-parked // waiter is committed to waiting on the failing leader
	close(release)

	if got := <-leaderDone; got.Error == "" {
		t.Fatalf("leader got %+v, want the error result", got)
	}
	if got := <-waiterDone; got != good {
		t.Fatalf("waiter got %+v, want a fresh successful dispatch", got)
	}
	if n := atomic.LoadInt32(&dispatches); n != 2 {
		t.Fatalf("dispatch ran %d times, want 2 (failed leader + retrying waiter)", n)
	}
}

// TestFetchCellDistinctKeysDoNotBlock: single-flight is per content key;
// a second cell proceeds while the first is in flight.
func TestFetchCellDistinctKeysDoNotBlock(t *testing.T) {
	co := testCoordinator(t, "http://unused:1")
	sw, fp, cellA := flightFixture()
	cellB := cellA
	cellB.Seed = 2

	started := make(chan struct{})
	release := make(chan struct{})
	co.dispatch = func(_ *experiment.Sweep, c experiment.Cell) experiment.Result {
		if c.Seed == 1 {
			close(started)
			<-release
		}
		return experiment.Result{Workload: c.Workload, Seed: c.Seed}
	}

	aDone := make(chan experiment.Result, 1)
	go func() { aDone <- co.fetchCell(sw, fp, cellA) }()
	<-started

	// With cell A's leader still blocked, cell B must complete: if the
	// flight map were keyed too coarsely this receive would deadlock.
	if got := co.fetchCell(sw, fp, cellB); got.Seed != 2 {
		t.Fatalf("cell B got %+v", got)
	}
	close(release)
	if got := <-aDone; got.Seed != 1 {
		t.Fatalf("cell A got %+v", got)
	}
}
