package cluster

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for pinning probe-backoff
// schedules without sleeping.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func clockConfig(c *fakeClock, urls ...string) Config {
	return Config{Workers: urls, ProbeInterval: 5 * time.Second, ProbeBackoffMax: time.Minute, Now: c.now}
}

// TestProbeBackoffSchedule pins the dead-worker probe schedule: 5s, 10s,
// 20s, 40s, then capped at 60s — a blipped worker is retried fast, a
// long-dead one is not hammered.
func TestProbeBackoffSchedule(t *testing.T) {
	clk := newFakeClock()
	co, err := New(clockConfig(clk, "http://a:1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()
	wk := co.workers[0]
	boom := errors.New("synthetic dispatch failure")

	want := []time.Duration{
		5 * time.Second,
		10 * time.Second,
		20 * time.Second,
		40 * time.Second,
		60 * time.Second, // 80s capped
		60 * time.Second,
	}
	for i, backoff := range want {
		co.noteFailure(wk, boom)
		if wk.isAlive() {
			t.Fatalf("fail %d: worker still alive", i+1)
		}
		if wk.probeDue(clk.now()) {
			t.Fatalf("fail %d: probe due immediately, want %v backoff", i+1, backoff)
		}
		if wk.probeDue(clk.now().Add(backoff - time.Nanosecond)) {
			t.Fatalf("fail %d: probe due %v early", i+1, time.Nanosecond)
		}
		if !wk.probeDue(clk.now().Add(backoff)) {
			t.Fatalf("fail %d: probe not due after %v", i+1, backoff)
		}
	}

	st := wk.status()
	if st.ConsecutiveFails != len(want) || st.Failures != uint64(len(want)) {
		t.Fatalf("status = %+v, want %d consecutive and total failures", st, len(want))
	}
	if st.LastError == "" {
		t.Fatal("status carries no last error")
	}

	wk.noteSuccess()
	if !wk.isAlive() || !wk.probeDue(clk.now()) {
		t.Fatal("success did not reset liveness and backoff")
	}
	st = wk.status()
	if st.ConsecutiveFails != 0 || st.LastError != "" {
		t.Fatalf("status after success = %+v, want cleared", st)
	}
	if st.Failures != uint64(len(want)) {
		t.Fatalf("total failure count %d lost on success, want %d", st.Failures, len(want))
	}

	// The next failure restarts the schedule at the base.
	co.noteFailure(wk, boom)
	if !wk.probeDue(clk.now().Add(5 * time.Second)) {
		t.Fatal("backoff did not restart at base after recovery")
	}
	if wk.probeDue(clk.now().Add(5*time.Second - time.Nanosecond)) {
		t.Fatal("restarted backoff shorter than base")
	}
}

// TestProbeDueRespectsBackoff: ProbeDue must not touch a worker still
// inside its backoff window — with a frozen clock, a freshly demoted
// worker is never probed (a probe against this unresolvable URL would
// loudly alter its failure count).
func TestProbeDueRespectsBackoff(t *testing.T) {
	clk := newFakeClock()
	co, err := New(clockConfig(clk, "http://invalid.invalid:1"))
	if err != nil {
		t.Fatal(err)
	}
	defer co.Stop()
	wk := co.workers[0]
	co.noteFailure(wk, errors.New("synthetic"))
	before := wk.status()

	co.ProbeDue() // not due: frozen clock inside the 5s backoff
	if after := wk.status(); after.Failures != before.Failures {
		t.Fatalf("ProbeDue probed a backed-off worker: %+v -> %+v", before, after)
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty fleet")
	}
	if _, err := New(Config{Workers: []string{"http://a:1", "http://a:1/"}}); err == nil {
		t.Fatal("New accepted duplicate workers")
	}
	if _, err := New(Config{Workers: []string{""}}); err == nil {
		t.Fatal("New accepted an empty worker URL")
	}
}
