package cluster_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"smtfetch/internal/cluster/clustertest"
)

// TestClusterChaosKillRestart runs the 7-policy × 2-workload acceptance
// grid while a seeded schedule kills and revives random workers between
// dispatches. Whatever the schedule does, two invariants must hold:
//
//  1. the merged document is byte-identical to a local sweep, and
//  2. the fleet simulated each cell exactly once (kills strike at
//     request admission, before the worker is reached, so a re-dispatched
//     cell never ran on the victim).
//
// The schedule is deterministic per seed — victims are drawn from the
// seeded generator, kill/revive points are fixed request ordinals — and
// the seed plus the full transport log print on failure, so any failing
// schedule replays exactly.
func TestClusterChaosKillRestart(t *testing.T) {
	want := clustertest.LocalRun(t, paperGrid())
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := clustertest.Start(t, 3, clustertest.Options{})
			urls := make([]string, len(c.Workers))
			for i, w := range c.Workers {
				urls[i] = w.URL
			}

			rng := rand.New(rand.NewSource(seed))
			var mu sync.Mutex
			reqs := 0
			c.Transport.OnRequest = func(*http.Request) {
				mu.Lock()
				defer mu.Unlock()
				reqs++
				switch reqs {
				case 3, 11: // kill a random worker, never the last live one
					var live []string
					for _, u := range urls {
						if !c.Transport.Killed(u) {
							live = append(live, u)
						}
					}
					if len(live) > 1 {
						c.Transport.Kill(live[rng.Intn(len(live))])
					}
				case 8: // revive a random dead worker, if any
					var dead []string
					for _, u := range urls {
						if c.Transport.Killed(u) {
							dead = append(dead, u)
						}
					}
					if len(dead) > 0 {
						c.Transport.Revive(dead[rng.Intn(len(dead))])
					}
				}
			}

			got := c.MustSweep(t, paperGrid())
			ctx := fmt.Sprintf("chaos seed %d\nschedule:\n%s", seed, strings.Join(c.Transport.Log(), "\n"))
			clustertest.AssertIdentical(t, got, want, ctx)
			if n := c.TotalMisses(); n != 14 {
				t.Fatalf("fleet simulated %d cells, want exactly 14 — a kill caused a double simulation or a lost cell\nseed %d, schedule:\n%s",
					n, seed, strings.Join(c.Transport.Log(), "\n"))
			}
			kills := 0
			for _, line := range c.Transport.Log() {
				if strings.HasPrefix(line, "KILL ") {
					kills++
				}
			}
			if kills == 0 {
				t.Fatalf("schedule for seed %d killed nobody — chaos test proved nothing", seed)
			}
		})
	}
}
