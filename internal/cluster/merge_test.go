package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"smtfetch/internal/experiment"
)

// mergeCells builds n distinguishable cells already in canonical order
// (seed is the last sort key, so ascending seeds are sorted).
func mergeCells(n int) []experiment.Cell {
	cells := make([]experiment.Cell, n)
	for i := range cells {
		cells[i] = experiment.Cell{Workload: "2_MIX", Seed: uint64(i + 1)}
	}
	return cells
}

func seedResult(c experiment.Cell) experiment.Result {
	return experiment.Result{Workload: c.Workload, Engine: c.Engine.String(), Policy: c.Policy.String(), Seed: c.Seed}
}

// TestRunOrderedEmitsInCellOrder completes cells in an adversarial
// (reverse) order, scripted entirely with channels: each in-flight batch
// is released newest-first, and the emit sequence must still be the
// canonical cell order.
func TestRunOrderedEmitsInCellOrder(t *testing.T) {
	const n, jobs, window = 9, 3, 3
	cells := mergeCells(n)

	var mu sync.Mutex
	gates := map[uint64]chan struct{}{}
	started := make(chan uint64, n)
	fetch := func(c experiment.Cell) experiment.Result {
		g := make(chan struct{})
		mu.Lock()
		gates[c.Seed] = g
		mu.Unlock()
		started <- c.Seed
		<-g
		return seedResult(c)
	}

	var emitted []uint64
	done := make(chan error, 1)
	go func() {
		done <- runOrdered(cells, jobs, window, fetch, func(r experiment.Result) error {
			emitted = append(emitted, r.Seed)
			return nil
		})
	}()

	released := 0
	for released < n {
		// Collect the current in-flight batch (bounded by jobs and the
		// window), then release it in REVERSE order: completion order is
		// maximally unlike cell order.
		batch := []uint64{<-started}
	drain:
		for len(batch) < jobs {
			select {
			case s := <-started:
				batch = append(batch, s)
			default:
				break drain
			}
		}
		for i := len(batch) - 1; i >= 0; i-- {
			mu.Lock()
			g := gates[batch[i]]
			mu.Unlock()
			close(g)
			released++
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("runOrdered: %v", err)
	}
	if len(emitted) != n {
		t.Fatalf("emitted %d results, want %d", len(emitted), n)
	}
	for i, s := range emitted {
		if s != uint64(i+1) {
			t.Fatalf("emit order broken at %d: got seeds %v", i, emitted)
		}
	}
}

// TestRunOrderedWindowBoundsDispatch: cell window+1 must not be handed to
// a worker while cell 1 is still unemitted — the reorder buffer is the
// flow control, not just a buffer.
func TestRunOrderedWindowBoundsDispatch(t *testing.T) {
	const n, jobs, window = 8, 2, 3
	cells := mergeCells(n)

	started := make(chan uint64, n)
	release := make(chan struct{})
	fetch := func(c experiment.Cell) experiment.Result {
		started <- c.Seed
		if c.Seed == 1 {
			<-release // head cell stalls; dispatch must throttle behind it
		}
		return seedResult(c)
	}
	done := make(chan error, 1)
	var emitted int
	go func() {
		done <- runOrdered(cells, jobs, window, fetch, func(experiment.Result) error {
			emitted++
			return nil
		})
	}()

	// With the head stalled, exactly `window` cells can ever start: the
	// feeder blocks acquiring slot window+1. Seeing one extra start would
	// mean the window leaks; seeing fewer would deadlock this receive.
	startedSet := map[uint64]bool{}
	for i := 0; i < window; i++ {
		startedSet[<-started] = true
	}
	if !startedSet[1] {
		t.Fatalf("head cell not dispatched; started %v", startedSet)
	}
	select {
	case s := <-started:
		t.Fatalf("cell %d dispatched beyond the %d-cell window while head stalled", s, window)
	default:
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("runOrdered: %v", err)
	}
	if emitted != n {
		t.Fatalf("emitted %d, want %d", emitted, n)
	}
}

// TestRunOrderedEmitErrorDrains: the first emit error is returned, later
// emits are skipped, and every fetch still runs (no leaked workers, no
// abandoned dispatches).
func TestRunOrderedEmitErrorDrains(t *testing.T) {
	const n = 6
	cells := mergeCells(n)
	var fetched int32
	var mu sync.Mutex
	fetch := func(c experiment.Cell) experiment.Result {
		mu.Lock()
		fetched++
		mu.Unlock()
		return seedResult(c)
	}
	boom := errors.New("client went away")
	emits := 0
	err := runOrdered(cells, 2, 4, fetch, func(r experiment.Result) error {
		emits++
		if r.Seed == 2 {
			return fmt.Errorf("write: %w", boom)
		}
		if r.Seed > 2 {
			t.Errorf("emit called for seed %d after error", r.Seed)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("runOrdered error = %v, want %v", err, boom)
	}
	mu.Lock()
	defer mu.Unlock()
	if fetched != n {
		t.Fatalf("fetched %d cells, want all %d despite emit error", fetched, n)
	}
}

func TestRunOrderedEmpty(t *testing.T) {
	if err := runOrdered(nil, 4, 8, nil, nil); err != nil {
		t.Fatalf("empty runOrdered: %v", err)
	}
}
