package cluster

import (
	"bytes"
	"fmt"

	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

// flightEntry is one in-flight content key. Waiters block on done; ok
// reports whether the leader's result is shareable (error results are
// not — each waiter retries itself, exactly like the worker-level
// single-flight, so a transient worker failure doesn't fan out).
type flightEntry struct {
	done chan struct{}
	res  experiment.Result
	ok   bool
}

// fetchCell resolves one cell cluster-wide, single-flighting on the full
// content key (fingerprint + cell key): while a dispatch for the key is
// in flight anywhere — from this request or a concurrently posted
// overlapping grid — no second dispatch starts. Combined with each
// worker's cache and its own single-flight, a shared cell simulates
// exactly once across the fleet no matter how many grids want it.
func (co *Coordinator) fetchCell(sw *experiment.Sweep, fp string, c experiment.Cell) experiment.Result {
	key := server.CacheKey(fp, c)
	for {
		co.flight.mu.Lock()
		e, running := co.flight.m[key]
		if !running {
			e = &flightEntry{done: make(chan struct{})}
			co.flight.m[key] = e
		}
		co.flight.mu.Unlock()
		if running {
			if h := testHookFlightWait; h != nil {
				h(key)
			}
			<-e.done
			if e.ok {
				return e.res
			}
			continue
		}
		res := co.dispatch(sw, c)
		e.res, e.ok = res, res.Error == ""
		co.flight.mu.Lock()
		delete(co.flight.m, key)
		co.flight.mu.Unlock()
		close(e.done)
		return res
	}
}

// testHookFlightWait, when non-nil, fires the moment a fetchCell caller
// commits to the waiter path (its key's flight entry exists and belongs
// to someone else). Single-flight tests use it to know — without
// sleeping — that every concurrent caller is parked behind the leader
// before they release the leader; production code never sets it.
var testHookFlightWait func(key string)

// dispatchCell executes one cell on the fleet: workers are tried in
// rendezvous order for the cell's routing key — live workers first, then
// (only if every live worker failed) the ones currently marked dead, so
// a fleet-wide false alarm degrades to retrying rather than failing the
// cell outright. A worker that errors is marked dead and the cell moves
// to the next worker in the ranking; a worker whose *simulation* errors
// is healthy infrastructure reporting a failing cell, which is returned
// as-is (re-dispatching it elsewhere would deterministically fail the
// same way).
func (co *Coordinator) dispatchCell(sw *experiment.Sweep, c experiment.Cell) experiment.Result {
	ranked := co.rank(routingKey(sw, c))
	tried := make(map[*worker]bool, len(ranked))
	var lastErr error
	for _, wantAlive := range []bool{true, false} {
		for _, wk := range ranked {
			if tried[wk] || wk.isAlive() != wantAlive {
				continue
			}
			tried[wk] = true
			res, err := co.tryWorker(wk, sw, c)
			if err == nil {
				return res
			}
			lastErr = err
		}
	}
	r := experiment.Result{
		Workload: c.Workload,
		Engine:   c.Engine.String(),
		Policy:   c.Policy.String(),
		Seed:     c.Seed,
	}
	r.Error = fmt.Sprintf("cluster: no worker could run cell %s: %v", c.Key(), lastErr)
	return r
}

// tryWorker runs one cell on one worker via the ordinary sweep-server
// protocol: a single-cell grid POSTed to /sweep (answered synchronously
// by any default-configured worker; the client transparently polls
// all-async ones). A transport failure, HTTP error, or malformed
// response marks the worker dead — with its probe backoff started — and
// is returned so the caller re-dispatches.
func (co *Coordinator) tryWorker(wk *worker, sw *experiment.Sweep, c experiment.Cell) (experiment.Result, error) {
	wk.noteDispatch()
	blob, err := wk.client.Sweep(cellRequest(sw, c))
	if err != nil {
		co.noteFailure(wk, err)
		return experiment.Result{}, fmt.Errorf("worker %s: %w", wk.url, err)
	}
	rs, err := experiment.ReadJSON(bytes.NewReader(blob))
	if err != nil {
		err = fmt.Errorf("worker %s: bad results document: %w", wk.url, err)
		co.noteFailure(wk, err)
		return experiment.Result{}, err
	}
	if len(rs) != 1 || rs[0].Key() != c.Key() {
		err = fmt.Errorf("worker %s: asked for cell %s, got %d result(s)", wk.url, c.Key(), len(rs))
		co.noteFailure(wk, err)
		return experiment.Result{}, err
	}
	wk.noteSuccess()
	return rs[0], nil
}

// cellRequest phrases one cell as a single-cell sweep request carrying
// the sweep's phase lengths, sampling spec, and warm-fork mode — every
// fingerprint component — so the worker caches the cell under exactly
// the key a whole-grid request for the same sweep would use.
func cellRequest(sw *experiment.Sweep, c experiment.Cell) server.SweepRequest {
	return server.SweepRequest{
		Workloads:     []string{c.Workload},
		Engines:       []string{c.Engine.String()},
		Policies:      []string{c.Policy.String()},
		Seeds:         []uint64{c.Seed},
		WarmupInstrs:  sw.WarmupInstrs,
		WarmupCycles:  sw.WarmupCycles,
		MeasureInstrs: sw.MeasureInstrs,
		MaxCycles:     sw.MaxCycles,
		Sample:        sw.Sample,
		WarmFork:      sw.WarmFork,
	}
}
