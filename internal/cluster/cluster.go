// Package cluster turns a fleet of sweep servers into one service. A
// Coordinator speaks the same HTTP protocol as a single smtfetch sweep
// server (POST /sweep, GET /jobs/{id}, GET /healthz), so `sweep -server`
// clients cannot tell the difference — but instead of simulating cells
// itself it shards them across worker servers by rendezvous (highest-
// random-weight) hashing of the cell's content key and merges the worker
// results back into one canonical results document.
//
// The design leans entirely on the determinism guarantee the workers
// already provide: equal content key ⇒ byte-identical result. That makes
// workers freely interchangeable — any worker may execute any cell and
// the merged document is byte-identical to a local `smtfetch sweep` run —
// so distribution is pure routing: no consensus, no result reconciliation,
// no coordinator-side cache. Failure handling is correspondingly simple:
// a cell dispatched to a dead, hung, or erroring worker is re-dispatched
// to the next worker in rendezvous order, and the worst a failure can
// cost is one extra simulation of one cell.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

// Config configures a Coordinator.
type Config struct {
	// Workers are the base URLs of the sweep servers to shard across
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Workers []string
	// HTTPClient is used for all worker traffic (dispatch and probes).
	// Nil gets a dedicated client with a 5-minute overall timeout. Tests
	// inject a client wrapping the fault-injection transport here.
	HTTPClient *http.Client
	// SyncCellLimit is the largest grid POST /sweep answers in-request
	// (streamed); bigger grids get a job ID and polling (< 0 =
	// everything async, 0 = default 16).
	SyncCellLimit int
	// MaxFinishedJobs bounds completed-job retention (<= 0 = 32).
	MaxFinishedJobs int
	// Jobs bounds concurrent cell dispatches across the fleet
	// (<= 0 = 4 × len(Workers)).
	Jobs int
	// Window bounds the streamed merge's reorder buffer: at most this
	// many results are in flight or buffered ahead of the canonical
	// write position (<= 0 = 2 × Jobs, minimum Jobs).
	Window int
	// PollInterval is handed to the per-worker clients for async-job
	// polling (0 = 200ms). Single-cell dispatches are normally answered
	// synchronously; this only matters for workers running -sync-limit -1.
	PollInterval time.Duration
	// ProbeInterval is the health-probe period for Start (0 = 5s). It is
	// also the base of the dead-worker probe backoff: after n consecutive
	// failures a worker is probed no sooner than ProbeInterval×2^(n-1),
	// capped at ProbeBackoffMax.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the dead-worker probe backoff (0 = 1 minute).
	ProbeBackoffMax time.Duration
	// Now replaces time.Now for backoff bookkeeping; tests inject a fake
	// clock to pin the schedule. Nil means time.Now.
	Now func() time.Time
}

// Coordinator is the cluster front end: an http.Handler exposing
//
//	POST /sweep          run a grid across the fleet (streamed sync body
//	                     or 202 + job ID)
//	GET  /jobs/{id}          poll an async sweep (same protocol as server)
//	GET  /jobs/{id}/results  fetch its results document
//	GET  /cluster/stats      per-worker health and dispatch counters
//	GET  /healthz            coordinator liveness
type Coordinator struct {
	workers   []*worker
	jobs      *server.JobRegistry
	syncLimit int
	poolJobs  int
	window    int
	mux       *http.ServeMux
	httpc     *http.Client
	probeBase time.Duration
	probeMax  time.Duration
	now       func() time.Time

	jobsWG   sync.WaitGroup
	stopOnce sync.Once
	stop     chan struct{}

	// flight is the cluster-wide single-flight map: per content key, at
	// most one dispatch anywhere in the fleet at a time. It layers over
	// each worker's own per-key single-flight — the worker layer dedupes
	// concurrent misses that reach one worker, this layer stops them
	// from reaching workers (or, after a re-dispatch, *different*
	// workers) at all.
	flight struct {
		mu sync.Mutex
		m  map[string]*flightEntry
	}

	// dispatch executes one cell somewhere in the fleet. It is a field
	// (defaulting to dispatchCell) so single-flight tests can substitute
	// a controllable fake without HTTP.
	dispatch func(*experiment.Sweep, experiment.Cell) experiment.Result
}

// New builds a Coordinator over the configured workers. No probing
// happens here: workers start presumed alive and are demoted by dispatch
// failures or probes.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{Timeout: 5 * time.Minute}
	}
	syncLimit := cfg.SyncCellLimit
	if syncLimit == 0 {
		syncLimit = 16
	}
	maxDone := cfg.MaxFinishedJobs
	if maxDone <= 0 {
		maxDone = 32
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 4 * len(cfg.Workers)
	}
	window := cfg.Window
	if window <= 0 {
		window = 2 * jobs
	}
	if window < jobs {
		window = jobs
	}
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	probeBase := cfg.ProbeInterval
	if probeBase <= 0 {
		probeBase = 5 * time.Second
	}
	probeMax := cfg.ProbeBackoffMax
	if probeMax <= 0 {
		probeMax = time.Minute
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	co := &Coordinator{
		jobs:      server.NewJobRegistry(maxDone),
		syncLimit: syncLimit,
		poolJobs:  jobs,
		window:    window,
		httpc:     httpc,
		probeBase: probeBase,
		probeMax:  probeMax,
		now:       now,
		stop:      make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range cfg.Workers {
		u = strings.TrimSuffix(u, "/")
		if u == "" {
			return nil, errors.New("cluster: empty worker URL")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker %s", u)
		}
		seen[u] = true
		co.workers = append(co.workers, &worker{
			url:    u,
			alive:  true,
			client: &server.Client{BaseURL: u, HTTPClient: httpc, PollInterval: poll},
		})
	}
	co.flight.m = map[string]*flightEntry{}
	co.dispatch = co.dispatchCell
	co.mux = http.NewServeMux()
	co.mux.HandleFunc("/sweep", co.handleSweep)
	co.mux.HandleFunc("/jobs/", co.jobs.HandleHTTP)
	co.mux.HandleFunc("/cluster/stats", co.handleStats)
	co.mux.HandleFunc("/healthz", co.handleHealthz)
	return co, nil
}

func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.mux.ServeHTTP(w, r)
}

// WaitJobs blocks until every running async sweep has finished, so a
// graceful shutdown drains in-flight grids before the listener dies.
func (co *Coordinator) WaitJobs() {
	co.jobsWG.Wait()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSONBody(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (co *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST /sweep only")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req server.SweepRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	sw, err := req.Sweep()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	cells, err := sw.Prepare()
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid sweep: %v", err)
		return
	}
	fp := server.Fingerprint(sw)

	if !req.Async && co.syncLimit > 0 && len(cells) <= co.syncLimit {
		// Stream the merged document straight into the response: results
		// are written in canonical order as workers deliver them, never
		// buffering more than the reorder window.
		w.Header().Set("Content-Type", "application/json")
		co.runSweepStream(sw, cells, fp, w, nil)
		return
	}

	j := co.jobs.Create(len(cells))
	co.jobsWG.Add(1)
	go func() {
		defer co.jobsWG.Done()
		var buf bytes.Buffer
		err := co.runSweepStream(sw, cells, fp, &buf, j)
		if err != nil {
			j.Finish(nil, err)
		} else {
			j.Finish(buf.Bytes(), nil)
		}
		co.jobs.Complete(j)
	}()
	writeJSONBody(w, http.StatusAccepted, j.Status())
}

// runSweepStream executes cells across the fleet and writes the merged
// results document to w in canonical order. Per-cell failures (including
// cells no worker could run) travel inside the document, matching local
// sweep semantics; the returned error covers only document-level failures
// (an unwritable response).
func (co *Coordinator) runSweepStream(sw *experiment.Sweep, cells []experiment.Cell, fp string, w io.Writer, j *server.Job) error {
	// Pre-sorting the cells canonically makes "emit in cell order" and
	// "emit in SortResults order" the same thing, which is what lets the
	// merge stream instead of sort-at-the-end like Sweep.RunCells.
	sorted := make([]experiment.Cell, len(cells))
	copy(sorted, cells)
	experiment.SortCells(sorted)

	stream := experiment.NewResultStream(w)
	var done atomic.Int64
	fetch := func(c experiment.Cell) experiment.Result {
		r := co.fetchCell(sw, fp, c)
		if j != nil {
			j.Progress(int(done.Add(1)))
		}
		return r
	}
	if err := runOrdered(sorted, co.poolJobs, co.window, fetch, stream.Write); err != nil {
		return err
	}
	return stream.Close()
}

// WorkerStatus is one worker's entry in GET /cluster/stats.
type WorkerStatus struct {
	URL              string `json:"url"`
	Alive            bool   `json:"alive"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Dispatched       uint64 `json:"dispatched"`
	Failures         uint64 `json:"failures"`
	LastError        string `json:"last_error,omitempty"`
}

// Status is the JSON body of GET /cluster/stats.
type Status struct {
	Workers []WorkerStatus `json:"workers"`
}

// ClusterStats snapshots per-worker health and dispatch counters.
func (co *Coordinator) ClusterStats() Status {
	st := Status{Workers: make([]WorkerStatus, 0, len(co.workers))}
	for _, wk := range co.workers {
		st.Workers = append(st.Workers, wk.status())
	}
	return st
}

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSONBody(w, http.StatusOK, co.ClusterStats())
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSONBody(w, http.StatusOK, map[string]string{"status": "ok"})
}
