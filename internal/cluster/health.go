package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

// worker is one fleet member and its health bookkeeping. Workers start
// presumed alive; a dispatch or probe failure demotes them (with an
// exponentially backed-off next-probe time), a successful probe or
// dispatch restores them.
type worker struct {
	url    string
	client *server.Client

	mu        sync.Mutex
	alive     bool
	fails     int // consecutive failures (dispatch or probe)
	lastErr   string
	nextProbe time.Time

	dispatched uint64
	failures   uint64
}

func (wk *worker) isAlive() bool {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return wk.alive
}

func (wk *worker) noteDispatch() {
	wk.mu.Lock()
	wk.dispatched++
	wk.mu.Unlock()
}

func (wk *worker) noteSuccess() {
	wk.mu.Lock()
	wk.alive = true
	wk.fails = 0
	wk.lastErr = ""
	wk.nextProbe = time.Time{}
	wk.mu.Unlock()
}

// noteFailure demotes the worker and schedules its next probe at
// base×2^(fails-1), capped at max: a worker that just blipped is retried
// quickly, one that has been dead for an hour is probed at the cap
// instead of hammered.
func (co *Coordinator) noteFailure(wk *worker, err error) {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	wk.failures++
	wk.fails++
	wk.alive = false
	wk.lastErr = err.Error()
	backoff := co.probeBase
	for i := 1; i < wk.fails && backoff < co.probeMax; i++ {
		backoff *= 2
	}
	if backoff > co.probeMax {
		backoff = co.probeMax
	}
	wk.nextProbe = co.now().Add(backoff)
}

func (wk *worker) status() WorkerStatus {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return WorkerStatus{
		URL:              wk.url,
		Alive:            wk.alive,
		ConsecutiveFails: wk.fails,
		Dispatched:       wk.dispatched,
		Failures:         wk.failures,
		LastError:        wk.lastErr,
	}
}

// probeDue reports whether the worker's backoff allows a probe now.
func (wk *worker) probeDue(now time.Time) bool {
	wk.mu.Lock()
	defer wk.mu.Unlock()
	return !now.Before(wk.nextProbe)
}

// Start launches the background health loop: every ProbeInterval, every
// worker whose backoff has elapsed is probed, so dead workers rejoin the
// rendezvous ring without waiting for a dispatch to risk a cell on them.
// Stop (or never calling Start) leaves health entirely dispatch-driven.
func (co *Coordinator) Start(interval time.Duration) {
	if interval <= 0 {
		interval = co.probeBase
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-co.stop:
				return
			case <-t.C:
				co.ProbeDue()
			}
		}
	}()
}

// Stop terminates the background health loop.
func (co *Coordinator) Stop() {
	co.stopOnce.Do(func() { close(co.stop) })
}

// ProbeDue probes every worker whose backoff has elapsed.
func (co *Coordinator) ProbeDue() {
	now := co.now()
	for _, wk := range co.workers {
		if wk.probeDue(now) {
			co.probeWorker(wk)
		}
	}
}

// ProbeAll probes every worker immediately, ignoring backoff. Tests and
// operators (via a fresh dispatch burst) use it to re-admit revived
// workers deterministically.
func (co *Coordinator) ProbeAll() {
	for _, wk := range co.workers {
		co.probeWorker(wk)
	}
}

// probeWorker checks one worker's liveness AND compatibility: /healthz
// must answer 200 and /identz must report the coordinator's own result
// schema. A live worker speaking a different schema is deliberately kept
// out of the ring — merging its documents would silently corrupt the
// response — and keeps backing off like a dead one.
func (co *Coordinator) probeWorker(wk *worker) {
	id, err := co.fetchIdentity(wk)
	if err != nil {
		co.noteFailure(wk, fmt.Errorf("probe: %w", err))
		return
	}
	if id.ResultSchema != experiment.SchemaVersion {
		co.noteFailure(wk, fmt.Errorf("probe: worker %s speaks result schema %d, coordinator needs %d", wk.url, id.ResultSchema, experiment.SchemaVersion))
		return
	}
	if err := co.checkHealthz(wk); err != nil {
		co.noteFailure(wk, fmt.Errorf("probe: %w", err))
		return
	}
	wk.noteSuccess()
}

func (co *Coordinator) fetchIdentity(wk *worker) (server.Identity, error) {
	var id server.Identity
	resp, err := co.httpc.Get(wk.url + "/identz")
	if err != nil {
		return id, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return id, err
	}
	if resp.StatusCode != http.StatusOK {
		return id, fmt.Errorf("GET %s/identz: %s", wk.url, resp.Status)
	}
	if err := json.Unmarshal(body, &id); err != nil {
		return id, fmt.Errorf("GET %s/identz: bad identity: %w", wk.url, err)
	}
	return id, nil
}

func (co *Coordinator) checkHealthz(wk *worker) error {
	resp, err := co.httpc.Get(wk.url + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s/healthz: %s", wk.url, resp.Status)
	}
	return nil
}
