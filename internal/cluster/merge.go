package cluster

import (
	"sync"

	"smtfetch/internal/experiment"
)

// runOrdered executes fetch over every cell on `jobs` workers and emits
// the results strictly in cell order, buffering at most `window` results
// that are in flight or waiting for an earlier cell to finish. It is the
// streamed replacement for run-everything-then-sort: the emit callback
// sees results exactly as a sorted batch would have ordered them, but
// memory stays bounded by the window regardless of grid size.
//
// The window also acts as dispatch flow control: cell i+window is not
// handed to a worker until cell i has been emitted, so one slow cell at
// the head throttles the fleet instead of letting completed results pile
// up without bound behind it.
//
// An emit error stops further writing but still drains every in-flight
// fetch (workers must not leak); the first emit error is returned.
func runOrdered(cells []experiment.Cell, jobs, window int, fetch func(experiment.Cell) experiment.Result, emit func(experiment.Result) error) error {
	if len(cells) == 0 {
		return nil
	}
	if jobs > len(cells) {
		jobs = len(cells)
	}
	if jobs < 1 {
		jobs = 1
	}
	if window < jobs {
		window = jobs
	}

	type indexed struct {
		i int
		r experiment.Result
	}
	// outstanding counts dispatched-but-not-yet-emitted cells; the feeder
	// acquires before handing an index out, the emit loop releases.
	outstanding := make(chan struct{}, window)
	indices := make(chan int)
	results := make(chan indexed)

	go func() {
		for i := range cells {
			outstanding <- struct{}{}
			indices <- i
		}
		close(indices)
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results <- indexed{i, fetch(cells[i])}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder buffer: results arrive in completion order, leave in cell
	// order. Because indices are dispatched in order, the next-to-emit
	// cell is always already dispatched, so progress is guaranteed.
	pending := make(map[int]experiment.Result, window)
	next := 0
	var emitErr error
	for ir := range results {
		pending[ir.i] = ir.r
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if emitErr == nil {
				emitErr = emit(r)
			}
			<-outstanding
			next++
		}
	}
	return emitErr
}
