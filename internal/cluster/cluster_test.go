package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"smtfetch/internal/cluster"
	"smtfetch/internal/cluster/clustertest"
	"smtfetch/internal/server"
)

// paperGrid is the acceptance grid: all 7 fetch policies × 2 workloads,
// 14 cells, short phases.
func paperGrid() server.SweepRequest {
	return server.SweepRequest{
		Workloads: []string{"2_MEM", "2_MIX"},
		Engines:   []string{"stream"},
		Policies: []string{
			"ICOUNT.1.8", "RR.1.8", "BRCOUNT.1.8", "MISSCOUNT.1.8",
			"IQPOSN.1.8", "STALL.1.8", "FLUSH.1.8",
		},
		Seeds:         []uint64{1},
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
	}
}

// TestClusterByteIdenticalToLocal is the tentpole oracle on a healthy
// fleet: the coordinator's merged document over 3 workers is
// byte-identical to a local `smtfetch sweep`, and the fleet simulated
// each of the 14 cells exactly once (summed worker cache misses).
func TestClusterByteIdenticalToLocal(t *testing.T) {
	c := clustertest.Start(t, 3, clustertest.Options{})
	got := c.MustSweep(t, paperGrid())
	want := clustertest.LocalRun(t, paperGrid())
	clustertest.AssertIdentical(t, got, want, "healthy 3-worker fleet")
	if n := c.TotalMisses(); n != 14 {
		t.Fatalf("fleet simulated %d cells, want exactly 14", n)
	}
	// The shard was real: no single worker ran the whole grid.
	for i, w := range c.Workers {
		if m := w.CacheStats().Misses; m == 14 {
			t.Fatalf("worker %d simulated all 14 cells — no sharding happened", i)
		}
	}
}

// TestClusterAsyncJobByteIdentical drives the coordinator's job path
// (202 + GET /jobs/{id} polling, same protocol as a worker): forced-async
// grids merge to the same bytes as local.
func TestClusterAsyncJobByteIdentical(t *testing.T) {
	c := clustertest.Start(t, 2, clustertest.Options{
		Cluster: cluster.Config{SyncCellLimit: -1},
	})
	got := c.MustSweep(t, paperGrid())
	want := clustertest.LocalRun(t, paperGrid())
	clustertest.AssertIdentical(t, got, want, "async job path")
	if n := c.TotalMisses(); n != 14 {
		t.Fatalf("fleet simulated %d cells, want 14", n)
	}
}

// TestClusterRedispatchAfterKill kills the first worker to receive a
// dispatch — before the request reaches it — and requires the merged
// document to stay byte-identical, with every cell still simulated
// exactly once (the killed request never reached a simulator, and its
// cell was re-dispatched in rendezvous order to a survivor).
func TestClusterRedispatchAfterKill(t *testing.T) {
	c := clustertest.Start(t, 3, clustertest.Options{})
	c.Transport.Script(&clustertest.Rule{Path: "/sweep", Ordinal: 1, Fault: clustertest.FaultKill})

	got := c.MustSweep(t, paperGrid())
	want := clustertest.LocalRun(t, paperGrid())
	clustertest.AssertIdentical(t, got, want, "worker killed on first dispatch")
	if n := c.TotalMisses(); n != 14 {
		t.Fatalf("fleet simulated %d cells, want 14 (kill was pre-forward)\nlog:\n%s", n, strings.Join(c.Transport.Log(), "\n"))
	}

	// The coordinator noticed: exactly one worker is marked dead with a
	// recorded failure.
	dead := 0
	for _, ws := range c.Coordinator.ClusterStats().Workers {
		if !ws.Alive {
			dead++
			if ws.Failures == 0 || ws.LastError == "" {
				t.Fatalf("dead worker has no recorded failure: %+v", ws)
			}
		}
	}
	if dead != 1 {
		t.Fatalf("%d workers marked dead, want 1\nstats: %+v", dead, c.Coordinator.ClusterStats())
	}
}

// TestClusterRedispatchAcrossFaultKinds throws one transient connection
// reset, one injected 500, and one synthetic timeout at the first three
// dispatches: every fault path must end in a clean re-dispatch and a
// byte-identical merged document, still with no double simulation.
func TestClusterRedispatchAcrossFaultKinds(t *testing.T) {
	c := clustertest.Start(t, 3, clustertest.Options{})
	// Each fault targets a DIFFERENT cell (matched by the policy name in
	// the dispatch body), so every faulted cell has two clean workers
	// left and must recover — three faults racing onto one cell's three
	// successive retries would exhaust its whole rank order.
	c.Transport.Script(
		&clustertest.Rule{Path: "/sweep", BodyContains: "BRCOUNT", Ordinal: 1, Fault: clustertest.FaultReset},
		&clustertest.Rule{Path: "/sweep", BodyContains: "IQPOSN", Ordinal: 1, Fault: clustertest.Fault5xx},
		&clustertest.Rule{Path: "/sweep", BodyContains: "FLUSH", Ordinal: 1, Fault: clustertest.FaultHang},
	)
	got := c.MustSweep(t, paperGrid())
	want := clustertest.LocalRun(t, paperGrid())
	clustertest.AssertIdentical(t, got, want, "reset+5xx+timeout faults")
	if n := c.TotalMisses(); n != 14 {
		t.Fatalf("fleet simulated %d cells, want 14\nlog:\n%s", n, strings.Join(c.Transport.Log(), "\n"))
	}
}

// TestClusterProbeRevivesWorker: a killed worker is demoted, then — after
// Revive — a probe round restores it to the ring.
func TestClusterProbeRevivesWorker(t *testing.T) {
	c := clustertest.Start(t, 2, clustertest.Options{})
	c.Kill(0)
	c.Coordinator.ProbeAll()
	st := c.Coordinator.ClusterStats()
	if st.Workers[0].Alive {
		t.Fatalf("killed worker still alive after probe: %+v", st.Workers[0])
	}
	if !st.Workers[1].Alive {
		t.Fatalf("healthy worker demoted: %+v", st.Workers[1])
	}

	c.Revive(0)
	c.Coordinator.ProbeAll()
	st = c.Coordinator.ClusterStats()
	if !st.Workers[0].Alive {
		t.Fatalf("revived worker not re-admitted: %+v", st.Workers[0])
	}
}

// TestClusterSchemaMismatchKeptOut: a reachable worker speaking the wrong
// result schema is demoted by the identity probe and never dispatched to.
func TestClusterSchemaMismatchKeptOut(t *testing.T) {
	c := clustertest.Start(t, 1, clustertest.Options{})

	var sweeps int
	var mu sync.Mutex
	impostor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/identz":
			json.NewEncoder(w).Encode(server.Identity{Service: server.ServiceName, ResultSchema: 999})
		case "/healthz":
			w.WriteHeader(http.StatusOK)
		default:
			mu.Lock()
			sweeps++
			mu.Unlock()
			http.Error(w, "impostor", http.StatusInternalServerError)
		}
	}))
	t.Cleanup(impostor.Close)

	co, err := cluster.New(cluster.Config{Workers: []string{c.Workers[0].URL, impostor.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Stop)
	co.ProbeAll()

	var impostorStatus cluster.WorkerStatus
	for _, ws := range co.ClusterStats().Workers {
		if ws.URL == impostor.URL {
			impostorStatus = ws
		}
	}
	if impostorStatus.Alive {
		t.Fatalf("schema-mismatched worker admitted: %+v", impostorStatus)
	}
	if !strings.Contains(impostorStatus.LastError, "schema") {
		t.Fatalf("demotion reason %q does not name the schema mismatch", impostorStatus.LastError)
	}

	front := httptest.NewServer(co)
	t.Cleanup(front.Close)
	cl := &server.Client{BaseURL: front.URL}
	got, err := cl.Sweep(paperGrid())
	if err != nil {
		t.Fatalf("sweep with impostor in fleet: %v", err)
	}
	clustertest.AssertIdentical(t, got, clustertest.LocalRun(t, paperGrid()), "impostor quarantined")
	mu.Lock()
	defer mu.Unlock()
	if sweeps != 0 {
		t.Fatalf("impostor received %d sweep dispatches, want 0", sweeps)
	}
}

// TestClusterConcurrentOverlappingGrids is the acceptance single-flight
// property: two overlapping grids posted concurrently simulate each
// DISTINCT cell exactly once across the whole fleet — the summed worker
// cache misses equal the distinct-key count no matter how the requests
// interleave (coordinator flight map, worker flight map, and worker
// caches each close a different race).
func TestClusterConcurrentOverlappingGrids(t *testing.T) {
	c := clustertest.Start(t, 3, clustertest.Options{})

	gridA := paperGrid() // 7 policies × 2 workloads = 14 cells
	gridB := paperGrid()
	gridB.Policies = gridB.Policies[3:] // 4 policies × 2 workloads, all shared with A
	gridB.Workloads = gridB.Workloads[:1]
	const distinct = 14 // union: gridB ⊂ gridA

	var wg sync.WaitGroup
	blobs := make([][]byte, 2)
	errs := make([]error, 2)
	for i, req := range []server.SweepRequest{gridA, gridB} {
		wg.Add(1)
		go func(i int, req server.SweepRequest) {
			defer wg.Done()
			blobs[i], errs[i] = c.Sweep(req)
		}(i, req)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent grid %d: %v", i, err)
		}
	}
	clustertest.AssertIdentical(t, blobs[0], clustertest.LocalRun(t, gridA), "concurrent grid A")
	clustertest.AssertIdentical(t, blobs[1], clustertest.LocalRun(t, gridB), "concurrent grid B")
	if n := c.TotalMisses(); n != distinct {
		t.Fatalf("fleet simulated %d cells for %d distinct keys\nlog:\n%s", n, distinct, strings.Join(c.Transport.Log(), "\n"))
	}
}

// TestClusterWarmForkAffinity: warm-fork sweeps route whole warm groups
// to single workers, so each group's checkpoint is built exactly once
// fleet-wide — summed snapshot stores equal the group count — and the
// merged document still matches a local fork run byte-for-byte.
func TestClusterWarmForkAffinity(t *testing.T) {
	req := server.SweepRequest{
		Workloads:     []string{"2_MEM", "2_MIX"},
		Engines:       []string{"stream"},
		Policies:      []string{"ICOUNT.1.8", "RR.1.8", "STALL.1.8"},
		Seeds:         []uint64{1},
		WarmupInstrs:  2_000,
		MeasureInstrs: 5_000,
		WarmFork:      "fork",
	}
	const groups = 2 // one warm group per workload: same engine, same .1.8 shape, same seed

	c := clustertest.Start(t, 3, clustertest.Options{})
	got := c.MustSweep(t, req)
	clustertest.AssertIdentical(t, got, clustertest.LocalRun(t, req), "warm-fork sweep")

	var stores uint64
	for _, w := range c.Workers {
		stores += w.CacheStats().SnapshotStores
	}
	if stores != groups {
		t.Fatalf("fleet built %d warm checkpoints, want %d (one per group)", stores, groups)
	}
}

// TestClusterEndpoints smoke-tests the coordinator's observability
// surface: /healthz answers ok and /cluster/stats lists every worker.
func TestClusterEndpoints(t *testing.T) {
	c := clustertest.Start(t, 2, clustertest.Options{})
	code, body, err := c.Get("/healthz")
	if err != nil || code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, %v", code, err)
	}
	code, body, err = c.Get("/cluster/stats")
	if err != nil || code != http.StatusOK {
		t.Fatalf("GET /cluster/stats = %d, %v", code, err)
	}
	var st cluster.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad /cluster/stats body: %v\n%s", err, body)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("/cluster/stats lists %d workers, want 2", len(st.Workers))
	}
	for _, ws := range st.Workers {
		if !ws.Alive {
			t.Fatalf("fresh worker not alive: %+v", ws)
		}
	}
}
