// Package pipeline provides the out-of-order back-end structures shared by
// all SMT threads: the micro-op record, the shared reorder buffer with
// per-thread ordering, the issue queues, physical register free lists, and
// functional-unit pools. Table 3 sizes them: 256-entry ROB, 32-entry
// int/ls/fp queues, 384+384 registers, 6 int / 4 ld-st / 3 fp units.
package pipeline

import (
	"smtfetch/internal/ftq"
	"smtfetch/internal/isa"
)

// UOp is one in-flight micro-op. It embeds the dynamic instruction and adds
// the pipeline bookkeeping the simulator needs.
type UOp struct {
	isa.Instruction
	// Info carries branch-prediction metadata (nil for most
	// instructions). It points into Req's inline storage: whenever Info is
	// non-nil, Req names the pooled fetch request that owns the record and
	// on which this uop holds one reference (taken at fetch, dropped when
	// the uop commits or is squashed). Req is nil exactly when Info is.
	Info *ftq.BranchInfo //smtfetch:transient re-linked by (request, branch-slot) table index on restore
	// Req is the pooled fetch request Info points into; see Info.
	Req *ftq.Request //smtfetch:transient re-linked by request-table index on restore
	// Thread is the hardware context id.
	Thread int
	// Ghost marks wrong-path micro-ops; they consume resources but are
	// squashed rather than committed.
	Ghost bool
	// GSeq is a global, monotonically increasing age stamp; within a
	// thread it follows program (path) order.
	//
	// The embedded Instruction carries PathSeq, the instruction's position
	// in its source stream, against which dependence distances are
	// resolved. (UOp used to declare a second PathSeq field that shadowed
	// the instruction's and was never written, which silently disabled the
	// dependence ring.)
	GSeq uint64

	// SavedDep1/SavedDep2 preserve the instruction's original dependence
	// distances, captured at first fetch: the issue stage clears
	// Dep1/Dep2 as they are satisfied (readiness is monotonic, so the
	// check is memoized), and a FLUSH replay must restore them so a
	// refetched consumer waits for its refetched producer again.
	SavedDep1, SavedDep2 uint16

	// FetchedAt is the cycle the uop entered the fetch buffer; EnterFront
	// the cycle it left the fetch buffer into decode.
	FetchedAt  uint64
	EnterFront uint64
	// DecodeAt is the cycle decode inspects the uop (misfetch recovery
	// point).
	DecodeAt uint64

	// Dispatched/Issued/Done track back-end progress; ReadyAt is the
	// cycle the result becomes available once issued.
	Dispatched bool
	Issued     bool
	Done       bool
	ReadyAt    uint64

	// InICount marks uops currently counted by the ICOUNT policy.
	InICount bool
	// InBRCount marks branch uops currently counted as unresolved by the
	// BRCOUNT policy (fetched, not yet executed).
	InBRCount bool
	// DMiss marks issued loads whose D-cache miss is still outstanding
	// (the MISSCOUNT policy's signal).
	DMiss bool
	// LongMiss marks issued loads identified as long-latency (L2 miss);
	// the STALL and FLUSH policies gate their thread's fetch on it.
	LongMiss bool
	// Squashed marks uops removed by misprediction recovery.
	Squashed bool //smtfetch:transient squashed uops are canonicalized out of the stream
	// Flushed marks uops removed from the pipeline by the FLUSH policy;
	// unlike squashed uops they stay alive in their thread's replay queue
	// (keeping their fetch-request reference) and re-enter the fetch
	// buffer when the triggering load's miss resolves.
	Flushed bool
	// Recovered marks resolve-stage branches whose recovery already ran.
	Recovered bool
}

// QueueKind maps an instruction class to its issue queue.
//
//smtfetch:hotpath
func QueueKind(c isa.Class) int {
	switch c {
	case isa.Load, isa.Store:
		return QLoadStore
	case isa.FPOp:
		return QFloat
	default:
		return QInt
	}
}

// Issue-queue indices.
const (
	QInt = iota
	QLoadStore
	QFloat
	NumQueues
)
