package pipeline

// IssueQueue is one of the three shared instruction queues (int,
// load/store, fp). Entries stay from dispatch until issue; because
// dispatch is in order, the backing slice is age-ordered, which makes
// oldest-first selection a linear scan.
type IssueQueue struct {
	cap     int
	entries []*UOp
}

// NewIssueQueue returns an empty queue with the given capacity.
func NewIssueQueue(capacity int) *IssueQueue {
	return &IssueQueue{cap: capacity}
}

// Cap returns the queue capacity.
//
//smtfetch:hotpath
func (q *IssueQueue) Cap() int { return q.cap }

// Len returns the occupancy.
//
//smtfetch:hotpath
func (q *IssueQueue) Len() int { return len(q.entries) }

// LenOf returns the occupancy owned by thread t.
func (q *IssueQueue) LenOf(t int) int {
	n := 0
	for _, u := range q.entries {
		if u.Thread == t {
			n++
		}
	}
	return n
}

// Full reports whether the queue is at capacity.
//
//smtfetch:hotpath
func (q *IssueQueue) Full() bool { return len(q.entries) >= q.cap }

// Add dispatches u into the queue; it reports false when full.
//
//smtfetch:hotpath
func (q *IssueQueue) Add(u *UOp) bool {
	if q.Full() {
		return false
	}
	//smtfetch:allowalloc Full() bounds the queue at cap; capacity converges to cap after warmup
	q.entries = append(q.entries, u)
	return true
}

// Scan calls fn on each entry oldest-first; fn returns true to remove the
// entry (issued). Squashed and flushed entries are dropped during the scan.
//
//smtfetch:hotpath
func (q *IssueQueue) Scan(fn func(u *UOp) bool) {
	out := q.entries[:0]
	for _, u := range q.entries {
		if u.Squashed || u.Flushed {
			continue
		}
		if fn(u) {
			continue
		}
		//smtfetch:allowalloc in-place compaction: out aliases entries[:0], so append never exceeds the existing capacity
		out = append(out, u)
	}
	// Clear the tail so removed uops don't leak.
	for i := len(out); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = out
}

// DropSquashed removes squashed (and flushed) entries without issuing
// anything.
//
//smtfetch:hotpath
func (q *IssueQueue) DropSquashed() {
	//smtfetch:allowalloc non-escaping closure: Scan calls it inline and does not retain it (escape gate verifies)
	q.Scan(func(*UOp) bool { return false })
}

// At returns the i-th oldest entry (0 = head). Entries are age-ordered
// because dispatch is in order; the IQPOSN policy uses this to measure
// head proximity without a callback.
//
//smtfetch:hotpath
func (q *IssueQueue) At(i int) *UOp { return q.entries[i] }

// Each calls fn on every entry oldest-first without side effects (used by
// invariant checks).
func (q *IssueQueue) Each(fn func(u *UOp)) {
	for _, u := range q.entries {
		fn(u)
	}
}

// RegFile is a physical register free list (just a counter: the simulator
// never tracks values).
type RegFile struct {
	total int
	free  int
}

// NewRegFile returns a register file with n registers, of which `reserved`
// are considered permanently allocated as architectural state (32 per
// thread).
func NewRegFile(n, reserved int) *RegFile {
	free := n - reserved
	if free < 0 {
		free = 0
	}
	return &RegFile{total: n, free: free}
}

// Free returns the number of allocatable registers.
//
//smtfetch:hotpath
func (r *RegFile) Free() int { return r.free }

// Alloc takes one register; it reports false when none are free.
//
//smtfetch:hotpath
func (r *RegFile) Alloc() bool {
	if r.free <= 0 {
		return false
	}
	r.free--
	return true
}

// Release returns one register to the free list.
//
//smtfetch:hotpath
func (r *RegFile) Release() {
	if r.free < r.total {
		r.free++
	}
}

// FUPool models a class of pipelined functional units as a per-cycle issue
// budget.
type FUPool struct {
	count int
	used  int
	cycle uint64
}

// NewFUPool returns a pool of n units.
func NewFUPool(n int) *FUPool { return &FUPool{count: n} }

// TryIssue consumes one unit for the given cycle; it reports false when
// all units are busy this cycle.
func (p *FUPool) TryIssue(now uint64) bool {
	if p.cycle != now {
		p.cycle = now
		p.used = 0
	}
	if p.used >= p.count {
		return false
	}
	p.used++
	return true
}
