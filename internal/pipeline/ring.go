package pipeline

// UOpRing is a growable FIFO of uops backed by a power-of-two ring buffer.
// The simulator's per-cycle buffers (fetch buffer, decode/rename pipe, the
// ROB's per-thread FIFOs) pop from the head every cycle; a slice-based queue
// either shifts elements or walks its backing array forward and reallocates,
// both of which show up in the cycle loop. The ring does neither: once grown
// to the high-water mark it never allocates again.
type UOpRing struct {
	buf  []*UOp
	head int
	n    int
}

// NewUOpRing returns an empty ring with capacity for at least capHint uops.
func NewUOpRing(capHint int) *UOpRing {
	c := 8
	for c < capHint {
		c <<= 1
	}
	return &UOpRing{buf: make([]*UOp, c)}
}

// Len returns the number of queued uops.
//
//smtfetch:hotpath
func (r *UOpRing) Len() int { return r.n }

// At returns the i-th oldest uop (0 = head). It panics on out-of-range
// indices, like a slice.
//
//smtfetch:hotpath
func (r *UOpRing) At(i int) *UOp {
	if i < 0 || i >= r.n {
		panic("pipeline: UOpRing index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Push appends u at the tail, growing the ring if full.
//
//smtfetch:hotpath
func (r *UOpRing) Push(u *UOp) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = u
	r.n++
}

// PopHead removes and returns the oldest uop, or nil when empty.
//
//smtfetch:hotpath
func (r *UOpRing) PopHead() *UOp {
	if r.n == 0 {
		return nil
	}
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return u
}

// PopTail removes and returns the youngest uop, or nil when empty.
//
//smtfetch:hotpath
func (r *UOpRing) PopTail() *UOp {
	if r.n == 0 {
		return nil
	}
	i := (r.head + r.n - 1) & (len(r.buf) - 1)
	u := r.buf[i]
	r.buf[i] = nil
	r.n--
	return u
}

// Filter keeps only the uops for which keep returns true, preserving order
// and compacting in place.
//
//smtfetch:hotpath
func (r *UOpRing) Filter(keep func(u *UOp) bool) {
	mask := len(r.buf) - 1
	w := 0
	for i := 0; i < r.n; i++ {
		u := r.buf[(r.head+i)&mask]
		if keep(u) {
			r.buf[(r.head+w)&mask] = u
			w++
		}
	}
	for i := w; i < r.n; i++ {
		r.buf[(r.head+i)&mask] = nil
	}
	r.n = w
}

// Clear empties the ring.
func (r *UOpRing) Clear() {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&mask] = nil
	}
	r.head, r.n = 0, 0
}

//smtfetch:hotpath
func (r *UOpRing) grow() {
	//smtfetch:allowalloc ring doubling: amortized one-time growth to the high-water mark, then never again
	bigger := make([]*UOp, 2*len(r.buf))
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		bigger[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = bigger
	r.head = 0
}
