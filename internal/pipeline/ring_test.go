package pipeline

import (
	"math/rand"
	"testing"
)

// TestUOpRingMatchesSliceModel drives a ring and a reference slice through
// the same randomized operation sequence (fixed seed) and requires
// identical observable state throughout, including across growth.
func TestUOpRingMatchesSliceModel(t *testing.T) {
	r := NewUOpRing(2)
	var model []*UOp
	rng := rand.New(rand.NewSource(42))
	next := 0

	check := func(op string) {
		t.Helper()
		if r.Len() != len(model) {
			t.Fatalf("%s: Len = %d, model %d", op, r.Len(), len(model))
		}
		for i := range model {
			if r.At(i) != model[i] {
				t.Fatalf("%s: At(%d) mismatch", op, i)
			}
		}
	}

	for step := 0; step < 20_000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // push
			u := &UOp{GSeq: uint64(next)}
			next++
			r.Push(u)
			model = append(model, u)
			check("push")
		case op < 6: // pop head
			got := r.PopHead()
			var want *UOp
			if len(model) > 0 {
				want, model = model[0], model[1:]
			}
			if got != want {
				t.Fatal("PopHead mismatch")
			}
			check("popHead")
		case op < 7: // pop tail
			got := r.PopTail()
			var want *UOp
			if len(model) > 0 {
				want, model = model[len(model)-1], model[:len(model)-1]
			}
			if got != want {
				t.Fatal("PopTail mismatch")
			}
			check("popTail")
		case op < 9: // filter: keep uops with even GSeq half the time, odd otherwise
			parity := uint64(rng.Intn(2))
			keep := func(u *UOp) bool { return u.GSeq%2 == parity }
			r.Filter(keep)
			out := model[:0]
			for _, u := range model {
				if keep(u) {
					out = append(out, u)
				}
			}
			model = out
			check("filter")
		default: // occasional clear
			if rng.Intn(50) == 0 {
				r.Clear()
				model = model[:0]
				check("clear")
			}
		}
	}
}

func TestUOpRingEmptyPops(t *testing.T) {
	r := NewUOpRing(4)
	if r.PopHead() != nil || r.PopTail() != nil {
		t.Fatal("pop on empty ring returned a uop")
	}
	u := &UOp{}
	r.Push(u)
	if r.PopHead() != u || r.Len() != 0 {
		t.Fatal("single push/pop broken")
	}
}

// TestROBSquashYoungerOrder checks shared-count accounting and that squash
// removes exactly the strictly-younger tail of one thread.
func TestROBSquashYoungerOrder(t *testing.T) {
	rob := NewROB(16, 2)
	var t0 []*UOp
	for g := uint64(1); g <= 6; g++ {
		u := &UOp{GSeq: g, Thread: int(g % 2)}
		if !rob.Dispatch(u) {
			t.Fatal("dispatch failed below capacity")
		}
		if u.Thread == 0 {
			t0 = append(t0, u)
		}
	}
	// Thread 0 holds GSeq 2,4,6. Squash younger than 2: drops 4 and 6.
	squashed := rob.SquashYounger(0, 2, nil)
	if len(squashed) != 2 {
		t.Fatalf("squashed %d uops, want 2", len(squashed))
	}
	for _, u := range squashed {
		if !u.Squashed || u.Thread != 0 || u.GSeq <= 2 {
			t.Fatalf("bad squash victim %+v", u)
		}
	}
	if rob.Len() != 4 || rob.LenOf(0) != 1 || rob.LenOf(1) != 3 {
		t.Fatalf("occupancy after squash: total %d t0 %d t1 %d", rob.Len(), rob.LenOf(0), rob.LenOf(1))
	}
	if rob.Head(0) != t0[0] {
		t.Fatal("thread 0 head changed by tail squash")
	}
}
