package pipeline

// ROB is the shared reorder buffer: a single entry budget shared by all
// threads (Table 3: 256 entries), with per-thread FIFO order. This sharing
// is load-bearing for the paper's Figure 7 result: a stalled memory-bound
// thread's entries are entries no other thread can use.
type ROB struct {
	cap   int
	count int
	// perThread[t] holds thread t's in-flight uops in program order.
	perThread [][]*UOp
}

// NewROB returns an empty ROB with the given shared capacity and thread
// count.
func NewROB(capacity, threads int) *ROB {
	return &ROB{cap: capacity, perThread: make([][]*UOp, threads)}
}

// Cap returns the shared capacity.
func (r *ROB) Cap() int { return r.cap }

// Len returns the total occupancy.
func (r *ROB) Len() int { return r.count }

// LenOf returns thread t's occupancy.
func (r *ROB) LenOf(t int) int { return len(r.perThread[t]) }

// Full reports whether no entry is free.
func (r *ROB) Full() bool { return r.count >= r.cap }

// Dispatch appends u to its thread's FIFO; it reports false when the
// shared budget is exhausted.
func (r *ROB) Dispatch(u *UOp) bool {
	if r.count >= r.cap {
		return false
	}
	r.perThread[u.Thread] = append(r.perThread[u.Thread], u)
	r.count++
	return true
}

// Head returns thread t's oldest in-flight uop, or nil.
func (r *ROB) Head(t int) *UOp {
	q := r.perThread[t]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// PopHead removes thread t's oldest uop (commit).
func (r *ROB) PopHead(t int) {
	q := r.perThread[t]
	if len(q) == 0 {
		return
	}
	copy(q, q[1:])
	r.perThread[t] = q[:len(q)-1]
	r.count--
}

// SquashYounger removes and returns all thread-t uops younger than gseq
// (strictly greater), marking them squashed.
func (r *ROB) SquashYounger(t int, gseq uint64) []*UOp {
	q := r.perThread[t]
	// Entries are age-ordered; find the first younger one.
	i := len(q)
	for i > 0 && q[i-1].GSeq > gseq {
		i--
	}
	squashed := q[i:]
	for _, u := range squashed {
		u.Squashed = true
	}
	r.count -= len(squashed)
	r.perThread[t] = q[:i]
	return squashed
}
