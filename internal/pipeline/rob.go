package pipeline

// ROB is the shared reorder buffer: a single entry budget shared by all
// threads (Table 3: 256 entries), with per-thread FIFO order. This sharing
// is load-bearing for the paper's Figure 7 result: a stalled memory-bound
// thread's entries are entries no other thread can use.
type ROB struct {
	cap   int
	count int
	// perThread[t] holds thread t's in-flight uops in program order.
	perThread []*UOpRing
}

// NewROB returns an empty ROB with the given shared capacity and thread
// count.
func NewROB(capacity, threads int) *ROB {
	r := &ROB{cap: capacity, perThread: make([]*UOpRing, threads)}
	for t := range r.perThread {
		r.perThread[t] = NewUOpRing(capacity)
	}
	return r
}

// Cap returns the shared capacity.
//
//smtfetch:hotpath
func (r *ROB) Cap() int { return r.cap }

// Len returns the total occupancy.
//
//smtfetch:hotpath
func (r *ROB) Len() int { return r.count }

// LenOf returns thread t's occupancy.
func (r *ROB) LenOf(t int) int { return r.perThread[t].Len() }

// Full reports whether no entry is free.
//
//smtfetch:hotpath
func (r *ROB) Full() bool { return r.count >= r.cap }

// Dispatch appends u to its thread's FIFO; it reports false when the
// shared budget is exhausted.
//
//smtfetch:hotpath
func (r *ROB) Dispatch(u *UOp) bool {
	if r.count >= r.cap {
		return false
	}
	r.perThread[u.Thread].Push(u)
	r.count++
	return true
}

// Head returns thread t's oldest in-flight uop, or nil.
//
//smtfetch:hotpath
func (r *ROB) Head(t int) *UOp {
	q := r.perThread[t]
	if q.Len() == 0 {
		return nil
	}
	return q.At(0)
}

// PopHead removes thread t's oldest uop (commit).
//
//smtfetch:hotpath
func (r *ROB) PopHead(t int) {
	if r.perThread[t].PopHead() != nil {
		r.count--
	}
}

// Each calls fn on every in-flight uop, thread by thread, oldest-first
// within a thread (used by invariant checks).
func (r *ROB) Each(fn func(u *UOp)) {
	for _, q := range r.perThread {
		for i := 0; i < q.Len(); i++ {
			fn(q.At(i))
		}
	}
}

// SquashYounger removes all thread-t uops younger than gseq (strictly
// greater), marking them squashed and appending them to dst, which is
// returned. Passing a reused scratch slice keeps recovery allocation-free.
//
//smtfetch:hotpath
func (r *ROB) SquashYounger(t int, gseq uint64, dst []*UOp) []*UOp {
	q := r.perThread[t]
	for q.Len() > 0 && q.At(q.Len()-1).GSeq > gseq {
		u := q.PopTail()
		u.Squashed = true
		//smtfetch:allowalloc dst is the caller's reused squash scratch; capacity converges to the in-flight bound
		dst = append(dst, u)
		r.count--
	}
	return dst
}

// FlushYounger is SquashYounger for the FLUSH fetch policy: it removes all
// thread-t uops younger than gseq, marking them flushed (not squashed — the
// caller keeps them alive for replay) and appending them to dst
// youngest-first, which is returned.
//
//smtfetch:hotpath
func (r *ROB) FlushYounger(t int, gseq uint64, dst []*UOp) []*UOp {
	q := r.perThread[t]
	for q.Len() > 0 && q.At(q.Len()-1).GSeq > gseq {
		u := q.PopTail()
		u.Flushed = true
		//smtfetch:allowalloc dst is the caller's scratch, pre-sized to the flush bound
		dst = append(dst, u)
		r.count--
	}
	return dst
}
