package pipeline

// Warm-state snapshot accessors. The uop containers (ROB, issue queues,
// rings) are serialized by the core as index lists over its uop table, so
// this file only exposes the small amount of unexported scalar state that
// the core cannot reach: the register free-list counter. FUPool state is
// deliberately not checkpointed — its per-cycle issue budget self-resets
// on the first TryIssue of any later cycle, so a restored simulator
// observes identical behaviour with a zeroed pool.

// SetFree overwrites the free-register counter (snapshot restore only).
// n is clamped to [0, total].
func (r *RegFile) SetFree(n int) {
	if n < 0 {
		n = 0
	}
	if n > r.total {
		n = r.total
	}
	r.free = n
}
