package pipeline

import "smtfetch/internal/snap"

// Warm-state snapshot accessors. The uop containers (ROB, issue queues,
// rings) are serialized by the core as index lists over its uop table, so
// this file exposes the per-uop value codec plus the small amount of
// unexported scalar state that the core cannot reach: the register
// free-list counter. FUPool state is deliberately not checkpointed — its
// per-cycle issue budget self-resets on the first TryIssue of any later
// cycle, so a restored simulator observes identical behaviour with a
// zeroed pool.

// EncodeState serializes the uop by value. Info and Req are re-linked by
// table index by the core's snapshot section, and Squashed uops are
// canonicalized out of the stream entirely, so neither appears here.
func (u *UOp) EncodeState(w *snap.Writer) {
	u.Instruction.EncodeState(w)
	w.Int(u.Thread)
	w.Bool(u.Ghost)
	w.U64(u.GSeq)
	w.U16(u.SavedDep1)
	w.U16(u.SavedDep2)
	w.U64(u.FetchedAt)
	w.U64(u.EnterFront)
	w.U64(u.DecodeAt)
	w.Bool(u.Dispatched)
	w.Bool(u.Issued)
	w.Bool(u.Done)
	w.U64(u.ReadyAt)
	w.Bool(u.InICount)
	w.Bool(u.InBRCount)
	w.Bool(u.DMiss)
	w.Bool(u.LongMiss)
	w.Bool(u.Flushed)
	w.Bool(u.Recovered)
}

// DecodeState mirrors EncodeState onto a freshly allocated uop.
func (u *UOp) DecodeState(r *snap.Reader) {
	u.Instruction.DecodeState(r)
	u.Thread = r.Int()
	u.Ghost = r.Bool()
	u.GSeq = r.U64()
	u.SavedDep1 = r.U16()
	u.SavedDep2 = r.U16()
	u.FetchedAt = r.U64()
	u.EnterFront = r.U64()
	u.DecodeAt = r.U64()
	u.Dispatched = r.Bool()
	u.Issued = r.Bool()
	u.Done = r.Bool()
	u.ReadyAt = r.U64()
	u.InICount = r.Bool()
	u.InBRCount = r.Bool()
	u.DMiss = r.Bool()
	u.LongMiss = r.Bool()
	u.Flushed = r.Bool()
	u.Recovered = r.Bool()
}

// SetFree overwrites the free-register counter (snapshot restore only).
// n is clamped to [0, total].
func (r *RegFile) SetFree(n int) {
	if n < 0 {
		n = 0
	}
	if n > r.total {
		n = r.total
	}
	r.free = n
}
