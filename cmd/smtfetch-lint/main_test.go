package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the smtfetch-lint binary once per test run.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smtfetch-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building smtfetch-lint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "..", "..")
}

// TestVettoolCleanTree drives the binary through the go vet protocol over
// the real module — the acceptance criterion from the issue:
// `go vet -vettool=$(which smtfetch-lint) ./...` passes on a clean tree.
func TestVettoolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module under go vet; skipped in -short mode")
	}
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean tree failed: %v\n%s", err, out)
	}
}

// seededModule is a minimal module named smtfetch with one violation of
// each analyzer class: a pooled composite literal outside its pool
// (poolown), an allocation in a hotpath function (zeroalloc), a time.Now
// call in a simulator package (determinism), a snapshot struct with a
// written-but-never-restored field (statecov), an invisible config field
// (keycov), and a schema struct whose field set does not match the
// checked-in digest (schemaver).
var seededModule = map[string]string{
	"go.mod": "module smtfetch\n\ngo 1.24\n",
	"internal/pipeline/pipeline.go": `// Package pipeline stands in for the real pooled-uop package.
package pipeline

// UOp matches the pooled type the analyzers guard.
type UOp struct{ GSeq uint64 }
`,
	"internal/core/core.go": `// Package core seeds one violation per analyzer.
package core

import (
	"time"

	"smtfetch/internal/pipeline"
)

// Evil constructs a pooled uop by hand (poolown) and consults the wall
// clock (determinism).
func Evil() *pipeline.UOp {
	_ = time.Now()
	return &pipeline.UOp{}
}

// hot allocates on the cycle path (zeroalloc).
//
//smtfetch:hotpath
func hot() []int {
	return make([]int, 8)
}

// snapSeed is snapshot state whose b field is serialized one-way
// (statecov: written but never restored).
type snapSeed struct {
	a int
	b int
}

func (s *snapSeed) Snapshot() { _, _ = s.a, s.b }
func (s *snapSeed) Restore()  { _ = s.a }
`,
	"internal/config/config.go": `// Package config seeds a keycov violation: a knob invisible to the
// JSON both cache keys marshal.
package config

// Config matches the real config root the analyzers guard.
type Config struct {
	ROBSize int
	hidden  int
}
`,
	"internal/experiment/experiment.go": `// Package experiment seeds a schemaver violation: the version constant
// matches the registration but the field set does not.
package experiment

// SchemaVersion matches the registered version.
const SchemaVersion = 1

type resultsFile struct {
	Drifted bool ` + "`json:\"drifted\"`" + `
}
`,
}

// TestVettoolCatchesSeededViolations proves each analyzer fires through
// the go vet protocol: the seeded module must fail vet with all six
// analyzer classes represented.
func TestVettoolCatchesSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet on a scratch module; skipped in -short mode")
	}
	bin := buildLint(t)
	dir := t.TempDir()
	for name, content := range seededModule {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on the seeded-violation module:\n%s", out)
	}
	// One message substring per analyzer (vet prints bare diagnostics,
	// without analyzer names).
	for _, want := range []string{
		"UOp composite literal outside its pool",          // poolown
		"time.Now in a simulator package",                 // determinism
		"hotpath hot: make allocates",                     // zeroalloc
		"written by the snapshot path but never restored", // statecov
		"never reaches the cache keys",                    // keycov
		"changed without a version bump",                  // schemaver
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
}
