// Command smtfetch-lint runs the smtfetch invariants-as-lints suite
// (poolown, zeroalloc, determinism — see internal/lint).
//
// It is two tools in one binary:
//
//   - a go vet tool: `go vet -vettool=$(which smtfetch-lint) ./...`
//     drives it through the x/tools unitchecker protocol, with facts and
//     caching handled by the go command;
//   - a standalone checker: `smtfetch-lint ./...` loads packages from
//     source via internal/lint/driver and prints diagnostics, and
//     `smtfetch-lint -escape ./internal/...` runs the escape-analysis
//     gate (internal/lint/escape) instead of the analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"smtfetch/internal/lint"
	"smtfetch/internal/lint/driver"
	"smtfetch/internal/lint/escape"
)

func main() {
	// go vet protocol: the go command invokes the tool as
	// `tool -V=full`, `tool -flags`, or `tool [flags] unit.cfg`.
	// unitchecker.Main handles all three and never returns.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-V=") || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers()...)
		}
	}

	flags := flag.NewFlagSet("smtfetch-lint", flag.ExitOnError)
	escapeGate := flags.Bool("escape", false, "run the escape-analysis gate instead of the analyzers")
	allowlist := flags.String("escape-allowlist", "", "allowlist file for -escape (default: internal/lint/escape/allowlist.txt under the module root)")
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage:
  smtfetch-lint [packages]            run poolown/zeroalloc/determinism
  smtfetch-lint -escape [packages]    run the escape-analysis gate
  go vet -vettool=$(which smtfetch-lint) [packages]

Defaults to ./... when no packages are named.
`)
		flags.PrintDefaults()
	}
	if err := flags.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escapeGate {
		if err := escape.Gate(os.Stdout, ".", *allowlist, patterns...); err != nil {
			fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
			os.Exit(1)
		}
		return
	}

	prog, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smtfetch-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
