// Command smtfetch-lint runs the smtfetch invariants-as-lints suite
// (poolown, zeroalloc, determinism — see internal/lint).
//
// It is two tools in one binary:
//
//   - a go vet tool: `go vet -vettool=$(which smtfetch-lint) ./...`
//     drives it through the x/tools unitchecker protocol, with facts and
//     caching handled by the go command;
//   - a standalone checker: `smtfetch-lint ./...` loads packages from
//     source via internal/lint/driver and prints diagnostics (`-json`
//     emits them as a JSON array instead), and
//     `smtfetch-lint -escape ./internal/...` runs the escape-analysis
//     gate (internal/lint/escape) instead of the analyzers.
//
// Standalone exit codes are stable per failure class so CI and scripts
// can dispatch on them: 0 clean, 2 load/usage error, and when every
// finding comes from one analyzer, that analyzer's own code (poolown 3,
// zeroalloc 4, determinism 5, statecov 6, keycov 7, schemaver 8);
// findings from several analyzers exit 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"smtfetch/internal/lint"
	"smtfetch/internal/lint/driver"
	"smtfetch/internal/lint/escape"
)

// classExit maps each analyzer to its stable single-class exit code.
var classExit = map[string]int{
	"poolown":     3,
	"zeroalloc":   4,
	"determinism": 5,
	"statecov":    6,
	"keycov":      7,
	"schemaver":   8,
}

// jsonDiag is one diagnostic in -json output.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	// go vet protocol: the go command invokes the tool as
	// `tool -V=full`, `tool -flags`, or `tool [flags] unit.cfg`.
	// unitchecker.Main handles all three and never returns.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-V=") || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(lint.Analyzers()...)
		}
	}

	flags := flag.NewFlagSet("smtfetch-lint", flag.ExitOnError)
	escapeGate := flags.Bool("escape", false, "run the escape-analysis gate instead of the analyzers")
	allowlist := flags.String("escape-allowlist", "", "allowlist file for -escape (default: internal/lint/escape/allowlist.txt under the module root)")
	jsonOut := flags.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage:
  smtfetch-lint [-json] [packages]    run the analyzer suite
  smtfetch-lint -escape [packages]    run the escape-analysis gate
  go vet -vettool=$(which smtfetch-lint) [packages]

Defaults to ./... when no packages are named.
`)
		flags.PrintDefaults()
	}
	if err := flags.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *escapeGate {
		if err := escape.Gate(os.Stdout, ".", *allowlist, patterns...); err != nil {
			fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
			os.Exit(1)
		}
		return
	}

	prog, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
		os.Exit(2)
	}
	diags, err := prog.Run(lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "smtfetch-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "smtfetch-lint: %d finding(s)\n", len(diags))
		os.Exit(exitCode(diags))
	}
}

// exitCode returns the analyzer-specific code when every finding belongs
// to one class, else the generic 1.
func exitCode(diags []driver.Diagnostic) int {
	class := diags[0].Analyzer
	for _, d := range diags[1:] {
		if d.Analyzer != class {
			return 1
		}
	}
	if code, ok := classExit[class]; ok {
		return code
	}
	return 1
}
