package main

import (
	"fmt"
	"sort"

	"smtfetch/internal/bench"
	"smtfetch/internal/bpred"
	"smtfetch/internal/isa"
	"smtfetch/internal/prog"
)

func main() {
	p := prog.Build(bench.MustProfile("gzip"), 12345)
	s := p.NewStream(999)
	g := bpred.NewGShare(64*1024, 16)
	var ghr uint64
	type cnt struct{ n, hit uint64 }
	byClass := map[string]*cnt{}
	kinds := map[string]uint64{}
	blockVisits := map[isa.Addr]uint64{}
	var branches, taken uint64
	for i := 0; i < 2_000_000; i++ {
		in := *s.Peek(0)
		s.Advance(1)
		if !in.IsBranch() {
			continue
		}
		branches++
		if in.Taken {
			taken++
		}
		kinds[in.BrKind.String()]++
		blockVisits[in.PC]++
		if in.BrKind != isa.CondBranch {
			continue
		}
		cl := p.BranchClassAt(in.PC)
		c := byClass[cl]
		if c == nil {
			c = &cnt{}
			byClass[cl] = c
		}
		c.n++
		pred := g.Predict(in.PC, ghr)
		if pred == in.Taken {
			c.hit++
		}
		g.Update(in.PC, ghr, in.Taken)
		ghr = ghr<<1 | b2u(in.Taken)
	}
	fmt.Printf("dyn avg BB=%.2f taken=%.3f branches=%d staticTouched=%d\n",
		float64(s.Generated)/float64(branches), float64(taken)/float64(branches), branches, len(blockVisits))
	// top blocks
	type bv struct {
		pc isa.Addr
		n  uint64
	}
	var tops []bv
	for pc, n := range blockVisits {
		tops = append(tops, bv{pc, n})
	}
	sort.Slice(tops, func(a, b int) bool { return tops[a].n > tops[b].n })
	for i := 0; i < 5 && i < len(tops); i++ {
		fmt.Printf("  hot branch %#x n=%d kind=%s class=%s\n", tops[i].pc, tops[i].n, "", p.BranchClassAt(tops[i].pc))
	}
	var keys []string
	for k := range kinds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  kind %-6s %d\n", k, kinds[k])
	}
	keys = keys[:0]
	var tot, hits uint64
	for k := range byClass {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := byClass[k]
		tot += c.n
		hits += c.hit
		fmt.Printf("%-8s n=%-8d acc=%.4f\n", k, c.n, float64(c.hit)/float64(c.n))
	}
	fmt.Printf("TOTAL    n=%-8d acc=%.4f\n", tot, float64(hits)/float64(tot))
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
