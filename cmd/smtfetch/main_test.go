package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

func TestParseSweepFlagsWorkloadAlias(t *testing.T) {
	spec, err := parseSweepFlags([]string{"-workload", "2_MIX"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.sweep.Workloads, []string{"2_MIX"}) {
		t.Fatalf("Workloads = %v", spec.sweep.Workloads)
	}
	// -workloads wins over the alias when both are given.
	spec, err = parseSweepFlags([]string{"-workload", "2_MIX", "-workloads", "4_MIX,8_MIX"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.sweep.Workloads, []string{"4_MIX", "8_MIX"}) {
		t.Fatalf("Workloads = %v", spec.sweep.Workloads)
	}
}

func TestParseSweepFlagsGridAndRequestAgree(t *testing.T) {
	spec, err := parseSweepFlags([]string{
		"-engines", "stream", "-policies", "ICOUNT.1.8,RR.1.8",
		"-workloads", "2_MIX", "-seeds", "1,2",
		"-warmup", "1000", "-measure", "2000",
		"-server", "http://example:1234", "-o", "out.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.server != "http://example:1234" || spec.out != "out.json" {
		t.Fatalf("server/out = %q/%q", spec.server, spec.out)
	}
	want := server.SweepRequest{
		Engines:       []string{"stream"},
		Policies:      []string{"ICOUNT.1.8", "RR.1.8"},
		Workloads:     []string{"2_MIX"},
		Seeds:         []uint64{1, 2},
		WarmupInstrs:  1000,
		MeasureInstrs: 2000,
	}
	if !reflect.DeepEqual(spec.request, want) {
		t.Fatalf("request = %+v, want %+v", spec.request, want)
	}
	// The request and the local grid must describe the same cells.
	sw, err := spec.request.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	local, err := spec.sweep.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := sw.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("local cells %v != request cells %v", local, remote)
	}
}

func TestParseSweepFlagsErrors(t *testing.T) {
	if _, err := parseSweepFlags([]string{"-seeds", "banana"}); err == nil || !strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("bad seed: %v", err)
	}
	if _, err := parseSweepFlags([]string{"-policies", "ICOUNT"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if _, err := parseSweepFlags([]string{"-engines", "quantum"}); err == nil {
		t.Fatal("bad engine accepted")
	}
}

func TestParseSeedsFlag(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want []uint64
		err  string
	}{
		{raw: "", want: nil},
		// A bare integer is a replication count: seeds 1..N.
		{raw: "1", want: []uint64{1}},
		{raw: "3", want: []uint64{1, 2, 3}},
		// A comma anywhere makes it an explicit seed list; a trailing
		// comma is the escape hatch for a single explicit seed.
		{raw: "1,2,10", want: []uint64{1, 2, 10}},
		{raw: "7,", want: []uint64{7}},
		{raw: "0", err: "at least 1"},
		{raw: "banana", err: "bad seed"},
		{raw: "1,banana", err: "bad seed"},
		{raw: "1,1", err: "duplicate seed 1"},
		{raw: "1,2,3,2", err: "duplicate seed 2"},
		{raw: "5000", err: "explicit comma-separated list"},
	} {
		got, err := parseSeedsFlag(tc.raw)
		if tc.err != "" {
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Errorf("parseSeedsFlag(%q) err = %v, want substring %q", tc.raw, err, tc.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSeedsFlag(%q): %v", tc.raw, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseSeedsFlag(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}

func TestParseSweepFlagsSeedShorthand(t *testing.T) {
	spec, err := parseSweepFlags([]string{"-workloads", "2_MIX", "-seeds", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.sweep.Seeds, []uint64{1, 2, 3}) {
		t.Fatalf("Seeds = %v", spec.sweep.Seeds)
	}
	// Duplicates die at flag parse time, naming the flag — not deep in
	// Prepare after the user already waited on validation.
	if _, err := parseSweepFlags([]string{"-seeds", "1,1"}); err == nil ||
		!strings.Contains(err.Error(), "-seeds: duplicate seed 1") {
		t.Fatalf("duplicate seeds: %v", err)
	}
}

func TestParseAggregateArgs(t *testing.T) {
	for _, args := range [][]string{
		{"results.json", "-o", "agg.json"},
		{"-o", "agg.json", "results.json"},
	} {
		path, out, table, err := parseAggregateArgs(args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if path != "results.json" || out != "agg.json" || !table {
			t.Fatalf("%v -> path %q out %q table %v", args, path, out, table)
		}
	}
	if _, _, _, err := parseAggregateArgs(nil); err == nil {
		t.Fatal("no path accepted")
	}
	if _, _, _, err := parseAggregateArgs([]string{"a.json", "b.json"}); err == nil {
		t.Fatal("two paths accepted")
	}
}

func TestParseCompareArgsPathOrder(t *testing.T) {
	for _, args := range [][]string{
		{"old.json", "new.json", "-tol", "0.05"},
		{"-tol", "0.05", "old.json", "new.json"},
		{"old.json", "-tol", "0.05", "new.json"},
	} {
		paths, tol, err := parseCompareArgs(args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !reflect.DeepEqual(paths, []string{"old.json", "new.json"}) || tol != 0.05 {
			t.Fatalf("%v -> paths %v tol %v", args, paths, tol)
		}
	}
	if _, _, err := parseCompareArgs([]string{"only.json"}); err == nil {
		t.Fatal("single path accepted")
	}
	if _, _, err := parseCompareArgs([]string{"a.json", "b.json", "c.json"}); err == nil {
		t.Fatal("three paths accepted")
	}
}

func TestParseRunFlagsLabels(t *testing.T) {
	spec, err := parseRunFlags([]string{"-workload", "4_MIX"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.cell.Workload != "4_MIX" || spec.opts.Workload != "4_MIX" {
		t.Fatalf("workload label = %q / opts %q", spec.cell.Workload, spec.opts.Workload)
	}
	// Custom benchmark mixes get a distinct label and clear Workload.
	spec, err = parseRunFlags([]string{"-benchmarks", "loop, hash"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.cell.Workload != "custom:loop+hash" {
		t.Fatalf("custom label = %q", spec.cell.Workload)
	}
	if spec.opts.Workload != "" || !reflect.DeepEqual(spec.opts.Benchmarks, []string{"loop", "hash"}) {
		t.Fatalf("opts = %+v", spec.opts)
	}
	if spec.opts.Seed == 0 {
		t.Fatal("cell seed not derived")
	}
	if _, err := parseRunFlags([]string{"-engine", "quantum"}); err == nil {
		t.Fatal("bad engine accepted")
	}
}

// End-to-end -server dispatch: the CLI posts the grid to a sweep server
// and the file it writes is byte-identical to a local run's.
func TestSweepServerDispatchMatchesLocal(t *testing.T) {
	srv, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.json")
	remoteOut := filepath.Join(dir, "remote.json")
	grid := []string{
		"-workloads", "2_MIX", "-engines", "stream", "-policies", "ICOUNT.1.8,RR.1.8",
		"-warmup", "2000", "-measure", "5000", "-q", "-table=false",
	}
	if err := cmdSweep(append(grid, "-o", localOut)); err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	if err := cmdSweep(append(grid, "-server", ts.URL, "-o", remoteOut)); err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := os.ReadFile(remoteOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(local) != string(remote) {
		t.Fatalf("server-dispatched sweep differs from local:\n%s\nvs\n%s", local, remote)
	}
	if st := srv.CacheStats(); st.Misses != 2 || st.Stores != 2 {
		t.Fatalf("cache stats after dispatch = %+v", st)
	}

	// Fail-fast contract: an invalid grid or unwritable -o must error
	// before the server is asked to run anything.
	before := srv.CacheStats()
	bad := []string{"-workloads", "9_NOPE", "-server", ts.URL, "-q", "-table=false"}
	if err := cmdSweep(bad); err == nil {
		t.Fatal("unknown workload accepted in server mode")
	}
	unwritable := []string{
		"-workloads", "2_MIX", "-engines", "stream", "-policies", "ICOUNT.1.8",
		"-server", ts.URL, "-q", "-table=false", "-o", filepath.Join(dir, "absent", "out.json"),
	}
	if err := cmdSweep(unwritable); err == nil {
		t.Fatal("unwritable -o accepted in server mode")
	}
	if after := srv.CacheStats(); after != before {
		t.Fatalf("failed dispatches reached the server: %+v -> %+v", before, after)
	}
}

// Multi-seed end-to-end: `sweep -seeds 3 -agg-o` writes an aggregate file,
// and the standalone `aggregate` subcommand reproduces it byte-for-byte
// from the per-cell results — both are the same client-side Aggregate.
func TestSweepAggregateOutput(t *testing.T) {
	dir := t.TempDir()
	resOut := filepath.Join(dir, "results.json")
	aggOut := filepath.Join(dir, "agg.json")
	if err := cmdSweep([]string{
		"-workloads", "2_MIX", "-engines", "stream", "-policies", "ICOUNT.1.8",
		"-seeds", "3", "-warmup", "2000", "-measure", "5000",
		"-q", "-table=false", "-o", resOut, "-agg-o", aggOut,
	}); err != nil {
		t.Fatalf("sweep: %v", err)
	}

	groups, err := experiment.ReadAggregateJSONFile(aggOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.IPC.N != 3 || !reflect.DeepEqual(g.Seeds, []uint64{1, 2, 3}) {
		t.Fatalf("group = %+v", g)
	}
	if g.IPC.Mean <= 0 || g.IPC.CILow > g.IPC.Mean || g.IPC.CIHigh < g.IPC.Mean {
		t.Fatalf("inconsistent IPC summary: %+v", g.IPC)
	}

	replay := filepath.Join(dir, "replay.json")
	if err := cmdAggregate([]string{resOut, "-table=false", "-o", replay}); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	a, err := os.ReadFile(aggOut)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(replay)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("aggregate subcommand diverges from sweep -agg-o:\n%s\nvs\n%s", a, b)
	}
}
