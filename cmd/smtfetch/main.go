// Command smtfetch is the experiment driver for the SMT fetch-unit study:
//
//	smtfetch run     -workload 2_MIX -engine stream -policy ICOUNT.1.16
//	smtfetch sweep   -workloads 2_MIX,4_MIX -jobs 8 -o results.json
//	smtfetch list
//	smtfetch compare old.json new.json -tol 0.02
//
// `sweep` runs the engine×policy×workload×seed grid on a bounded worker
// pool and writes deterministically ordered JSON; `compare` diffs two such
// files and exits non-zero on IPC regressions beyond the tolerance, which
// makes it usable as a CI perf gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smtfetch"
	"smtfetch/internal/bench"
	"smtfetch/internal/experiment"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "smtfetch: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtfetch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: smtfetch <command> [flags]

commands:
  run      simulate a single cell and print its result
  sweep    run an engine x policy x workload x seed grid in parallel
  list     print the available engines, policies, workloads, benchmarks
  compare  diff two sweep results files and flag IPC regressions
  bench    measure simulator throughput on a fixed grid (perf trajectory)

run 'smtfetch <command> -h' for command flags.
`)
}

// simFlags registers the phase-length flags shared by run and sweep.
func simFlags(fs *flag.FlagSet) (warmup, warmupCycles, measure, maxCycles *uint64) {
	warmup = fs.Uint64("warmup", 0, "warm-up instructions per cell (0 = default 200k)")
	warmupCycles = fs.Uint64("warmup-cycles", 0, "extra cycle-based warm-up per cell after the instruction warm-up (0 = none)")
	measure = fs.Uint64("measure", 0, "measured instructions per cell (0 = default 1M)")
	maxCycles = fs.Uint64("maxcycles", 0, "cycle bound per phase (0 = default 50M)")
	return
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workload := fs.String("workload", "2_MIX", "Table 2 workload name")
	benchmarks := fs.String("benchmarks", "", "comma-separated per-thread benchmarks (overrides -workload)")
	engine := fs.String("engine", "gshare+BTB", "fetch engine")
	policy := fs.String("policy", "ICOUNT.1.8", "fetch policy (POLICY.T.W)")
	seed := fs.Uint64("seed", 1, "replication seed, matching sweep's -seeds axis")
	asJSON := fs.Bool("json", false, "emit the full stats snapshot as JSON")
	warmup, warmupCycles, measure, maxCycles := simFlags(fs)
	fs.Parse(args)

	eng, err := smtfetch.ParseEngine(*engine)
	if err != nil {
		return err
	}
	pol, err := smtfetch.ParseFetchPolicy(*policy)
	if err != nil {
		return err
	}
	// Label custom benchmark mixes distinctly so their results never match
	// a real workload cell's key in compare/merge.
	label := *workload
	if *benchmarks != "" {
		label = "custom:" + strings.Join(splitList(*benchmarks), "+")
	}
	// Derive the simulator seed exactly as a sweep would for this cell, so
	// `run -json` output is cell-for-cell comparable with sweep output.
	cell := experiment.Cell{Workload: label, Engine: eng, Policy: pol, Seed: *seed}
	opts := smtfetch.Options{
		Workload:      *workload,
		Engine:        eng,
		Policy:        pol,
		Seed:          experiment.CellSeed(cell),
		WarmupInstrs:  *warmup,
		WarmupCycles:  *warmupCycles,
		MeasureInstrs: *measure,
		MaxCycles:     *maxCycles,
	}
	if *benchmarks != "" {
		opts.Workload = ""
		opts.Benchmarks = splitList(*benchmarks)
	}
	res, err := smtfetch.Run(opts)
	if err != nil {
		return err
	}
	if *asJSON {
		snap := res.Stats.Snapshot()
		r := experiment.Result{
			Workload: label, Engine: eng.String(), Policy: pol.String(), Seed: *seed,
			IPC: res.IPC, IPFC: res.IPFC, CondAccuracy: res.CondAccuracy, Stats: &snap,
		}
		return experiment.WriteJSON(os.Stdout, []experiment.Result{r})
	}
	fmt.Printf("%s %s %s: IPC %.3f  IPFC %.3f  branch acc %.4f\n",
		label, eng, pol, res.IPC, res.IPFC, res.CondAccuracy)
	fmt.Print(res.Stats)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	engines := fs.String("engines", "", "comma-separated engines (default: all three)")
	policies := fs.String("policies", "", "comma-separated POLICY.T.W policies (default: the paper's four ICOUNT ones)")
	workloads := fs.String("workloads", "", "comma-separated workloads (default: all of Table 2); -workload is an alias")
	fs.String("workload", "", "alias for -workloads")
	seeds := fs.String("seeds", "", "comma-separated replication seeds (default: 1)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = NumCPU)")
	out := fs.String("o", "", "write results JSON to this file ('-' or empty = stdout)")
	table := fs.Bool("table", true, "print the aligned result table to stderr")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	warmup, warmupCycles, measure, maxCycles := simFlags(fs)
	fs.Parse(args)

	sw := experiment.Sweep{
		Jobs:          *jobs,
		WarmupInstrs:  *warmup,
		WarmupCycles:  *warmupCycles,
		MeasureInstrs: *measure,
		MaxCycles:     *maxCycles,
	}
	if *workloads == "" {
		*workloads = fs.Lookup("workload").Value.String()
	}
	for _, s := range splitList(*engines) {
		e, err := smtfetch.ParseEngine(s)
		if err != nil {
			return err
		}
		sw.Engines = append(sw.Engines, e)
	}
	for _, s := range splitList(*policies) {
		p, err := smtfetch.ParseFetchPolicy(s)
		if err != nil {
			return err
		}
		sw.Policies = append(sw.Policies, p)
	}
	sw.Workloads = splitList(*workloads)
	for _, s := range splitList(*seeds) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", s, err)
		}
		sw.Seeds = append(sw.Seeds, v)
	}
	if !*quiet {
		sw.OnResult = func(done, total int, r experiment.Result) {
			status := fmt.Sprintf("IPC %.3f", r.IPC)
			if r.Error != "" {
				status = "ERROR " + r.Error
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, r.Key(), status)
		}
	}

	// Validate before touching the output file, then open it before
	// running: a typo'd workload must not truncate an existing baseline,
	// and an unwritable path must fail in milliseconds, not after a
	// multi-hour grid.
	if err := sw.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	results, runErr := sw.Run()
	if results != nil && *table {
		fmt.Fprint(os.Stderr, experiment.Table(results))
	}
	if results != nil {
		if err := experiment.WriteJSON(w, results); err != nil {
			return err
		}
		if w != os.Stdout {
			fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), *out)
		}
	}
	return runErr
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)

	fmt.Println("engines:")
	for _, e := range smtfetch.Engines() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("policies (any POLICY.T.W combination is accepted, e.g. BRCOUNT.2.8):")
	for _, p := range smtfetch.Policies() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("paper fetch-policy grid (the default sweep axis):")
	for _, p := range smtfetch.FetchPolicies() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("workloads:")
	for _, w := range bench.Workloads() {
		fmt.Printf("  %-6s %-4s %s\n", w.Name, w.Class(), strings.Join(w.Benchmarks, ","))
	}
	fmt.Println("benchmarks:")
	for _, b := range bench.Names() {
		cl, _ := bench.BenchClass(b)
		fmt.Printf("  %-8s %s\n", b, cl)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 0.02, "relative IPC drop tolerated before flagging a regression")
	// Accept both "compare old new -tol x" and "compare -tol x old new".
	var paths []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		paths = append(paths, args[0])
		args = args[1:]
	}
	fs.Parse(args)
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		return fmt.Errorf("compare needs exactly two results files, got %d", len(paths))
	}
	oldRes, err := experiment.ReadJSONFile(paths[0])
	if err != nil {
		return err
	}
	newRes, err := experiment.ReadJSONFile(paths[1])
	if err != nil {
		return err
	}
	rep := experiment.Compare(oldRes, newRes, *tol)
	fmt.Print(rep)
	if rep.Regressions > 0 {
		return fmt.Errorf("%d IPC regressions beyond %.1f%% tolerance", rep.Regressions, 100**tol)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	workloads := fs.String("workloads", "", "comma-separated workloads (default: 2_MIX,4_MIX,8_MIX)")
	engines := fs.String("engines", "", "comma-separated engines (default: all three)")
	policies := fs.String("policies", "", "comma-separated POLICY.T.W policies (default: ICOUNT.1.8)")
	warmup := fs.Uint64("warmup", 0, "warm-up instructions per cell (0 = default 50k)")
	measure := fs.Uint64("measure", 0, "measured instructions per cell (0 = default 300k)")
	quick := fs.Bool("quick", false, "CI mode: 10k warm-up, 50k measured instructions")
	// The default output deliberately differs from the checked-in
	// BENCH_PR4.json baseline so a bare `bench -baseline ...` run cannot
	// clobber the reference it (or CI) compares against.
	out := fs.String("o", "BENCH_LOCAL.json", "write the perf report JSON to this file ('-' = stdout)")
	baseline := fs.String("baseline", "", "compare against this perf report and fail on regressions")
	tol := fs.Float64("tol", 0.25, "relative throughput drop tolerated vs -baseline (wall clock is machine-dependent)")
	allocTol := fs.Float64("alloc-tol", 0.01, "absolute allocs/cycle increase tolerated vs -baseline")
	fs.Parse(args)

	pb := experiment.PerfBench{
		Workloads:     splitList(*workloads),
		WarmupInstrs:  *warmup,
		MeasureInstrs: *measure,
	}
	for _, s := range splitList(*engines) {
		e, err := smtfetch.ParseEngine(s)
		if err != nil {
			return err
		}
		pb.Engines = append(pb.Engines, e)
	}
	for _, s := range splitList(*policies) {
		p, err := smtfetch.ParseFetchPolicy(s)
		if err != nil {
			return err
		}
		pb.Policies = append(pb.Policies, p)
	}
	if *quick {
		if pb.WarmupInstrs == 0 {
			pb.WarmupInstrs = 10_000
		}
		if pb.MeasureInstrs == 0 {
			pb.MeasureInstrs = 50_000
		}
	}
	// Read the baseline before running (fail fast on a bad path) and
	// before writing -o (the output may overwrite the baseline file).
	var base *experiment.PerfReport
	if *baseline != "" {
		var err error
		if base, err = experiment.ReadPerfJSONFile(*baseline); err != nil {
			return err
		}
	}
	pb.OnCell = func(done, total int, c experiment.PerfCell) {
		status := fmt.Sprintf("%.0f kcyc/s, %.3f allocs/cyc", c.KiloCyclesPerSec, c.AllocsPerCycle)
		if c.Error != "" {
			status = "ERROR " + c.Error
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s/%s: %s\n", done, total, c.Workload, c.Engine, c.Policy, status)
	}

	rep, runErr := pb.Run()
	if rep == nil {
		return runErr
	}
	fmt.Fprint(os.Stderr, experiment.PerfTable(rep))
	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := experiment.WritePerfJSON(w, rep); err != nil {
		return err
	}
	if w != os.Stdout {
		fmt.Fprintf(os.Stderr, "wrote perf report to %s\n", *out)
	}
	if runErr != nil {
		return runErr
	}
	if base != nil {
		cmp := experiment.PerfCompare(base, rep, *tol, *allocTol)
		fmt.Fprint(os.Stderr, cmp)
		if err := cmp.Err(); err != nil {
			return err
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
