// Command smtfetch is the experiment driver for the SMT fetch-unit study:
//
//	smtfetch run     -workload 2_MIX -engine stream -policy ICOUNT.1.16
//	smtfetch sweep   -workloads 2_MIX,4_MIX -jobs 8 -o results.json
//	smtfetch sweep   -server http://127.0.0.1:8080 -workloads 2_MIX -o results.json
//	smtfetch serve   -addr 127.0.0.1:8080 -cache-file cache.json
//	smtfetch coordinate -addr 127.0.0.1:8090 -workers http://10.0.0.1:8080,http://10.0.0.2:8080
//	smtfetch list
//	smtfetch compare old.json new.json -tol 0.02
//
// `sweep` runs the engine×policy×workload×seed grid on a bounded worker
// pool and writes deterministically ordered JSON; with -server it posts
// the same grid to a long-running `smtfetch serve` instance, whose
// content-keyed cache answers repeated cells without re-simulating.
// `compare` diffs two such files and exits non-zero on IPC regressions
// beyond the tolerance or on cells that newly errored, which makes it
// usable as a CI perf gate.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smtfetch"
	"smtfetch/internal/bench"
	"smtfetch/internal/cluster"
	"smtfetch/internal/experiment"
	"smtfetch/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "coordinate":
		err = cmdCoordinate(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "aggregate":
		err = cmdAggregate(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "smtfetch: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, "smtfetch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: smtfetch <command> [flags]

commands:
  run        simulate a single cell and print its result
  sweep      run an engine x policy x workload x seed grid in parallel
             (or dispatch it to a sweep server with -server URL)
  serve      long-running HTTP sweep service with a content-keyed result cache
  coordinate front a fleet of sweep servers as one service: cells shard
             across workers by rendezvous hashing, failures re-dispatch
  list       print the available engines, policies, workloads, benchmarks
  compare    diff two sweep results files and flag IPC regressions
             (multi-seed cell-groups gate on 95% CI overlap)
  aggregate  reduce a sweep results file across its seed axis to
             per-group mean/stddev/95% CI statistics
  bench      measure simulator throughput on a fixed grid (perf trajectory)

run 'smtfetch <command> -h' for command flags.
`)
}

// simFlags registers the phase-length flags shared by run and sweep.
func simFlags(fs *flag.FlagSet) (warmup, warmupCycles, measure, maxCycles *uint64) {
	warmup = fs.Uint64("warmup", 0, "warm-up instructions per cell (0 = default 200k)")
	warmupCycles = fs.Uint64("warmup-cycles", 0, "extra cycle-based warm-up per cell after the instruction warm-up (0 = none)")
	measure = fs.Uint64("measure", 0, "measured instructions per cell (0 = default 1M)")
	maxCycles = fs.Uint64("maxcycles", 0, "cycle bound per phase (0 = default 50M)")
	return
}

// runSpec is a parsed `run` invocation: the simulator options plus the
// result label and output mode.
type runSpec struct {
	opts   smtfetch.Options
	cell   experiment.Cell
	asJSON bool
}

// runLabel names the result cell: the workload, unless a custom
// benchmark mix overrides it — those get a distinct "custom:" label so
// their results never match a real workload cell's key in compare/merge.
func runLabel(workload, benchmarks string) string {
	if benchmarks == "" {
		return workload
	}
	return "custom:" + strings.Join(splitList(benchmarks), "+")
}

func parseRunFlags(args []string) (*runSpec, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workload := fs.String("workload", "2_MIX", "Table 2 workload name")
	benchmarks := fs.String("benchmarks", "", "comma-separated per-thread benchmarks (overrides -workload)")
	engine := fs.String("engine", "gshare+BTB", "fetch engine")
	policy := fs.String("policy", "ICOUNT.1.8", "fetch policy (POLICY.T.W)")
	seed := fs.Uint64("seed", 1, "replication seed, matching sweep's -seeds axis")
	asJSON := fs.Bool("json", false, "emit the full stats snapshot as JSON")
	sample := fs.String("sample", "", "SMARTS-style sampled measurement, detail:N,skip:M (empty = full detail)")
	warmup, warmupCycles, measure, maxCycles := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	eng, err := smtfetch.ParseEngine(*engine)
	if err != nil {
		return nil, err
	}
	pol, err := smtfetch.ParseFetchPolicy(*policy)
	if err != nil {
		return nil, err
	}
	sp, err := smtfetch.ParseSample(*sample)
	if err != nil {
		return nil, err
	}
	// Derive the simulator seed exactly as a sweep would for this cell, so
	// `run -json` output is cell-for-cell comparable with sweep output.
	cell := experiment.Cell{Workload: runLabel(*workload, *benchmarks), Engine: eng, Policy: pol, Seed: *seed}
	spec := &runSpec{
		cell:   cell,
		asJSON: *asJSON,
		opts: smtfetch.Options{
			Workload:      *workload,
			Engine:        eng,
			Policy:        pol,
			Seed:          experiment.CellSeed(cell),
			WarmupInstrs:  *warmup,
			WarmupCycles:  *warmupCycles,
			MeasureInstrs: *measure,
			MaxCycles:     *maxCycles,
			Sample:        sp,
		},
	}
	if *benchmarks != "" {
		spec.opts.Workload = ""
		spec.opts.Benchmarks = splitList(*benchmarks)
	}
	return spec, nil
}

func cmdRun(args []string) error {
	spec, err := parseRunFlags(args)
	if err != nil {
		return err
	}
	res, err := smtfetch.Run(spec.opts)
	if err != nil {
		return err
	}
	if spec.asJSON {
		snap := res.Stats.Snapshot()
		r := experiment.Result{
			Workload: spec.cell.Workload, Engine: spec.cell.Engine.String(),
			Policy: spec.cell.Policy.String(), Seed: spec.cell.Seed,
			IPC: res.IPC, IPFC: res.IPFC, CondAccuracy: res.CondAccuracy, Stats: &snap,
			SampleIntervals: res.SampleIntervals, IPCCI95: res.IPCCI95,
		}
		return experiment.WriteJSON(os.Stdout, []experiment.Result{r})
	}
	ci := ""
	if res.SampleIntervals > 0 {
		ci = fmt.Sprintf(" ±%.3f (95%% CI, %d intervals)", res.IPCCI95, res.SampleIntervals)
	}
	fmt.Printf("%s %s %s: IPC %.3f%s  IPFC %.3f  branch acc %.4f\n",
		spec.cell.Workload, spec.cell.Engine, spec.cell.Policy, res.IPC, ci, res.IPFC, res.CondAccuracy)
	fmt.Print(res.Stats)
	return nil
}

// maxSeedShorthand bounds the `-seeds N` expansion: past this, an
// accidental bare number (say a seed value pasted without commas) would
// silently multiply the grid by orders of magnitude.
const maxSeedShorthand = 4096

// parseSeedsFlag parses the -seeds axis. A bare integer N is the
// replication shorthand, expanding to seeds 1..N; a comma-separated list
// names explicit seeds (use a trailing comma, e.g. "7,", to force list
// interpretation of a single seed). Duplicate seeds are rejected here, at
// flag-parse time, so `sweep -seeds 1,1` fails naming the flag instead of
// dying cell-by-cell later in grid validation.
func parseSeedsFlag(raw string) ([]uint64, error) {
	if raw == "" {
		return nil, nil
	}
	if !strings.Contains(raw, ",") {
		n, err := strconv.ParseUint(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: bad seed count %q: %w", raw, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("-seeds: replication count must be at least 1")
		}
		if n > maxSeedShorthand {
			return nil, fmt.Errorf("-seeds: %d expands to seeds 1..%d (max %d); pass an explicit comma-separated list for larger grids", n, n, maxSeedShorthand)
		}
		seeds := make([]uint64, n)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds, nil
	}
	seen := make(map[uint64]bool)
	var seeds []uint64
	for _, s := range splitList(raw) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-seeds: bad seed %q: %w", s, err)
		}
		if seen[v] {
			return nil, fmt.Errorf("-seeds: duplicate seed %d", v)
		}
		seen[v] = true
		seeds = append(seeds, v)
	}
	return seeds, nil
}

// sweepSpec is a parsed `sweep` invocation: the grid plus where to run
// it (locally, or on a sweep server) and where the output goes.
type sweepSpec struct {
	sweep   experiment.Sweep
	request server.SweepRequest // the same grid, as a server request
	server  string              // non-empty: POST to this base URL instead of running locally
	out     string
	aggOut  string // non-empty: write the seed-axis aggregate JSON here
	table   bool
	quiet   bool
}

func parseSweepFlags(args []string) (*sweepSpec, error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	engines := fs.String("engines", "", "comma-separated engines (default: all three)")
	policies := fs.String("policies", "", "comma-separated POLICY.T.W policies (default: the paper's four ICOUNT ones)")
	workloads := fs.String("workloads", "", "comma-separated workloads (default: all of Table 2); -workload is an alias")
	fs.String("workload", "", "alias for -workloads")
	seeds := fs.String("seeds", "", "replications: N = seeds 1..N, or an explicit comma-separated seed list (default: 1)")
	jobs := fs.Int("jobs", 0, "parallel workers (0 = NumCPU; ignored with -server)")
	srvURL := fs.String("server", "", "dispatch the sweep to this `smtfetch serve` base URL instead of running locally")
	out := fs.String("o", "", "write results JSON to this file ('-' or empty = stdout)")
	aggOut := fs.String("agg-o", "", "write the per-group aggregate JSON (mean/stddev/95% CI across seeds) to this file")
	table := fs.Bool("table", true, "print the aligned result table to stderr")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	sample := fs.String("sample", "", "SMARTS-style sampled measurement per cell, detail:N,skip:M (empty = full detail)")
	warmFork := fs.String("warm-fork", "", "share warm-ups across the policy axis: 'fork' (checkpoint once per workload/engine/seed group) or 'rerun' (the slow reference path fork must match byte-for-byte)")
	warmup, warmupCycles, measure, maxCycles := simFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	spec := &sweepSpec{
		server: *srvURL,
		out:    *out,
		aggOut: *aggOut,
		table:  *table,
		quiet:  *quiet,
		sweep: experiment.Sweep{
			Jobs:          *jobs,
			WarmupInstrs:  *warmup,
			WarmupCycles:  *warmupCycles,
			MeasureInstrs: *measure,
			MaxCycles:     *maxCycles,
			Sample:        *sample,
			WarmFork:      *warmFork,
		},
	}
	if *workloads == "" {
		*workloads = fs.Lookup("workload").Value.String()
	}
	for _, s := range splitList(*engines) {
		e, err := smtfetch.ParseEngine(s)
		if err != nil {
			return nil, err
		}
		spec.sweep.Engines = append(spec.sweep.Engines, e)
	}
	for _, s := range splitList(*policies) {
		p, err := smtfetch.ParseFetchPolicy(s)
		if err != nil {
			return nil, err
		}
		spec.sweep.Policies = append(spec.sweep.Policies, p)
	}
	spec.sweep.Workloads = splitList(*workloads)
	seedList, err := parseSeedsFlag(*seeds)
	if err != nil {
		return nil, err
	}
	spec.sweep.Seeds = seedList
	spec.request = server.SweepRequest{
		Engines:       splitList(*engines),
		Policies:      splitList(*policies),
		Workloads:     spec.sweep.Workloads,
		Seeds:         spec.sweep.Seeds,
		WarmupInstrs:  *warmup,
		WarmupCycles:  *warmupCycles,
		MeasureInstrs: *measure,
		MaxCycles:     *maxCycles,
		Sample:        *sample,
		WarmFork:      *warmFork,
	}
	return spec, nil
}

func cmdSweep(args []string) error {
	spec, err := parseSweepFlags(args)
	if err != nil {
		return err
	}
	if spec.server != "" {
		return runSweepRemote(spec)
	}
	return runSweepLocal(spec)
}

func runSweepLocal(spec *sweepSpec) error {
	sw := &spec.sweep
	if !spec.quiet {
		sw.OnResult = func(done, total int, r experiment.Result) {
			status := fmt.Sprintf("IPC %.3f", r.IPC)
			if r.Error != "" {
				status = "ERROR " + r.Error
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, r.Key(), status)
		}
	}

	// Prepare (expand + validate, once) before touching the output files,
	// then open them before running: a typo'd workload must not truncate an
	// existing baseline, and an unwritable path must fail in milliseconds,
	// not after a multi-hour grid.
	cells, err := sw.Prepare()
	if err != nil {
		return err
	}
	w := os.Stdout
	if spec.out != "" && spec.out != "-" {
		f, err := os.Create(spec.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	aw, err := openAggOut(spec)
	if err != nil {
		return err
	}
	if aw != nil {
		defer aw.Close()
	}

	results, runErr := sw.RunCells(cells, nil)
	return writeSweepOutput(w, aw, spec, results, runErr)
}

// openAggOut opens the -agg-o file fail-fast; nil when the flag is unset.
func openAggOut(spec *sweepSpec) (*os.File, error) {
	if spec.aggOut == "" {
		return nil, nil
	}
	return os.Create(spec.aggOut)
}

func runSweepRemote(spec *sweepSpec) error {
	c := &server.Client{BaseURL: spec.server}
	if !spec.quiet {
		lastDone := -1 // report only when progress advances, not every poll
		c.OnProgress = func(done, total int) {
			if done == lastDone {
				return
			}
			lastDone = done
			fmt.Fprintf(os.Stderr, "[%d/%d] cells done on %s\n", done, total, spec.server)
		}
	}

	// Same fail-fast contract as the local path: validate the grid and
	// open the output file before dispatching, so a typo'd workload or an
	// unwritable -o fails in milliseconds, not after the server ran a
	// multi-hour grid. (The server re-validates authoritatively.)
	if _, err := spec.sweep.Prepare(); err != nil {
		return err
	}
	w := os.Stdout
	if spec.out != "" && spec.out != "-" {
		f, err := os.Create(spec.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	aw, err := openAggOut(spec)
	if err != nil {
		return err
	}
	if aw != nil {
		defer aw.Close()
	}

	blob, err := c.Sweep(spec.request)
	if err != nil {
		return err
	}
	// The server's document is written verbatim — byte-identical to a
	// local run of the same grid — but parsed too, for the table and so
	// per-cell failures surface in the exit status exactly like local
	// sweeps.
	results, err := experiment.ReadJSON(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("bad server response: %w", err)
	}
	var runErr error
	var failed []string
	for _, r := range results {
		if r.Error != "" {
			failed = append(failed, fmt.Sprintf("cell %s: %s", r.Key(), r.Error))
		}
	}
	if len(failed) > 0 {
		runErr = fmt.Errorf("%s", strings.Join(failed, "\n"))
	}
	if _, err := w.Write(blob); err != nil {
		return err
	}
	return reportSweepOutcome(w, aw, spec, results, runErr)
}

// writeSweepOutput renders the tables, writes the results document, and
// qualifies the success message when cells failed.
func writeSweepOutput(w, aw *os.File, spec *sweepSpec, results []experiment.Result, runErr error) error {
	if results == nil {
		return runErr
	}
	if err := experiment.WriteJSON(w, results); err != nil {
		return err
	}
	return reportSweepOutcome(w, aw, spec, results, runErr)
}

// reportSweepOutcome renders the per-cell table (plus the seed-axis
// aggregate table when the grid carries replications), writes the
// aggregate JSON when -agg-o was given, and qualifies the success message
// when cells failed. Aggregation is always client-side, over the merged
// result set — the sweep server knows nothing about seeds beyond the
// per-cell cache key, so cached and fresh cells aggregate identically.
func reportSweepOutcome(w, aw *os.File, spec *sweepSpec, results []experiment.Result, runErr error) error {
	groups := experiment.Aggregate(results)
	multiSeed := len(groups) > 0 && len(groups) < len(results)
	if spec.table {
		fmt.Fprint(os.Stderr, experiment.Table(results))
		if multiSeed {
			fmt.Fprint(os.Stderr, experiment.AggregateTable(groups))
		}
	}
	if aw != nil {
		if err := experiment.WriteAggregateJSON(aw, groups); err != nil {
			return errors.Join(err, runErr)
		}
		fmt.Fprintf(os.Stderr, "wrote %d aggregate groups to %s\n", len(groups), spec.aggOut)
	}
	if w != os.Stdout {
		failed := 0
		for _, r := range results {
			if r.Error != "" {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "wrote %d results (%d FAILED) to %s\n", len(results), failed, spec.out)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %d results to %s\n", len(results), spec.out)
		}
	}
	return runErr
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	cacheSize := fs.Int("cache-size", 4096, "result cache capacity in cells")
	cacheFile := fs.String("cache-file", "", "persist the result cache to this file (loaded at start, saved on shutdown)")
	syncLimit := fs.Int("sync-limit", 16, "largest grid answered synchronously; bigger grids get a job ID (-1 = everything async)")
	jobs := fs.Int("jobs", 0, "parallel workers per sweep (0 = NumCPU)")
	snapSize := fs.Int("snapshot-cache-size", 0, "warm-checkpoint cache tier capacity in entries (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		CacheSize:         *cacheSize,
		CacheFile:         *cacheFile,
		SyncCellLimit:     *syncLimit,
		Jobs:              *jobs,
		SnapshotCacheSize: *snapSize,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smtfetch serve: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "smtfetch serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	err = httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		<-shutdownDone
		// Drain running async sweeps so their cells land in the cache
		// before it is saved, and so polling clients see the jobs finish.
		srv.WaitJobs()
		err = nil
	}
	if saveErr := srv.SaveCache(); saveErr != nil {
		// Surface the save failure even when Serve itself errored: the
		// operator must know the warm cache was NOT persisted.
		if err == nil {
			err = saveErr
		} else {
			fmt.Fprintln(os.Stderr, "smtfetch serve: cache save failed:", saveErr)
		}
	} else if *cacheFile != "" {
		fmt.Fprintf(os.Stderr, "smtfetch serve: cache saved to %s\n", *cacheFile)
	}
	return err
}

// parseCoordinateFlags parses the coordinate subcommand into a listen
// address and a cluster configuration (split out for flag tests).
func parseCoordinateFlags(args []string) (addr string, cfg cluster.Config, err error) {
	fs := flag.NewFlagSet("coordinate", flag.ContinueOnError)
	addrFlag := fs.String("addr", "127.0.0.1:8090", "listen address (use :0 for a random port)")
	workers := fs.String("workers", "", "comma-separated worker base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
	syncLimit := fs.Int("sync-limit", 16, "largest grid answered synchronously (streamed); bigger grids get a job ID (-1 = everything async)")
	jobs := fs.Int("jobs", 0, "concurrent cell dispatches across the fleet (0 = 4 per worker)")
	window := fs.Int("window", 0, "streamed-merge reorder window in cells (0 = 2 x jobs)")
	probe := fs.Duration("probe-interval", 5*time.Second, "worker health-probe period, and the base of the dead-worker probe backoff")
	if err := fs.Parse(args); err != nil {
		return "", cluster.Config{}, err
	}
	urls := splitList(*workers)
	if len(urls) == 0 {
		return "", cluster.Config{}, fmt.Errorf("coordinate: -workers is required (comma-separated sweep-server URLs)")
	}
	return *addrFlag, cluster.Config{
		Workers:       urls,
		SyncCellLimit: *syncLimit,
		Jobs:          *jobs,
		Window:        *window,
		ProbeInterval: *probe,
	}, nil
}

// cmdCoordinate fronts a fleet of `smtfetch serve` workers as a single
// sweep service: `sweep -server` clients point at the coordinator and
// cannot tell it from one big worker. The shutdown ordering mirrors
// serve: stop accepting, drain running jobs, then exit — the workers own
// all cache state, so there is nothing to persist here.
func cmdCoordinate(args []string) error {
	addr, cfg, err := parseCoordinateFlags(args)
	if err != nil {
		return err
	}
	co, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	co.ProbeAll() // fail loudly at startup if the fleet is unreachable or incompatible
	for _, ws := range co.ClusterStats().Workers {
		status := "alive"
		if !ws.Alive {
			status = "DOWN: " + ws.LastError
		}
		fmt.Fprintf(os.Stderr, "smtfetch coordinate: worker %s: %s\n", ws.URL, status)
	}
	co.Start(cfg.ProbeInterval)
	defer co.Stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "smtfetch coordinate: listening on http://%s, %d workers\n", ln.Addr(), len(cfg.Workers))

	httpSrv := &http.Server{Handler: co}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "smtfetch coordinate: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	err = httpSrv.Serve(ln)
	if err == http.ErrServerClosed {
		<-shutdownDone
		// Drain running grids so polling clients see their jobs finish.
		co.WaitJobs()
		err = nil
	}
	return err
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("engines:")
	for _, e := range smtfetch.Engines() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("policies (any POLICY.T.W combination is accepted, e.g. BRCOUNT.2.8):")
	for _, p := range smtfetch.Policies() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("paper fetch-policy grid (the default sweep axis):")
	for _, p := range smtfetch.FetchPolicies() {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("workloads:")
	for _, w := range bench.Workloads() {
		fmt.Printf("  %-6s %-4s %s\n", w.Name, w.Class(), strings.Join(w.Benchmarks, ","))
	}
	fmt.Println("benchmarks:")
	for _, b := range bench.Names() {
		cl, _ := bench.BenchClass(b)
		fmt.Printf("  %-8s %s\n", b, cl)
	}
	return nil
}

// parseCompareArgs accepts both "compare old new -tol x" and
// "compare -tol x old new".
func parseCompareArgs(args []string) (paths []string, tol float64, err error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	tolFlag := fs.Float64("tol", 0.02, "relative IPC drop tolerated before flagging a regression")
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		paths = append(paths, args[0])
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return nil, 0, err
	}
	paths = append(paths, fs.Args()...)
	if len(paths) != 2 {
		return nil, 0, fmt.Errorf("compare needs exactly two results files, got %d", len(paths))
	}
	return paths, *tolFlag, nil
}

func cmdCompare(args []string) error {
	paths, tol, err := parseCompareArgs(args)
	if err != nil {
		return err
	}
	oldRes, err := experiment.ReadJSONFile(paths[0])
	if err != nil {
		return err
	}
	newRes, err := experiment.ReadJSONFile(paths[1])
	if err != nil {
		return err
	}
	rep, err := experiment.Compare(oldRes, newRes, tol)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return rep.Err()
}

// parseAggregateArgs accepts both "aggregate results.json -o agg.json"
// and "aggregate -o agg.json results.json".
func parseAggregateArgs(args []string) (path, out string, table bool, err error) {
	fs := flag.NewFlagSet("aggregate", flag.ContinueOnError)
	outFlag := fs.String("o", "", "write aggregate JSON to this file ('-' or empty = stdout)")
	tableFlag := fs.Bool("table", true, "print the aligned aggregate table to stderr")
	var paths []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		paths = append(paths, args[0])
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return "", "", false, err
	}
	paths = append(paths, fs.Args()...)
	if len(paths) != 1 {
		return "", "", false, fmt.Errorf("aggregate needs exactly one results file, got %d", len(paths))
	}
	return paths[0], *outFlag, *tableFlag, nil
}

func cmdAggregate(args []string) error {
	path, out, table, err := parseAggregateArgs(args)
	if err != nil {
		return err
	}
	rs, err := experiment.ReadJSONFile(path)
	if err != nil {
		return err
	}
	groups := experiment.Aggregate(rs)
	if table {
		fmt.Fprint(os.Stderr, experiment.AggregateTable(groups))
	}
	w := os.Stdout
	if out != "" && out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := experiment.WriteAggregateJSON(w, groups); err != nil {
		return err
	}
	if w != os.Stdout {
		fmt.Fprintf(os.Stderr, "wrote %d aggregate groups to %s\n", len(groups), out)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	workloads := fs.String("workloads", "", "comma-separated workloads (default: 2_MIX,4_MIX,8_MIX)")
	engines := fs.String("engines", "", "comma-separated engines (default: all three)")
	policies := fs.String("policies", "", "comma-separated POLICY.T.W policies (default: ICOUNT.1.8)")
	warmup := fs.Uint64("warmup", 0, "warm-up instructions per cell (0 = default 50k)")
	measure := fs.Uint64("measure", 0, "measured instructions per cell (0 = default 300k)")
	quick := fs.Bool("quick", false, "CI mode: 10k warm-up, 50k measured instructions")
	// The default output deliberately differs from the checked-in
	// BENCH_PR4.json baseline so a bare `bench -baseline ...` run cannot
	// clobber the reference it (or CI) compares against.
	out := fs.String("o", "BENCH_LOCAL.json", "write the perf report JSON to this file ('-' = stdout)")
	baseline := fs.String("baseline", "", "compare against this perf report and fail on regressions")
	tol := fs.Float64("tol", 0.25, "relative throughput drop tolerated vs -baseline (wall clock is machine-dependent)")
	allocTol := fs.Float64("alloc-tol", 0.01, "absolute allocs/cycle increase tolerated vs -baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pb := experiment.PerfBench{
		Workloads:     splitList(*workloads),
		WarmupInstrs:  *warmup,
		MeasureInstrs: *measure,
	}
	for _, s := range splitList(*engines) {
		e, err := smtfetch.ParseEngine(s)
		if err != nil {
			return err
		}
		pb.Engines = append(pb.Engines, e)
	}
	for _, s := range splitList(*policies) {
		p, err := smtfetch.ParseFetchPolicy(s)
		if err != nil {
			return err
		}
		pb.Policies = append(pb.Policies, p)
	}
	if *quick {
		if pb.WarmupInstrs == 0 {
			pb.WarmupInstrs = 10_000
		}
		if pb.MeasureInstrs == 0 {
			pb.MeasureInstrs = 50_000
		}
	}
	// Read the baseline before running (fail fast on a bad path) and
	// before writing -o (the output may overwrite the baseline file).
	var base *experiment.PerfReport
	if *baseline != "" {
		var err error
		if base, err = experiment.ReadPerfJSONFile(*baseline); err != nil {
			return err
		}
	}
	pb.OnCell = func(done, total int, c experiment.PerfCell) {
		status := fmt.Sprintf("%.0f kcyc/s, %.3f allocs/cyc", c.KiloCyclesPerSec, c.AllocsPerCycle)
		if c.Error != "" {
			status = "ERROR " + c.Error
		}
		fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s/%s: %s\n", done, total, c.Workload, c.Engine, c.Policy, status)
	}

	rep, runErr := pb.Run()
	if rep == nil {
		return runErr
	}
	fmt.Fprint(os.Stderr, experiment.PerfTable(rep))
	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := experiment.WritePerfJSON(w, rep); err != nil {
		return err
	}
	if w != os.Stdout {
		fmt.Fprintf(os.Stderr, "wrote perf report to %s\n", *out)
	}
	if runErr != nil {
		return runErr
	}
	if base != nil {
		cmp := experiment.PerfCompare(base, rep, *tol, *allocTol)
		fmt.Fprint(os.Stderr, cmp)
		if err := cmp.Err(); err != nil {
			return err
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
