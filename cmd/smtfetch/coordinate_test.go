package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smtfetch/internal/cluster"
	"smtfetch/internal/server"
)

func TestParseCoordinateFlags(t *testing.T) {
	addr, cfg, err := parseCoordinateFlags([]string{
		"-addr", "127.0.0.1:9999",
		"-workers", "http://a:8080, http://b:8080,",
		"-sync-limit", "-1",
		"-jobs", "6",
		"-window", "12",
		"-probe-interval", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr != "127.0.0.1:9999" {
		t.Fatalf("addr = %q", addr)
	}
	if len(cfg.Workers) != 2 || cfg.Workers[0] != "http://a:8080" || cfg.Workers[1] != "http://b:8080" {
		t.Fatalf("workers = %v", cfg.Workers)
	}
	if cfg.SyncCellLimit != -1 || cfg.Jobs != 6 || cfg.Window != 12 || cfg.ProbeInterval != 2*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}

	if _, _, err := parseCoordinateFlags(nil); err == nil {
		t.Fatal("missing -workers accepted")
	}
	if _, _, err := parseCoordinateFlags([]string{"-workers", " , "}); err == nil {
		t.Fatal("empty -workers list accepted")
	}
}

// TestSweepThroughCoordinatorMatchesLocal is the CLI end-to-end: the
// same `sweep -server` invocation users point at one worker, pointed at
// a coordinator fronting two in-process workers, writes a byte-identical
// results file.
func TestSweepThroughCoordinatorMatchesLocal(t *testing.T) {
	var workers []string
	var srvs []*server.Server
	for i := 0; i < 2; i++ {
		srv, err := server.New(server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		workers = append(workers, ts.URL)
		srvs = append(srvs, srv)
	}
	co, err := cluster.New(cluster.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Stop)
	front := httptest.NewServer(co)
	t.Cleanup(front.Close)

	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.json")
	clusterOut := filepath.Join(dir, "cluster.json")
	grid := []string{
		"-workloads", "2_MIX", "-engines", "stream",
		"-policies", "ICOUNT.1.8,RR.1.8,STALL.1.8,FLUSH.1.8",
		"-warmup", "2000", "-measure", "5000", "-q", "-table=false",
	}
	if err := cmdSweep(append(grid, "-o", localOut)); err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	if err := cmdSweep(append(grid, "-server", front.URL, "-o", clusterOut)); err != nil {
		t.Fatalf("sweep through coordinator: %v", err)
	}
	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(clusterOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(local) != string(merged) {
		t.Fatalf("coordinator-dispatched sweep differs from local:\n%s\nvs\n%s", local, merged)
	}
	var misses uint64
	for _, s := range srvs {
		misses += s.CacheStats().Misses
	}
	if misses != 4 {
		t.Fatalf("fleet simulated %d cells, want 4", misses)
	}
}
