package smtfetch

import (
	"reflect"
	"testing"
)

// shortOpts keeps simulation tests fast while still exercising warm-up,
// reset, and measurement phases.
func shortOpts() Options {
	return Options{
		Workload:      "2_MIX",
		Engine:        StreamFetch,
		Policy:        ICount116,
		WarmupInstrs:  10_000,
		MeasureInstrs: 30_000,
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.IPFC != b.IPFC || a.CondAccuracy != b.CondAccuracy {
		t.Fatalf("headline metrics differ:\n%v %v %v\n%v %v %v",
			a.IPC, a.IPFC, a.CondAccuracy, b.IPC, b.IPFC, b.CondAccuracy)
	}
	// Bit-identical down to every counter, not just the headline numbers.
	if !reflect.DeepEqual(a.Stats.Snapshot(), b.Stats.Snapshot()) {
		t.Fatalf("stats snapshots differ:\n%+v\n%+v", a.Stats.Snapshot(), b.Stats.Snapshot())
	}
}

func TestRunSeedChangesResult(t *testing.T) {
	o1 := shortOpts()
	o2 := shortOpts()
	o2.Seed = 7777
	a, err := Run(o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Stats.Snapshot(), b.Stats.Snapshot()) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRunEngineMatters(t *testing.T) {
	base := shortOpts()
	var snaps []float64
	for _, e := range Engines() {
		o := base
		o.Engine = e
		r, err := Run(o)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if r.IPC <= 0 {
			t.Fatalf("%v: non-positive IPC %v", e, r.IPC)
		}
		snaps = append(snaps, r.IPC)
	}
	if snaps[0] == snaps[1] && snaps[1] == snaps[2] {
		t.Fatal("all engines produced identical IPC; engine selection inert?")
	}
}

func TestRunRejectsEmptyOptions(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("Run without workload or benchmarks succeeded")
	}
	if _, err := Run(Options{Workload: "9_NOPE"}); err == nil {
		t.Fatal("Run with unknown workload succeeded")
	}
	if _, err := Run(Options{Benchmarks: []string{"nonesuch"}}); err == nil {
		t.Fatal("Run with unknown benchmark succeeded")
	}
}

func TestEnumerations(t *testing.T) {
	if got := len(Engines()); got != 3 {
		t.Fatalf("Engines() has %d entries, want 3", got)
	}
	if got := len(FetchPolicies()); got != 4 {
		t.Fatalf("FetchPolicies() has %d entries, want 4", got)
	}
	if want := len(Policies()) * 4; len(AllFetchPolicies()) != want {
		t.Fatalf("AllFetchPolicies() has %d entries, want %d (every policy x 4 T.W shapes)",
			len(AllFetchPolicies()), want)
	}
	if got := len(Policies()); got != 7 {
		t.Fatalf("Policies() has %d entries, want the 7-policy family", got)
	}
	if got := len(Workloads()); got != 10 {
		t.Fatalf("Workloads() has %d entries, want 10", got)
	}
	if got := len(Benchmarks()); got != 12 {
		t.Fatalf("Benchmarks() has %d entries, want 12", got)
	}
	for _, e := range Engines() {
		if back, err := ParseEngine(e.String()); err != nil || back != e {
			t.Errorf("ParseEngine round trip failed for %v", e)
		}
	}
	for _, p := range AllFetchPolicies() {
		if back, err := ParseFetchPolicy(p.String()); err != nil || back != p {
			t.Errorf("ParseFetchPolicy round trip failed for %v", p)
		}
	}
}
