// Package smtfetch is a cycle-level simulator of simultaneous
// multithreading (SMT) fetch architectures, reproducing "A Low-Complexity,
// High-Performance Fetch Unit for Simultaneous Multithreading Processors"
// (Falcón, Ramirez, Valero — HPCA 2004).
//
// It models an 8-context SMT processor with a decoupled front-end (branch
// predictor -> per-thread fetch target queues -> fetch unit) and a shared
// out-of-order back-end, and lets you combine:
//
//   - three fetch engines: gshare+BTB (baseline), gskew+FTB, and the
//     stream fetch unit;
//   - the full SMT fetch-policy family in POLICY.T.W notation — up to W
//     instructions from up to T threads per cycle (the paper studies
//     ICOUNT and RR at 1.8, 2.8, 1.16, 2.16; BRCOUNT, MISSCOUNT, IQPOSN,
//     STALL, and FLUSH extend the study to the classic policies from the
//     literature);
//   - the paper's SPECint2000 workloads (Table 2), modelled synthetically.
//
// Quick start (CLI) — sweep the engine×policy grid over one workload on
// all CPUs and write machine-readable results:
//
//	go run ./cmd/smtfetch sweep -workloads 2_MIX -o results.json
//	go run ./cmd/smtfetch list                  # engines, policies, workloads
//	go run ./cmd/smtfetch run -workload 2_MIX -engine stream -policy ICOUNT.1.16
//	go run ./cmd/smtfetch compare base.json results.json -tol 0.02
//
// Quick start (library):
//
//	res, err := smtfetch.Run(smtfetch.Options{
//		Workload: "2_MIX",
//		Engine:   smtfetch.StreamFetch,
//		Policy:   smtfetch.ICount116,
//	})
//	fmt.Printf("IPC %.2f, IPFC %.2f\n", res.IPC, res.IPFC)
//
// Engines(), FetchPolicies(), and Workloads() enumerate the grid axes;
// ParseEngine and ParseFetchPolicy round-trip the String() names, so
// callers never hard-code them.
package smtfetch

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"smtfetch/internal/bench"
	"smtfetch/internal/config"
	"smtfetch/internal/core"
	"smtfetch/internal/prog"
	"smtfetch/internal/rng"
	"smtfetch/internal/stats"
)

// Re-exported fetch-engine selectors.
const (
	GShareBTB   = config.GShareBTB
	GSkewFTB    = config.GSkewFTB
	StreamFetch = config.StreamFetch
)

// Engine selects the fetch engine; see the config package for values.
type Engine = config.Engine

// Policy selects the thread-prioritization heuristic; see the config
// package for the semantics of each value.
type Policy = config.Policy

// Re-exported fetch-policy selectors: the paper's two plus the classic
// SMT fetch-policy family from the literature.
const (
	ICountPolicy = config.ICount
	RRPolicy     = config.RoundRobin
	BRCount      = config.BRCount
	MissCount    = config.MissCount
	IQPosn       = config.IQPosn
	Stall        = config.Stall
	Flush        = config.Flush
)

// FetchPolicy is the paper's POLICY.T.W notation.
type FetchPolicy = config.FetchPolicy

// The fetch policies the paper evaluates, plus the round-robin variants.
var (
	ICount18  = config.ICount18
	ICount28  = config.ICount28
	ICount116 = config.ICount116
	ICount216 = config.ICount216

	RR18  = config.RR18
	RR28  = config.RR28
	RR116 = config.RR116
	RR216 = config.RR216
)

// Engines lists the fetch engines in paper order.
func Engines() []Engine { return config.Engines() }

// Policies lists every implemented thread-selection policy (ICOUNT, RR,
// BRCOUNT, MISSCOUNT, IQPOSN, STALL, FLUSH).
func Policies() []Policy { return config.Policies() }

// FetchPolicies lists the four ICOUNT.T.W policies the paper's figures
// evaluate, in paper order.
func FetchPolicies() []FetchPolicy { return config.FetchPolicies() }

// AllFetchPolicies crosses every policy with the paper's four T.W shapes.
func AllFetchPolicies() []FetchPolicy { return config.AllFetchPolicies() }

// ParseEngine resolves an engine name ("gshare+BTB", "gskew+FTB",
// "stream", or the short aliases "gshare"/"gskew").
func ParseEngine(s string) (Engine, error) { return config.ParseEngine(s) }

// ParsePolicy resolves a bare policy name ("ICOUNT", "RR", "BRCOUNT",
// "MISSCOUNT", "IQPOSN", "STALL", "FLUSH"; case-insensitive).
func ParsePolicy(s string) (Policy, error) { return config.ParsePolicy(s) }

// ParseFetchPolicy parses POLICY.T.W notation, e.g. "ICOUNT.2.8",
// "FLUSH.2.8", or "RR.1.16"; it round-trips FetchPolicy.String.
func ParseFetchPolicy(s string) (FetchPolicy, error) { return config.ParseFetchPolicy(s) }

// MachineConfig is the full Table 3 machine description.
type MachineConfig = config.Config

// DefaultMachine returns the Table 3 configuration.
func DefaultMachine() MachineConfig { return config.Default() }

// Options selects what to simulate.
type Options struct {
	// Workload is a Table 2 workload name ("2_MIX", "4_ILP", ...).
	// Alternatively set Benchmarks explicitly.
	Workload string
	// Benchmarks lists per-thread benchmark names; it overrides Workload.
	Benchmarks []string
	// Engine is the fetch engine (default GShareBTB).
	Engine Engine
	// Policy is the fetch policy (default ICOUNT.1.8).
	Policy FetchPolicy
	// Machine overrides the default machine configuration when non-nil.
	Machine *MachineConfig
	// Seed makes runs reproducible; 0 means a fixed default seed.
	Seed uint64
	// WarmupInstrs are committed before statistics are reset
	// (default 200k).
	WarmupInstrs uint64
	// WarmupCycles, when non-zero, additionally runs the simulator for a
	// fixed number of cycles before statistics are reset (after the
	// instruction-based warm-up). Cycle-based warm-up gives every cell of
	// a sweep the same wall-clock shape regardless of its IPC.
	WarmupCycles uint64
	// MeasureInstrs are committed during measurement (default 1M).
	MeasureInstrs uint64
	// MaxCycles bounds each phase (default 50M).
	MaxCycles uint64
	// Sample, when enabled, switches measurement to SMARTS-style
	// sampling: detail intervals of Sample.DetailInstrs committed
	// instructions are measured in full cycle-level detail, separated by
	// Sample.SkipInstrs instructions of functional fast-forward (no
	// timing; caches and predictors stay warm). The zero value measures
	// every instruction in detail.
	Sample SampleSpec
}

// SampleSpec is a SMARTS-style sampled-measurement configuration, parsed
// from the CLI notation "detail:N,skip:M[,warm:W]". Measurement
// alternates detail intervals (N committed instructions, full cycle-level
// simulation) with functional fast-forward gaps (M instructions, no
// timing) until MeasureInstrs instructions have been measured in detail.
// The pipeline is drained between an interval and the following gap so
// every interval starts from an architecturally clean boundary; the
// optional warm:W component runs W instructions of detailed simulation
// before each interval, excluded from measurement, to refill the pipeline
// and re-establish policy-dependent in-flight state (SMARTS "detailed
// warming" — without it, policies whose behavior hinges on in-flight
// misses, FLUSH and STALL above all, are measured from an unrepresentative
// empty-pipeline state). Per-cell speedup is roughly (N+M)/(N+W), and the
// per-interval IPC spread yields a measured confidence bound on the
// sampled estimate (Result.IPCCI95).
type SampleSpec struct {
	// DetailInstrs is the committed-instruction length of each detail
	// interval (the N in "detail:N,skip:M").
	DetailInstrs uint64
	// SkipInstrs is the number of instructions fast-forwarded
	// functionally between detail intervals (the M).
	SkipInstrs uint64
	// WarmInstrs is the optional detailed-warming length: instructions
	// simulated in full detail immediately before each interval but
	// excluded from the measurement (the W in "warm:W"; 0 disables).
	WarmInstrs uint64
}

// Enabled reports whether the spec turns sampling on.
func (sp SampleSpec) Enabled() bool { return sp.DetailInstrs > 0 }

// String renders the CLI notation; the zero (disabled) spec renders "".
func (sp SampleSpec) String() string {
	if !sp.Enabled() {
		return ""
	}
	if sp.WarmInstrs > 0 {
		return fmt.Sprintf("detail:%d,skip:%d,warm:%d", sp.DetailInstrs, sp.SkipInstrs, sp.WarmInstrs)
	}
	return fmt.Sprintf("detail:%d,skip:%d", sp.DetailInstrs, sp.SkipInstrs)
}

// ParseSample parses "detail:N,skip:M[,warm:W]" (detail and skip
// required, all counts positive, in any order). The empty string is the
// disabled spec.
func ParseSample(s string) (SampleSpec, error) {
	var sp SampleSpec
	if s == "" {
		return sp, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return SampleSpec{}, fmt.Errorf("smtfetch: bad sample component %q (want detail:N,skip:M)", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
		if err != nil {
			return SampleSpec{}, fmt.Errorf("smtfetch: bad sample count in %q: %v", part, err)
		}
		if n == 0 {
			return SampleSpec{}, fmt.Errorf("smtfetch: sample %s must be positive", k)
		}
		if seen[k] {
			return SampleSpec{}, fmt.Errorf("smtfetch: duplicate sample key %q", k)
		}
		seen[k] = true
		switch k {
		case "detail":
			sp.DetailInstrs = n
		case "skip":
			sp.SkipInstrs = n
		case "warm":
			sp.WarmInstrs = n
		default:
			return SampleSpec{}, fmt.Errorf("smtfetch: unknown sample key %q (want detail, skip, warm)", k)
		}
	}
	if sp.DetailInstrs == 0 || sp.SkipInstrs == 0 {
		return SampleSpec{}, fmt.Errorf("smtfetch: sample spec %q needs both detail:N and skip:M", s)
	}
	return sp, nil
}

func (o *Options) fill() error {
	if o.Policy.Width == 0 {
		o.Policy = ICount18
	}
	if o.Seed == 0 {
		o.Seed = 0x5317_F37C
	}
	if o.WarmupInstrs == 0 {
		o.WarmupInstrs = 200_000
	}
	if o.MeasureInstrs == 0 {
		o.MeasureInstrs = 1_000_000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	if len(o.Benchmarks) == 0 {
		if o.Workload == "" {
			return fmt.Errorf("smtfetch: Options needs Workload or Benchmarks")
		}
		w, err := bench.WorkloadByName(o.Workload)
		if err != nil {
			return err
		}
		o.Benchmarks = w.Benchmarks
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	// IPC is committed instructions per cycle (the paper's "Commit
	// Throughput").
	IPC float64
	// IPFC is instructions per fetch cycle (the paper's "Fetch
	// Throughput").
	IPFC float64
	// CondAccuracy is committed-path conditional branch prediction
	// accuracy.
	CondAccuracy float64
	// Stats exposes all raw counters. For sampled runs they cover the
	// detail intervals plus the drains between them, so derive IPC from
	// the IPC field (the per-interval estimate), not from Stats.
	Stats *stats.Stats
	// SampleIntervals is the number of detail intervals a sampled run
	// measured; 0 for full-detail runs.
	SampleIntervals int
	// IPCCI95 is the 95% confidence half-width of the sampled IPC
	// estimate, from the per-interval spread; 0 for full-detail runs.
	IPCCI95 float64
}

// Simulator is a configured simulation instance for callers that need
// cycle-level control; most callers can use Run.
type Simulator struct {
	sim  *core.Sim
	opts Options
}

// New builds a Simulator from options.
func New(opts Options) (*Simulator, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	mc := config.Default()
	if opts.Machine != nil {
		mc = *opts.Machine
	}
	mc.Engine = opts.Engine
	mc.FetchPolicy = opts.Policy

	st := opts.Seed
	programs := make([]*prog.Program, len(opts.Benchmarks))
	for i, name := range opts.Benchmarks {
		p, err := bench.Profile(name)
		if err != nil {
			return nil, err
		}
		programs[i] = prog.Build(p, rng.SplitMix64(&st))
	}
	sim, err := core.New(mc, programs, rng.SplitMix64(&st))
	if err != nil {
		return nil, err
	}
	return &Simulator{sim: sim, opts: opts}, nil
}

// Core exposes the underlying cycle-level simulator.
func (s *Simulator) Core() *core.Sim { return s.sim }

// Warm runs the warm-up phases (instruction-based, then the optional
// cycle-based one) without resetting statistics. A warm simulator can be
// checkpointed with Core().Snapshot() and later forked into measurement
// via Core().Restore() + Measure().
func (s *Simulator) Warm() {
	s.sim.Run(s.opts.WarmupInstrs, s.opts.MaxCycles)
	if s.opts.WarmupCycles > 0 {
		s.sim.RunCycles(s.opts.WarmupCycles)
	}
}

// Measure resets statistics and runs the measurement phase — in full
// detail by default, SMARTS-style sampled when Options.Sample is set.
func (s *Simulator) Measure() (*Result, error) {
	s.sim.ResetStats()
	if !s.opts.Sample.Enabled() {
		st := s.sim.Run(s.opts.MeasureInstrs, s.opts.MaxCycles)
		return &Result{
			IPC:          st.IPC(),
			IPFC:         st.IPFC(),
			CondAccuracy: st.CondAccuracy(),
			Stats:        st,
		}, nil
	}
	return s.measureSampled()
}

// measureSampled alternates detail intervals with drain + functional
// fast-forward until MeasureInstrs instructions have been measured in
// detail. Interval IPC is taken over the detail window only (the drain
// cycles fall between windows, and the optional detailed warming runs
// before the window's start marker), and the run-level estimate is the
// mean of the interval IPCs with a 1.96·s/√k confidence half-width.
func (s *Simulator) measureSampled() (*Result, error) {
	sp := s.opts.Sample
	var ipcs []float64
	var measured uint64
	// Per-thread commit counts accumulated across every detailed chunk
	// (warming included) become the fast-forward shares below, so the
	// policy-dependent thread-progress skew observed in detail keeps
	// accumulating through the functional gaps. Cumulative counts — not
	// per-interval deltas — deliberately damp the estimate: apportioning a
	// gap at the previous interval's instantaneous skew feeds the skew
	// back on itself and runs away on 4-thread mixes.
	shares := make([]uint64, len(s.sim.Stats().PerThread))
	pt0 := make([]uint64, len(shares))
	for t, ts := range s.sim.Stats().PerThread {
		pt0[t] = ts.Committed
	}
	for measured < s.opts.MeasureInstrs {
		if sp.WarmInstrs > 0 {
			s.sim.Run(sp.WarmInstrs, s.opts.MaxCycles)
		}
		st := s.sim.Stats()
		c0, i0 := st.Cycles, st.Committed
		s.sim.Run(sp.DetailInstrs, s.opts.MaxCycles)
		st = s.sim.Stats()
		dc, di := st.Cycles-c0, st.Committed-i0
		if dc == 0 || di == 0 {
			return nil, fmt.Errorf("smtfetch: sampled detail interval made no progress (cycle bound %d too small?)", s.opts.MaxCycles)
		}
		ipcs = append(ipcs, float64(di)/float64(dc))
		measured += di
		if measured >= s.opts.MeasureInstrs {
			break
		}
		for t, ts := range st.PerThread {
			shares[t] = ts.Committed - pt0[t]
		}
		// Empty the pipeline so the fast-forward hands the front-end an
		// architecturally clean boundary, then skip ahead without timing,
		// apportioning progress at the interval's per-thread commit ratio.
		if err := s.sim.Drain(s.opts.MaxCycles); err != nil {
			return nil, err
		}
		if err := s.sim.FastForwardShares(sp.SkipInstrs, shares); err != nil {
			return nil, err
		}
	}
	mean, ci := meanCI95(ipcs)
	st := s.sim.Stats()
	return &Result{
		IPC:             mean,
		IPFC:            st.IPFC(),
		CondAccuracy:    st.CondAccuracy(),
		Stats:           st,
		SampleIntervals: len(ipcs),
		IPCCI95:         ci,
	}, nil
}

// meanCI95 returns the sample mean and the 95% confidence half-width
// (1.96 standard errors) of xs; the half-width is 0 for fewer than two
// samples.
func meanCI95(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, 1.96 * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}

// Run executes warm-up then measurement and returns the result.
func (s *Simulator) Run() (*Result, error) {
	s.Warm()
	return s.Measure()
}

// Run is the one-call API: build a simulator from opts, run it, and return
// the result.
func Run(opts Options) (*Result, error) {
	s, err := New(opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// Workloads returns the Table 2 workload names in paper order.
func Workloads() []string {
	ws := bench.Workloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}

// Benchmarks returns the SPECint2000 benchmark names.
func Benchmarks() []string { return bench.Names() }
