package smtfetch

import (
	"math"
	"testing"
)

func TestParseSample(t *testing.T) {
	sp, err := ParseSample("detail:1000,skip:9000")
	if err != nil || sp.DetailInstrs != 1000 || sp.SkipInstrs != 9000 {
		t.Fatalf("ParseSample = %+v, %v", sp, err)
	}
	if sp.String() != "detail:1000,skip:9000" {
		t.Fatalf("String = %q", sp.String())
	}
	// Key order is free; everything else is not.
	if _, err := ParseSample("skip:9000,detail:1000"); err != nil {
		t.Fatalf("reordered keys rejected: %v", err)
	}
	// warm is optional; when present it must round-trip through String.
	sp, err = ParseSample("detail:1000,skip:9000,warm:2000")
	if err != nil || sp.WarmInstrs != 2000 {
		t.Fatalf("ParseSample with warm = %+v, %v", sp, err)
	}
	if sp.String() != "detail:1000,skip:9000,warm:2000" {
		t.Fatalf("String with warm = %q", sp.String())
	}
	if sp, err := ParseSample(""); err != nil || sp.Enabled() {
		t.Fatalf("empty spec = %+v, %v", sp, err)
	}
	for _, bad := range []string{
		"detail:1000",            // missing skip
		"skip:9000",              // missing detail
		"detail:0,skip:1",        // zero count
		"detail:1,skip:0",        // zero count
		"detail:1,detail:2",      // duplicate key
		"detail:x,skip:1",        // non-numeric
		"detail:1,skip:1,warm:0", // zero warm (omit the key instead)
		"cadence:5",              // unknown key
		"detail=1000,skip=9000",  // wrong separator
	} {
		if _, err := ParseSample(bad); err == nil {
			t.Errorf("ParseSample(%q) accepted", bad)
		}
	}
}

func sampledOpts() Options {
	return Options{
		Workload:      "2_MIX",
		WarmupInstrs:  10_000,
		MeasureInstrs: 30_000,
		Sample:        SampleSpec{DetailInstrs: 3_000, SkipInstrs: 7_000},
	}
}

func TestSampledRunDeterministic(t *testing.T) {
	a, err := Run(sampledOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sampledOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.SampleIntervals != b.SampleIntervals || a.IPCCI95 != b.IPCCI95 {
		t.Fatalf("sampled runs diverge: %+v vs %+v", a, b)
	}
}

func TestSampledRunTracksFullDetail(t *testing.T) {
	full, err := Run(Options{Workload: "2_MIX", WarmupInstrs: 10_000, MeasureInstrs: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(sampledOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sampled.SampleIntervals < 2 {
		t.Fatalf("SampleIntervals = %d, want >= 2", sampled.SampleIntervals)
	}
	if sampled.IPCCI95 <= 0 {
		t.Fatalf("IPCCI95 = %v, want > 0", sampled.IPCCI95)
	}
	if full.SampleIntervals != 0 || full.IPCCI95 != 0 {
		t.Fatalf("full-detail run carries sampled fields: %+v", full)
	}
	// The sampled estimate measures a different (sparser) instruction
	// population, so exact agreement is not expected — but it must land in
	// the same neighborhood as the exhaustive measurement.
	if relErr := math.Abs(sampled.IPC-full.IPC) / full.IPC; relErr > 0.25 {
		t.Fatalf("sampled IPC %.3f vs full-detail %.3f: relative error %.3f", sampled.IPC, full.IPC, relErr)
	}
}

func TestSampledRunMeasuresFewerCyclesInDetail(t *testing.T) {
	// detail:3000,skip:7000 with 30k measured instructions covers roughly
	// a 100k-instruction program span (30k in detail, ~70k fast-forwarded).
	// A full-detail run over the same span must spend far more cycles in
	// the detailed pipeline — that cycle ratio is the whole point of
	// sampling. The factor-2 bound is deliberately loose next to the
	// ~(N+M)/N ≈ 3.3x ideal, leaving room for drain overhead.
	full, err := Run(Options{Workload: "2_MIX", WarmupInstrs: 10_000, MeasureInstrs: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Run(sampledOpts())
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Stats.Cycles*2 >= full.Stats.Cycles {
		t.Fatalf("sampled run spent %d detailed cycles, full-span run %d: sampling saved under 2x",
			sampled.Stats.Cycles, full.Stats.Cycles)
	}
}
