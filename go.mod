module smtfetch

go 1.21
